"""Quickstart: identify SeqPoints for GNMT and project across hardware.

The complete paper workflow in ~40 lines:

1. simulate one training epoch of GNMT on the baseline GPU (config #1),
   logging each iteration's sequence length and runtime;
2. identify SeqPoints (paper Fig 10);
3. re-run ONLY those iterations on a different hardware configuration
   and project the full epoch's training time there;
4. compare against the ground-truth epoch on that configuration.

Run:  python examples/quickstart.py
"""

from repro import (
    GpuDevice,
    PooledBucketing,
    SeqPointSelector,
    TrainingRunSimulator,
    build_gnmt,
    build_iwslt,
    paper_config,
    project_epoch_time,
)
from repro.util.units import format_duration

BATCH_SIZE = 64

# A reduced IWSLT'15-like corpus keeps the demo to a few seconds.
model = build_gnmt()
corpus = build_iwslt(sentences=12_000)

# 1. One identification epoch on the baseline configuration.
baseline = TrainingRunSimulator(
    model, corpus, PooledBucketing(BATCH_SIZE), GpuDevice(paper_config(1))
)
trace = baseline.run_epoch(include_eval=False)
print(f"epoch: {len(trace)} iterations, "
      f"{len(trace.unique_seq_lens())} unique sequence lengths, "
      f"total {format_duration(trace.total_time_s)}")

# 2. Identify SeqPoints.
result = SeqPointSelector().select(trace)
print(f"SeqPoints ({len(result.selection)} iterations, k={result.k} bins, "
      f"identification error {result.identification_error_pct:.2f}%):")
for point in result.seqpoints:
    print(f"  SL {point.seq_len:>4}  weight {point.weight:>6.0f} iterations")

# 3. Project the epoch time on config #3 (16 CUs instead of 64) by
#    executing only the SeqPoint iterations there.
other = TrainingRunSimulator(
    model, corpus, PooledBucketing(BATCH_SIZE), GpuDevice(paper_config(3))
)
projected = project_epoch_time(result.selection, other)

# 4. Ground truth: the full epoch on config #3.
actual = other.run_epoch(include_eval=False).total_time_s
error = abs(projected - actual) / actual * 100
print(f"\nconfig #3 projection: {format_duration(projected)} "
      f"(actual {format_duration(actual)}, error {error:.2f}%)")
print(f"iterations executed for the projection: "
      f"{result.selection.iterations_to_profile} of {len(trace)}")
