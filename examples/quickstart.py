"""Quickstart: the complete paper workflow as one declarative request.

1. describe the analysis as data: network, corpus, pipeline, hardware
   config, selector — an :class:`AnalysisSpec` (JSON-serializable);
2. the engine simulates one identification epoch, identifies SeqPoints
   (paper Fig 10), and projects full-epoch training time onto other
   hardware configurations by re-running ONLY the selected iterations;
3. a second analysis of the same scenario reuses the cached epoch
   trace — sweeping selectors or thresholds costs one simulation.

Run:  python examples/quickstart.py
"""

import json

from repro import AnalysisEngine, AnalysisSpec, ProjectionSpec
from repro.util.units import format_duration

# A reduced IWSLT'15-like corpus keeps the demo to a few seconds.
spec = AnalysisSpec(network="gnmt", scale=0.1)
print("request:", json.dumps(spec.to_dict()))

# 1-2. Simulate on config #1, identify SeqPoints, project onto
#      config #3 (16 compute units instead of 64).
engine = AnalysisEngine()
result = engine.run(spec, ProjectionSpec(targets=(1, 3)))

print(f"\nepoch: {result.iterations} iterations, "
      f"{result.unique_seq_lens} unique sequence lengths, "
      f"total {format_duration(result.actual_total_s)}")
print(f"SeqPoints ({len(result)} iterations, k={result.k} bins, "
      f"identification error {result.identification_error_pct:.2f}%):")
for point in result.points:
    print(f"  SL {point.seq_len:>4}  weight {point.weight:>6.0f} iterations")

for projection in result.projections:
    print(f"\n{projection.config_name}: "
          f"projected {format_duration(projection.projected_time_s)} "
          f"(actual {format_duration(projection.actual_time_s)}, "
          f"error {projection.error_pct:.2f}%, "
          f"throughput uplift {projection.actual_uplift_pct:+.1f}%)")
print(f"iterations executed per projection: "
      f"{result.selection.iterations_to_profile} of {result.iterations}")

# 3. Sweep the baseline selectors over the same scenario: the epoch
#    trace is cached, so these four analyses simulate nothing new.
sweep = engine.run_many(
    [AnalysisSpec(network="gnmt", scale=0.1, selector=method)
     for method in ("frequent", "median", "worst", "prior")]
)
print("\nbaseline identification errors (same cached epoch):")
for baseline in sweep:
    print(f"  {baseline.method:>8}: "
          f"{baseline.identification_error_pct:7.2f}%")
print(f"cache: {engine.cache.stats()}")
