"""Talking to the analysis service: jobs, sessions, and stats.

``repro serve`` turns the library into an always-on daemon: analyze /
sweep / stream requests become *jobs* in an async queue, streaming
identifications run as *sessions* you feed incrementally, and
``/stats`` reports cache, queue, and latency metrics.  The wire format
is the same JSON the specs already round-trip — anything that works
with ``AnalysisSpec.to_dict()`` is a valid request body.

This walkthrough embeds the server in-process (``port=0`` binds an
ephemeral port) so it is self-contained; against a real daemon, point
``base`` at its URL instead.  The equivalent curl session:

    repro serve --port 8742 &
    curl -s localhost:8742/stats
    curl -s -X POST localhost:8742/jobs -d \
        '{"kind": "analyze", "spec": {"network": "gnmt", "scale": 0.1}}'
    curl -s localhost:8742/jobs/job-1
    curl -s localhost:8742/jobs/job-1/result

Run:  PYTHONPATH=src python examples/serve_client.py
"""

import json
import time
import urllib.request

from repro.api.spec import AnalysisSpec
from repro.serve import ReproServer
from repro.stream.spec import StreamSpec


class ServeClient:
    """A minimal stdlib client for the service's JSON endpoints."""

    def __init__(self, base: str):
        self.base = base

    def call(self, path: str, payload: dict | None = None, method: str | None = None):
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            envelope = json.loads(response.read())
        assert envelope["ok"], envelope
        return envelope

    def run_job(self, kind: str, spec: dict, **options):
        """Submit a job and poll it to completion; returns the result."""
        job = self.call("/jobs", {"kind": kind, "spec": spec, **options})["job"]
        print(f"submitted {job['id']}: {job['describe']}")
        while job["state"] not in ("done", "failed", "cancelled"):
            time.sleep(0.05)
            job = self.call(f"/jobs/{job['id']}")["job"]
        if job["state"] != "done":
            raise RuntimeError(f"{job['id']} ended {job['state']}: {job.get('error')}")
        return self.call(f"/jobs/{job['id']}/result")["result"]


with ReproServer(port=0, workers=2) as server:
    client = ServeClient(server.url)
    print(f"service up at {server.url}\n")

    # -- an analyze job: the batch pipeline as a queued request -------
    analysis = AnalysisSpec(network="gnmt", scale=0.1)
    result = client.run_job("analyze", analysis.to_dict())
    print(
        f"analyze: {len(result['points'])} points (k={result['k']}), "
        f"identification error {result['identification_error_pct']:.3f}%\n"
    )

    # -- a streaming session: feed the daemon, watch it converge ------
    # ``replay=True`` draws from the scenario's *cached* epoch (shared
    # with the analyze job above — no second simulation); live sessions
    # would POST {"records": [...]} chunks from a real training loop.
    stream = StreamSpec(analysis=analysis, cadence=100, patience=3)
    session = client.call(
        "/stream", {"spec": stream.to_dict(), "replay": True}
    )["session"]
    print(f"session {session['id']}: {session['epoch_iterations']}-iteration epoch")
    while not session["converged"] and session["cursor"] < session["epoch_iterations"]:
        session = client.call(
            f"/stream/{session['id']}/feed", {"advance": 100}
        )["session"]
    final = client.call(f"/stream/{session['id']}/finish", method="POST")["result"]
    print(
        f"stream: converged={final['converged']} after "
        f"{final['iterations_consumed']} iterations "
        f"({len(final['checks'])} checks)\n"
    )

    # -- observability ------------------------------------------------
    stats = client.call("/stats")
    cache, queue = stats["cache"], stats["queue"]
    print(
        f"cache: {cache['hits']} hits / {cache['misses']} misses, "
        f"{cache['entries']} entries, {cache['bytes']} bytes, "
        f"{cache['evictions']} evictions"
    )
    print(f"queue: {queue['jobs']} jobs, states {queue['states']}")
    slowest = max(
        stats["latency"].items(), key=lambda item: item[1]["p99_ms"]
    )
    print(f"slowest endpoint: {slowest[0]} (p99 {slowest[1]['p99_ms']:.1f} ms)")
