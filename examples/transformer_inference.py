"""SeqPoint beyond the paper's networks: Transformer serving (§VII-B/E).

Characterises an *inference* deployment of a Transformer encoder: a
request stream with log-normal prompt lengths, served at batch 8.
Self-attention makes per-request work partly quadratic in SL, so the
request length distribution matters even more than for RNNs.  SeqPoint
identifies representative request batches and projects serving capacity
on a cheaper GPU configuration.

Run:  python examples/transformer_inference.py
"""

from repro import (
    GpuDevice,
    InferenceRunSimulator,
    PooledBucketing,
    SeqPointSelector,
    build_transformer,
    paper_config,
)
from repro.core.projection import project_total
from repro.data.dataset import Sample, SequenceDataset
from repro.data.distributions import LogNormalLengths
from repro.util.rng import make_rng
from repro.util.units import format_duration

# --- a prompt-length population: median 48 tokens, long tail to 512 ---
lengths = LogNormalLengths(median=48, sigma=0.8, min_len=4, max_len=512).sample(
    make_rng(3), 4_000
)
requests = SequenceDataset(
    name="prompts",
    samples=tuple(Sample(length=int(l)) for l in lengths),
    vocab=30_522,
)

model = build_transformer(layers=6)
serving = InferenceRunSimulator(
    model, requests, PooledBucketing(8), GpuDevice(paper_config(1))
)
trace = serving.run_pass()
print(f"served {trace.samples} requests in {len(trace)} batches "
      f"({len(trace.unique_seq_lens())} unique padded lengths), "
      f"total {format_duration(trace.total_time_s)}")

result = SeqPointSelector().select(trace)
print(f"SeqPoints: {len(result.selection)} request batches "
      f"(identification error {result.identification_error_pct:.2f}%)")
for point in result.seqpoints:
    print(f"  SL {point.seq_len:>4}  weight {point.weight:>6.0f}  "
          f"latency {format_duration(point.record.time_s)}")

# Capacity planning: how much slower would serving be on the 852 MHz part?
cheap = InferenceRunSimulator(
    model, requests, PooledBucketing(8), GpuDevice(paper_config(2))
)
projected = project_total(
    result.selection,
    lambda p: cheap.measure_seq_len(p.seq_len, p.tgt_len),
)
actual = cheap.run_pass().total_time_s
print(f"\n852 MHz projection: {format_duration(projected)} vs actual "
      f"{format_duration(actual)} "
      f"({abs(projected - actual) / actual * 100:.2f}% error)")
print(f"slowdown vs baseline: {projected / trace.total_time_s:.2f}x — "
      f"estimated from {result.selection.iterations_to_profile} batches")
