"""Apply SeqPoint to your own sequence model (paper §VII-B).

The methodology needs nothing GNMT- or DS2-specific: any model that
lowers iterations to kernels works.  This script defines a compact
sentiment-classifier-style SQNN (embedding -> 2 x biLSTM -> classifier)
over a synthetic review corpus, and runs the whole SeqPoint pipeline
on it.

Run:  python examples/custom_network.py
"""

from repro import (
    GpuDevice,
    SeqPointSelector,
    ShuffledBatching,
    TrainingRunSimulator,
    paper_config,
    project_epoch_time,
)
from repro.data.dataset import Sample, SequenceDataset
from repro.data.distributions import LogNormalLengths
from repro.models.layers.dense import DenseLayer
from repro.models.layers.embedding import EmbeddingLayer
from repro.models.layers.losses import SoftmaxCrossEntropyLayer
from repro.models.layers.recurrent import LSTMLayer
from repro.models.sequential import SequentialModel
from repro.util.rng import make_rng
from repro.util.units import format_duration

# --- 1. define the network -------------------------------------------
VOCAB, HIDDEN, CLASSES = 30_000, 512, 2


class SentimentLstm(SequentialModel):
    """Embedding -> two bidirectional LSTMs -> 2-way classifier."""

    def __init__(self):
        layers = [
            EmbeddingLayer("embedding", vocab=VOCAB, hidden=HIDDEN),
            LSTMLayer("lstm0", HIDDEN, HIDDEN, bidirectional=True),
            LSTMLayer("lstm1", 2 * HIDDEN, HIDDEN, bidirectional=True),
            DenseLayer("classifier", 2 * HIDDEN, CLASSES),
        ]
        super().__init__(
            "sentiment-lstm", layers, SoftmaxCrossEntropyLayer("ce", CLASSES)
        )


# --- 2. define the corpus (review lengths: log-normal, 4..400 tokens) --
lengths = LogNormalLengths(median=60, sigma=0.7, min_len=4, max_len=400).sample(
    make_rng(11), 8_000
)
corpus = SequenceDataset(
    name="reviews",
    samples=tuple(Sample(length=int(l)) for l in lengths),
    vocab=VOCAB,
)

# --- 3. run the SeqPoint pipeline --------------------------------------
model = SentimentLstm()
baseline = TrainingRunSimulator(
    model, corpus, ShuffledBatching(32), GpuDevice(paper_config(1))
)
trace = baseline.run_epoch(include_eval=False)
result = SeqPointSelector().select(trace)

print(f"{model.name}: {model.param_count() / 1e6:.0f}M parameters")
print(f"epoch: {len(trace)} iterations "
      f"({len(trace.unique_seq_lens())} unique SLs), "
      f"total {format_duration(trace.total_time_s)}")
print(f"SeqPoints: {sorted(result.selection.seq_lens)} "
      f"(identification error {result.identification_error_pct:.2f}%)")

# --- 4. project onto a candidate design (half the CUs) -----------------
candidate = TrainingRunSimulator(
    model, corpus, ShuffledBatching(32), GpuDevice(paper_config(3))
)
projected = project_epoch_time(result.selection, candidate)
actual = candidate.run_epoch(include_eval=False).total_time_s
print(f"\n16-CU projection: {format_duration(projected)} vs actual "
      f"{format_duration(actual)} "
      f"({abs(projected - actual) / actual * 100:.2f}% error) — "
      f"from only {result.selection.iterations_to_profile} iterations")
