"""Hardware study: project GNMT speedups across the Table II configs.

The paper's headline use case (Figs 12 and 16): a hardware architect
wants training-time and speedup estimates for candidate GPU designs
without re-running full training on each.  SeqPoints are identified
once on the baseline, then each candidate executes only those
iterations.  The script compares SeqPoint against the paper's
baselines (frequent / median / worst / prior).

Run:  python examples/gnmt_hardware_study.py
"""

from repro import (
    FrequentSelector,
    GpuDevice,
    MedianSelector,
    PooledBucketing,
    PriorSelector,
    SeqPointSelector,
    TrainingRunSimulator,
    WorstSelector,
    build_gnmt,
    build_iwslt,
    paper_config,
    project_epoch_time,
    project_uplift_pct,
    uplift_pct,
)
from repro.util.stats import geomean, percent_error
from repro.util.tables import render_table

BATCH_SIZE = 64

model = build_gnmt()
corpus = build_iwslt(sentences=12_000)
runners = {
    index: TrainingRunSimulator(
        model, corpus, PooledBucketing(BATCH_SIZE), GpuDevice(paper_config(index))
    )
    for index in range(1, 6)
}
print("simulating ground-truth epochs on all five configurations...")
traces = {index: sim.run_epoch(include_eval=False) for index, sim in runners.items()}

# Identify every selection on the baseline config only.
trace1 = traces[1]
selections = {
    "worst": WorstSelector().select(trace1),
    "frequent": FrequentSelector().select(trace1),
    "median": MedianSelector().select(trace1),
    "prior": PriorSelector().select(trace1),
    "seqpoint": SeqPointSelector().select(trace1).selection,
}

# --- training-time projections (the Fig 12 view) ---------------------
rows = []
errors = {method: [] for method in selections}
for index in range(1, 6):
    row = [f"config#{index}"]
    for method, selection in selections.items():
        projected = project_epoch_time(selection, runners[index])
        error = percent_error(projected, traces[index].total_time_s)
        errors[method].append(error)
        row.append(f"{error:.2f}")
    rows.append(row)
rows.append(
    ["geomean"] + [f"{geomean(errors[m]):.2f}" for m in selections]
)
print()
print(render_table(
    ["config", *selections], rows,
    title="GNMT training-time projection error % (cf. paper Fig 12)",
))

# --- speedup projections (the Fig 16 view) ----------------------------
rows = []
for index in range(2, 6):
    actual = uplift_pct(traces[index].throughput, traces[1].throughput)
    row = [f"#{index}->#1", f"{actual:.1f}%"]
    for method, selection in selections.items():
        projected = project_uplift_pct(selection, runners[index], runners[1])
        row.append(f"{abs(projected - actual):.2f}")
    rows.append(row)
print()
print(render_table(
    ["transition", "actual", *selections], rows,
    title="GNMT speedup-projection error, percentage points (cf. paper Fig 16)",
))
print(f"\nSeqPoint executed {selections['seqpoint'].iterations_to_profile} "
      f"iterations per config; prior executed "
      f"{selections['prior'].iterations_to_profile}.")
