"""Profiling-cost study: how much profiling time SeqPoint saves on DS2.

Reproduces the §VI-F accounting: profiling a full DS2 epoch under a
kernel-level profiler (8x overhead) versus profiling only the
SeqPoints — serially, and in parallel on one machine per SeqPoint.
Also shows the DS2-specific SortaGrad artifact: the first epoch is
sorted by utterance length, which is what hands the `prior` baseline a
low-variance (but biased) window.

Run:  python examples/ds2_profiling_cost.py
"""

from repro import (
    GpuDevice,
    PriorSelector,
    ProfilingCostModel,
    SeqPointSelector,
    SortedBatching,
    TrainingRunSimulator,
    build_ds2,
    build_librispeech,
    paper_config,
)
from repro.util.units import format_duration

BATCH_SIZE = 64

model = build_ds2()
corpus = build_librispeech(utterances=12_000)
simulator = TrainingRunSimulator(
    model, corpus,
    SortedBatching(BATCH_SIZE, pad_multiple=4),  # SortaGrad first epoch
    GpuDevice(paper_config(1)),
)
trace = simulator.run_epoch(include_eval=False)
print(f"DS2 epoch: {len(trace)} iterations, "
      f"{len(trace.unique_seq_lens())} unique padded lengths "
      f"({len(trace.unique_seq_lens()) / len(trace):.0%} of iterations — "
      f"the paper's 'up to half' observation)")
print(f"epoch training time: {format_duration(trace.total_time_s)}")
print(f"autotune phase (first epoch only): {format_duration(trace.autotune_s)}")

result = SeqPointSelector().select(trace)
print(f"\nSeqPoints: {len(result.selection)} iterations "
      f"(identification error {result.identification_error_pct:.2f}%)")

cost_model = ProfilingCostModel(overhead_multiplier=8.0)
speedups = cost_model.speedups(trace, result.selection)
print(f"profiling the full epoch:      "
      f"{format_duration(speedups.full_epoch_s)}")
print(f"profiling only the SeqPoints:  "
      f"{format_duration(speedups.selection_serial_s)} "
      f"({speedups.serial_speedup:.0f}x faster)")
print(f"one machine per SeqPoint:      "
      f"{format_duration(speedups.selection_parallel_s)} "
      f"({speedups.parallel_speedup:.0f}x faster)")

prior = PriorSelector().select(trace)
print(f"\nfor comparison, prior profiles {prior.iterations_to_profile} "
      f"iterations — {prior.iterations_to_profile / len(result.selection):.1f}x "
      f"more than SeqPoint")
window = prior.seq_lens
print(f"prior's contiguous window covers SLs {min(window)}..{max(window)} "
      f"of the epoch's {trace.unique_seq_lens()[0]}.."
      f"{trace.unique_seq_lens()[-1]} (sorted epoch -> narrow, biased slice)")
