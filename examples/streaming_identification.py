"""Streaming identification: stop logging as soon as SeqPoints stabilise.

The batch workflow (see ``quickstart.py``) logs a complete epoch before
identifying SeqPoints.  The streaming engine consumes iterations *as
they arrive* and stops once the selection is stable:

1. describe the run as data — a :class:`StreamSpec` wrapping the usual
   :class:`AnalysisSpec` plus the convergence knobs (JSON-serializable,
   same as every other spec);
2. the engine replays the scenario's (cached) epoch as a simulated live
   feed, absorbs it into incremental per-SL statistics that are
   bit-identical to the batch group-by, and re-runs the selector every
   ``cadence`` iterations;
3. convergence fires when the selected SL set and the projected mean
   iteration time hold still for ``patience`` consecutive checks — a
   drift guard resets the window if any SL's mean runtime shifts.

Run:  python examples/streaming_identification.py
"""

import json

from repro import AnalysisSpec, StreamSpec, default_engine
from repro.util.units import format_duration

# GNMT on its paper pipeline, paper-sized corpus.  Cadence 100 matches
# the pooled-bucketing pool period, so each check sees one more pool.
spec = StreamSpec(
    analysis=AnalysisSpec(network="gnmt", scale=1.0),
    cadence=100,
    patience=3,
    rtol=0.02,
    drift_rtol=0.1,
    sl_rtol=0.2,
    chunk_size=7,
)
print("request:", json.dumps(spec.to_dict()))

engine = default_engine()
result = engine.run_streaming(spec)

status = "converged" if result.converged else "ran out of stream"
print(f"\n{status} after {result.iterations_consumed} of "
      f"{result.epoch_iterations} iterations "
      f"({100 * result.fraction_consumed:.1f}% of the epoch), "
      f"{len(result.checks)} selector re-runs")

print(f"SeqPoints ({len(result)} iterations, k={result.k} bins):")
for point in result.points:
    print(f"  SL {point.seq_len:>4}  weight {point.weight:>6.0f} iterations")

print(f"\nprojected epoch {format_duration(result.projected_epoch_time_s)} "
      f"vs actual {format_duration(result.actual_total_s)} "
      f"-> error {result.projection_error_pct:.3f}%")
print(f"batch analysis of the full epoch agrees: "
      f"{result.matches_batch_selection} "
      f"(batch identification error "
      f"{result.batch_identification_error_pct:.3f}%)")

# The convergence history, check by check.
print("\ncheck history:")
for check in result.checks:
    flags = " drift-reset" if check.drift_reset else ""
    print(f"  it {check.iterations:>5}: {len(check.selected)} points, "
          f"mean {check.projected_mean_iteration_s * 1e3:7.2f} ms, "
          f"stable x{check.stable_checks}{flags}")
