"""Traffic serving: identify SeqPoints on a live inference request stream.

The batch and streaming workflows replay a *training epoch*.  Serving
flips the setup: requests arrive over time, a dynamic batcher groups
them, and the device serves batches FIFO.  The traffic engine simulates
that whole loop and watches it with the online identifier:

1. describe the workload as data — a :class:`TrafficSpec` wrapping the
   usual :class:`AnalysisSpec` plus the arrival process (deterministic,
   Poisson, or bursty on/off), the corpus mix (phases over corpus
   quantiles, so the mix can shift mid-stream), and the dynamic-batching
   deadline (max-batch / max-wait);
2. the engine samples request lengths from the corpus, forms batches
   with the spec's batching policy, serves them through the usual
   lowering -> kernel-timing pipeline, and reports SLO latency
   percentiles (p50/p95/p99) alongside the SeqPoint selection;
3. the streaming identifier consumes batches as they form; its
   converged selection projects the total serving time, and the drift
   guard resets identification when the request mix shifts.

Run:  python examples/traffic_serving.py
"""

import json

from repro import AnalysisSpec, default_engine
from repro.traffic import TrafficSpec
from repro.util.units import format_duration

# GNMT served from Poisson arrivals at 128 req/s.  Small batches keep
# the batch-formation stream long enough for cadence-8 checks.
spec = TrafficSpec(
    analysis=AnalysisSpec(network="gnmt", scale=0.3, batch_size=16),
    arrival="poisson",
    rate=128.0,
    requests=2048,
    max_wait_s=0.5,
    cadence=8,
    patience=3,
    rtol=0.01,
    drift_rtol=0.1,
    sl_rtol=0.2,
)
print("request:", json.dumps(spec.to_dict()))

engine = default_engine()
result = engine.run_traffic(spec)

print(f"\nserved {result.requests} requests in {result.batches} batches "
      f"({result.unique_seq_lens} unique SLs), makespan "
      f"{format_duration(result.makespan_s)}")

print(f"latency p50 {result.latency['p50_ms']:.1f} ms  "
      f"p95 {result.latency['p95_ms']:.1f} ms  "
      f"p99 {result.latency['p99_ms']:.1f} ms "
      f"(mean queue wait {result.queue_wait['mean_ms']:.1f} ms)")

status = "converged" if result.converged else "ran out of stream"
print(f"\nstreaming identifier {status} after "
      f"{result.iterations_consumed} of {result.batches} batches, "
      f"{result.drift_resets} drift resets")

print(f"SeqPoints ({len(result)} batches, k={result.k} bins):")
for point in result.points:
    print(f"  SL {point.seq_len:>4}  weight {point.weight:>6.0f} batches")

print(f"\nprojected serving time "
      f"{format_duration(result.projected_total_s)} vs actual "
      f"{format_duration(result.actual_total_s)} -> error "
      f"{result.streaming_projection_error_pct:.3f}%")

# A drifting mix: a short head of short requests, then long requests.
# The drift guard notices the shift and re-identifies on the new mix.
drifting = TrafficSpec.from_dict({
    **spec.to_dict(),
    "arrival": "bursty",
    "requests": 4096,
    "phases": [{"fraction": 0.15, "quantile_hi": 0.5},
               {"fraction": 0.85, "quantile_lo": 0.5}],
})
shifted = engine.run_traffic(drifting)
print(f"\ndrifting mix: {shifted.drift_resets} drift resets, "
      f"{'re-converged' if shifted.converged else 'did not re-converge'} "
      f"at {shifted.iterations_consumed}/{shifted.batches} batches")
