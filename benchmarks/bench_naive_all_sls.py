"""§V-A bench: the naive all-unique-SLs set vs SeqPoint."""

from repro.experiments import naive_all_sls
from repro.experiments.naive_all_sls import compare


def test_naive_all_sls(benchmark, scale, emit):
    result = benchmark.pedantic(
        naive_all_sls.run, args=(scale,), rounds=1, iterations=1
    )
    emit(result)
    for network in ("gnmt", "ds2"):
        outcome = compare(network, scale)
        # The naive set is accurate but large; SeqPoint keeps accuracy
        # with far fewer iterations (the whole point of binning).
        assert outcome["naive"]["iterations"] > 4 * outcome["seqpoint"]["iterations"]
        assert outcome["seqpoint"]["geomean_error_pct"] < 2.5
    ds2 = compare("ds2", scale)
    # Paper §V-A: DS2's naive set is a large fraction of the epoch.
    assert ds2["naive"]["fraction_of_epoch"] > 0.2
