"""§VI-F bench: profiling-time reductions from SeqPoint."""

from repro.experiments import profiling_speedups
from repro.experiments.profiling_speedups import speedups_for


def test_profiling_speedups(benchmark, scale, emit):
    result = benchmark.pedantic(
        profiling_speedups.run, args=(scale,), rounds=1, iterations=1
    )
    emit(result)
    for network in ("ds2", "gnmt"):
        outcome = speedups_for(network, scale)
        # Paper shape: one-to-two orders of magnitude serially (40-72x),
        # more in parallel (214-345x).  At reduced corpus scale the
        # ratios shrink with the epoch, so assert the magnitude only.
        assert outcome.serial_speedup > 5.0
        assert outcome.parallel_speedup > outcome.serial_speedup
