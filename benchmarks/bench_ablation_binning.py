"""Design ablation bench: equal-width vs equal-mass SL bins."""

from repro.experiments import ablation_binning
from repro.experiments.ablation_binning import compare


def test_ablation_binning(benchmark, scale, emit):
    result = benchmark.pedantic(
        ablation_binning.run, args=(scale,), rounds=1, iterations=1
    )
    emit(result)
    for network in ("gnmt", "ds2"):
        outcome = compare(network, scale)
        # Both binning schemes project accurately at the same k; the
        # ablation documents that the paper's equal-width choice is not
        # load-bearing.
        assert outcome["equal_width"] < 3.0
        assert outcome["equal_mass"] < 3.0
