"""Fig 5 bench: kernel sets differ across sequence lengths."""

from repro.experiments import fig05


def test_fig05_unique_kernels(benchmark, scale, emit):
    result = benchmark.pedantic(fig05.run, args=(scale,), rounds=1, iterations=1)
    emit(result)
    exclusive = [float(str(row[5]).rstrip("%")) / 100 for row in result.rows]
    # Paper shape: a meaningful fraction of unique kernels appears in
    # only one of the two iterations (they report up to ~20%).
    assert max(exclusive) > 0.10
    # And every pair still shares the bulk of its kernels.
    assert all(e < 0.5 for e in exclusive)
