"""Parallel sweep bench: serial loop vs the process-pool sweep engine.

Times one sensitivity-style grid — seeds x selectors projected onto two
hardware configs, 16 analysis points by default — twice:

* **serial**: ``run_sweep(mode="serial")`` on a fresh engine, i.e. the
  plain loop over :meth:`AnalysisEngine.run` the sweep engine must be
  bit-identical to;
* **process**: ``run_sweep(mode="process")`` with N workers sharing an
  on-disk trace cache; every unique epoch simulates exactly once, then
  per-point analyses fan out.

Both paths must agree bit-for-bit; the bench asserts it on every run.
The headline claim (the >=2x in the README) is the wall-clock ratio
with 4 workers — meaningful only when the machine actually has the
cores, so the gate is skipped (with a note) on smaller hosts.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py [--smoke]
        [--json BENCH_parallel_sweep.json]

or through pytest (``pytest benchmarks/bench_parallel_sweep.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

from repro.api import AnalysisEngine, SweepSpec, run_sweep
from repro.models.plan import PLAN_CACHE


def build_sweep(scale: float, seeds: int, networks: tuple[str, ...] = ("gnmt",)) -> SweepSpec:
    """seeds x {seqpoint, frequent} per network, projected onto configs 1 and 3."""
    return SweepSpec(
        networks=networks,
        scales=(scale,),
        seeds=tuple(range(seeds)),
        selectors=("seqpoint", "frequent"),
        targets=(1, 3),
    )


def run_comparison(scale: float, seeds: int, workers: int):
    """Time serial vs process execution of one grid; assert bit-identity."""
    sweep = build_sweep(scale, seeds)

    start = time.perf_counter()
    serial = run_sweep(sweep, engine=AnalysisEngine(), mode="serial")
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_sweep(sweep, mode="process", workers=workers)
    parallel_s = time.perf_counter() - start

    expected = [result.to_dict() for result in serial.results]
    produced = [result.to_dict() for result in parallel.results]
    assert produced == expected, "process-parallel sweep diverged from the serial path"
    return serial_s, parallel_s, len(serial.results), serial.unique_traces


def run_plan_store(scale: float, seeds: int, workers: int):
    """Cold vs warm cross-process plan store over a spawn-pool sweep.

    The cold pass fans workers out over an empty store (every unique
    plan lowered exactly once machine-wide, then published); the warm
    pass reruns the grid with fresh trace caches and fresh worker
    processes over the now-populated store, so every lowering is an
    mmap load.  Bit-identity and publish-exactly-once (no artefact
    rewritten on the warm pass) are asserted.
    """
    sweep = build_sweep(scale, seeds)
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "plans"
        PLAN_CACHE.clear()
        start = time.perf_counter()
        cold = run_sweep(
            sweep, mode="process", workers=workers,
            cache_dir=Path(tmp) / "cold", plan_store_dir=store_dir,
        )
        cold_s = time.perf_counter() - start
        artefacts = {
            path.name: path.stat().st_mtime_ns
            for path in store_dir.glob("*.npt")
        }
        assert artefacts, "plan store stayed empty"
        PLAN_CACHE.clear()
        start = time.perf_counter()
        warm = run_sweep(
            sweep, mode="process", workers=workers,
            cache_dir=Path(tmp) / "warm", plan_store_dir=store_dir,
        )
        warm_s = time.perf_counter() - start
        assert [r.to_dict() for r in warm.results] == [
            r.to_dict() for r in cold.results
        ], "warm plan store diverged from the cold pass"
        assert {
            path.name: path.stat().st_mtime_ns
            for path in store_dir.glob("*.npt")
        } == artefacts, "warm pass rewrote a published plan artefact"
    return cold_s, warm_s, len(artefacts)


def report_plan_store(cold_s, warm_s, plans, workers):
    speedup = cold_s / warm_s
    print(f"plan store: {plans} unique lowerings shared machine-wide")
    print(
        f"  cold store ({workers} workers) {cold_s * 1e3:8.1f} ms\n"
        f"  warm store ({workers} workers) {warm_s * 1e3:8.1f} ms   ({speedup:.2f}x)"
    )
    return speedup


def report(serial_s, parallel_s, points, unique, workers):
    speedup = serial_s / parallel_s
    print(f"{points}-point sweep, {unique} unique epoch traces")
    print(
        f"  serial                 {serial_s * 1e3:8.1f} ms\n"
        f"  process ({workers} workers)    {parallel_s * 1e3:8.1f} ms   ({speedup:.2f}x)"
    )
    return speedup


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid, 2 workers, no speedup assertion")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="corpus scale (default 0.2)")
    parser.add_argument("--seeds", type=int, default=8,
                        help="data-order seeds in the grid (default 8 -> 16 points)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write machine-readable results (BENCH_*.json schema)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.scale, args.seeds, args.workers = 0.02, 2, 2

    serial_s, parallel_s, points, unique = run_comparison(
        args.scale, args.seeds, args.workers
    )
    speedup = report(serial_s, parallel_s, points, unique, args.workers)
    cold_s, warm_s, plans = run_plan_store(args.scale, args.seeds, args.workers)
    report_plan_store(cold_s, warm_s, plans, args.workers)

    if args.json is not None:
        payload = {
            "bench": "parallel_sweep",
            "scale": args.scale,
            "results": [
                {"name": "serial", "seconds": serial_s, "speedup": 1.0},
                {
                    "name": f"process[{args.workers}]",
                    "seconds": parallel_s,
                    "speedup": speedup,
                },
                {"name": "plan_store_cold", "seconds": cold_s, "speedup": 1.0},
                {
                    "name": "plan_store_warm",
                    "seconds": warm_s,
                    "speedup": cold_s / warm_s,
                },
            ],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    cores = os.cpu_count() or 1
    if not args.smoke:
        if cores < args.workers:
            print(
                f"NOTE: only {cores} CPUs for {args.workers} workers; "
                "speedup gate skipped"
            )
        elif speedup < 2.0:
            print(f"WARNING: sweep speedup {speedup:.2f}x below the 2x target")
            return 1
    return 0


def test_parallel_sweep_matches_serial(scale):
    """Pytest entry: process-pool results must equal the serial loop."""
    run_comparison(scale=min(scale, 0.05), seeds=2, workers=2)


def test_plan_store_cold_warm_bit_identity(scale):
    """Pytest entry: warm plan-store sweeps must equal the cold pass."""
    cold_s, warm_s, plans = run_plan_store(
        scale=min(scale, 0.05), seeds=2, workers=2
    )
    assert plans > 0
    assert cold_s > 0 and warm_s > 0


if __name__ == "__main__":
    raise SystemExit(main())
