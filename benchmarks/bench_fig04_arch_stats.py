"""Fig 4 bench: architectural statistics differ across SQNN iterations."""

from repro.experiments import fig04


def test_fig04_arch_stats(benchmark, scale, emit):
    result = benchmark.pedantic(fig04.run, args=(scale,), rounds=1, iterations=1)
    emit(result)
    gnmt_stalls = [
        float(row[3]) for row in result.rows if row[0] == "gnmt"
    ]
    # Paper shape: per-kernel-average counters differ across iterations
    # (they report ~24-27%; our GNMT write-stall spread exceeds 20%).
    spread = (max(gnmt_stalls) - min(gnmt_stalls)) / (
        sum(gnmt_stalls) / len(gnmt_stalls)
    )
    assert spread > 0.20
