"""Fig 8 bench: nearby SLs have similar execution profiles."""

from repro.experiments import fig08
from repro.experiments.setups import BATCH_SIZE, scenario
from repro.hw.config import paper_config
from repro.hw.device import GpuDevice
from repro.profiling.comparison import runtime_share_distance
from repro.profiling.profiler import Profiler


def test_fig08_profile_similarity(benchmark, scale, emit):
    result = benchmark.pedantic(fig08.run, args=(scale,), rounds=1, iterations=1)
    emit(result)
    profiler = Profiler(scenario("gnmt", scale).model, GpuDevice(paper_config(1)))
    profiles = {
        sl: profiler.profile_seq_len(sl, batch=BATCH_SIZE).profile
        for sl in (87, 89, 192, 197)
    }
    near_a = runtime_share_distance(profiles[87], profiles[89])
    near_b = runtime_share_distance(profiles[192], profiles[197])
    far = runtime_share_distance(profiles[87], profiles[192])
    # Paper shape: 87~89 and 192~197 nearly identical, cross pairs differ.
    assert near_a < far
    assert near_b < far
