"""§VII-B bench: SeqPoint on Transformer and ConvS2S models."""

from repro.experiments import generality
from repro.experiments.generality import generality_outcome


def test_generality(benchmark, scale, emit):
    result = benchmark.pedantic(
        generality.run, args=(scale,), rounds=1, iterations=1
    )
    emit(result)
    for network in ("transformer", "convs2s"):
        outcome = generality_outcome(network, scale)
        # The pipeline identifies a compact set and projects across
        # hardware within a few percent for both non-RNN families.
        assert outcome["seqpoints"] <= 40
        assert outcome["config3_error_pct"] < 5.0
