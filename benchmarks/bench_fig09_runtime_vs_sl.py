"""Fig 9 bench: iteration runtime is near-linear in sequence length."""

import numpy as np

from repro.experiments import fig09
from repro.experiments.fig09 import sweep


def test_fig09_runtime_vs_sl(benchmark, scale, emit):
    result = benchmark.pedantic(fig09.run, args=(scale,), rounds=1, iterations=1)
    emit(result)
    for network in ("gnmt", "ds2"):
        samples = sweep(network, scale)
        xs = np.array([sl for sl, _ in samples], dtype=float)
        ys = np.array([t for _, t in samples])
        slope, intercept = np.polyfit(xs, ys, 1)
        fitted = slope * xs + intercept
        r2 = 1 - np.sum((ys - fitted) ** 2) / np.sum((ys - ys.mean()) ** 2)
        # Paper shape: near-linear runtime growth with SL.
        assert slope > 0
        assert r2 > 0.98, f"{network}: R^2={r2}"
