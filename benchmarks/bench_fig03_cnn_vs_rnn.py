"""Fig 3 bench: CNN iterations homogeneous, SQNN iterations heterogeneous."""

from repro.experiments import fig03


def test_fig03_cnn_vs_rnn(benchmark, scale, emit):
    result = benchmark.pedantic(fig03.run, args=(scale,), rounds=1, iterations=1)
    emit(result)
    cnn = [float(v) for v in result.column("cnn")]
    rnn = [float(v) for v in result.column("rnn")]
    cnn_spread = max(cnn) - min(cnn)
    rnn_spread = max(rnn) - min(rnn)
    # Paper shape: CNN flat, RNN varies visibly across iterations.
    assert cnn_spread < 1e-9
    assert rnn_spread > 0.10
