"""Shared benchmark configuration.

Benchmarks regenerate every paper table/figure at a reduced corpus
scale by default so the whole suite runs in minutes.  Set
``REPRO_BENCH_SCALE=1.0`` for the paper-sized corpora (the numbers
quoted in EXPERIMENTS.md).

Run with ``pytest benchmarks/ --benchmark-only -s`` to also print every
regenerated table — that is the harness reproducing the paper's
evaluation section.
"""

from __future__ import annotations

import os

import pytest

#: Default scale keeps a full benchmark run quick; EXPERIMENTS.md is
#: generated at 1.0.
DEFAULT_SCALE = 0.10


@pytest.fixture(scope="session")
def scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


@pytest.fixture(scope="session")
def emit():
    """Print an experiment's table once per session."""
    printed: set[str] = set()

    def _emit(result) -> None:
        if result.experiment_id not in printed:
            printed.add(result.experiment_id)
            print()
            print(result.render())

    return _emit
