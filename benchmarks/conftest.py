"""Shared benchmark configuration.

Benchmarks regenerate every paper table/figure at a reduced corpus
scale by default so the whole suite runs in minutes.  Set
``REPRO_BENCH_SCALE=1.0`` for the paper-sized corpora (the numbers
quoted in EXPERIMENTS.md).

Run with ``pytest benchmarks/ --benchmark-only -s`` to also print every
regenerated table — that is the harness reproducing the paper's
evaluation section.

Performance benches double as standalone scripts with a shared CLI
convention: ``--smoke`` runs a seconds-scale configuration with the
speedup gate disabled (what CI's ``bench`` job executes on every
push), and ``--json PATH`` writes the machine-readable result file the
job uploads as an artifact — ``BENCH_<bench>.json`` at the repo root,
schema ``{"bench": ..., "scale": ..., "results": [{"name": ...,
"seconds": ..., "speedup": ...}]}``.  See
``bench_trace_columnar.py`` and ``bench_parallel_sweep.py``.
"""

from __future__ import annotations

import os

import pytest

#: Default scale keeps a full benchmark run quick; EXPERIMENTS.md is
#: generated at 1.0.
DEFAULT_SCALE = 0.10


@pytest.fixture(scope="session")
def scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


@pytest.fixture(scope="session")
def emit():
    """Print an experiment's table once per session."""
    printed: set[str] = set()

    def _emit(result) -> None:
        if result.experiment_id not in printed:
            printed.add(result.experiment_id)
            print()
            print(result.render())

    return _emit
