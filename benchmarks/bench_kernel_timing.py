"""Kernel-timing bench: scalar reference vs the batched plan pipeline.

Times genuinely *cold* whole-epoch simulation — lowering, autotune
charging, kernel timing, evaluation pass, measurement noise — on GNMT
and DS2, twice per trial:

* **scalar**: ``TrainingRunSimulator(batched=False)``, i.e. the
  per-invocation measurement loop and scalar autotune candidate timing
  the pipeline had before the columnar ``SchedulePlan`` refactor;
* **batched**: the default pipeline — one compiled plan per unique
  shape, a single vectorized device call per plan, vectorized autotune
  candidate racing.

Every lowering/measurement/plan cache is cleared before each timed run
(cold means cold), and the two paths' trace frames are asserted
bit-identical on every trial.  Times are min-of-``--repeats`` to shed
scheduler noise; the headline is the combined (GNMT+DS2) speedup.

The >=2x CI gate is skipped with a note on constrained runners —
single-core hosts (as in ``bench_parallel_sweep.py``) or runs too fast
to time reliably.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_kernel_timing.py [--smoke]
        [--json BENCH_kernel_timing.json]

or through pytest (``pytest benchmarks/bench_kernel_timing.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.api.registry import (
    DATASETS,
    MODELS,
    build_batching,
    default_batching,
    default_dataset,
)
from repro.hw.config import paper_config
from repro.hw.device import GpuDevice, clear_measure_caches
from repro.kernels import clear_lowering_caches
from repro.models.plan import PLAN_CACHE
from repro.train.runner import TrainingRunSimulator

NETWORKS = ("gnmt", "ds2")
#: Scalar epoch time below which a runner is too fast/noisy to gate on.
MIN_RELIABLE_SCALAR_S = 0.15


def build_simulator(network: str, scale: float, batched: bool) -> TrainingRunSimulator:
    dataset_name = default_dataset(network)
    corpus = DATASETS.create(dataset_name, scale=scale)
    train, evaluation = corpus.split(0.02, seed=7)
    return TrainingRunSimulator(
        model=MODELS.create(network),
        dataset=train,
        batching=build_batching(default_batching(network), 64, dataset=dataset_name),
        device=GpuDevice(paper_config(1)),
        eval_dataset=evaluation,
        noise_sigma=0.02,
        batched=batched,
    )


def clear_all_caches() -> None:
    """Reset every memo the pipeline shares, so the next run is cold."""
    PLAN_CACHE.clear()
    clear_measure_caches()
    clear_lowering_caches()


def cold_epoch(network: str, scale: float, batched: bool):
    """One cold whole-epoch simulation; returns (seconds, frame)."""
    clear_all_caches()
    simulator = build_simulator(network, scale, batched)
    start = time.perf_counter()
    frame = simulator.run_epoch_frame(0)
    return time.perf_counter() - start, frame


def run_comparison(scale: float, repeats: int):
    """Min-of-``repeats`` cold epochs per path per network.

    Asserts scalar/batched frame bit-identity on every trial.
    """
    measurements = {}
    for network in NETWORKS:
        scalar_times, batched_times = [], []
        for _ in range(repeats):
            scalar_s, scalar_frame = cold_epoch(network, scale, batched=False)
            batched_s, batched_frame = cold_epoch(network, scale, batched=True)
            assert batched_frame.to_payload() == scalar_frame.to_payload(), (
                f"{network}: batched pipeline diverged from the scalar reference"
            )
            scalar_times.append(scalar_s)
            batched_times.append(batched_s)
        measurements[network] = (min(scalar_times), min(batched_times))
    return measurements


def report(measurements) -> float:
    total_scalar = sum(scalar for scalar, _ in measurements.values())
    total_batched = sum(batched for _, batched in measurements.values())
    for network, (scalar_s, batched_s) in measurements.items():
        print(
            f"{network:12s} scalar {scalar_s * 1e3:8.1f} ms   "
            f"batched {batched_s * 1e3:8.1f} ms   "
            f"({scalar_s / batched_s:.2f}x)"
        )
    combined = total_scalar / total_batched
    print(
        f"{'combined':12s} scalar {total_scalar * 1e3:8.1f} ms   "
        f"batched {total_batched * 1e3:8.1f} ms   ({combined:.2f}x)"
    )
    return combined


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="smaller corpora and fewer repeats (CI)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="corpus scale (default 0.1)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="trials per path; min is reported (default 5)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write machine-readable results (BENCH_*.json schema)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.scale, args.repeats = 0.05, 2

    measurements = run_comparison(args.scale, args.repeats)
    combined = report(measurements)
    total_scalar = sum(scalar for scalar, _ in measurements.values())

    if args.json is not None:
        results = [
            {"name": "scalar", "seconds": total_scalar, "speedup": 1.0},
            {
                "name": "batched",
                "seconds": sum(b for _, b in measurements.values()),
                "speedup": combined,
            },
        ]
        for network, (scalar_s, batched_s) in measurements.items():
            results.append(
                {
                    "name": f"batched[{network}]",
                    "seconds": batched_s,
                    "speedup": scalar_s / batched_s,
                }
            )
        payload = {
            "bench": "kernel_timing",
            "scale": args.scale,
            "results": results,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    cores = os.cpu_count() or 1
    if cores < 2:
        print(f"NOTE: only {cores} CPU; speedup gate skipped")
    elif total_scalar < MIN_RELIABLE_SCALAR_S:
        print(
            f"NOTE: scalar epochs took {total_scalar * 1e3:.0f} ms "
            f"(< {MIN_RELIABLE_SCALAR_S * 1e3:.0f} ms); too fast to gate"
        )
    elif combined < 2.0:
        print(f"WARNING: batched speedup {combined:.2f}x below the 2x gate")
        return 1
    return 0


def test_kernel_timing_bit_identity(scale):
    """Pytest entry: batched frames must equal the scalar reference."""
    run_comparison(scale=min(scale, 0.05), repeats=1)


if __name__ == "__main__":
    raise SystemExit(main())
