"""Fig 11 bench: DS2 training-time projection errors."""

from repro.experiments import fig11
from repro.experiments.time_projection import time_projection_errors
from repro.util.stats import geomean


def test_fig11_ds2_time_projection(benchmark, scale, emit):
    result = benchmark.pedantic(fig11.run, args=(scale,), rounds=1, iterations=1)
    emit(result)
    errors = time_projection_errors("ds2", scale)
    summary = {m: geomean(list(v.values())) for m, v in errors.items()}
    # Paper shape: SeqPoint accurate (geomean 0.11%); all single-iteration
    # alternatives are clearly worse; worst is the upper bound.
    assert summary["seqpoint"] < 2.5
    assert summary["seqpoint"] < summary["median"]
    assert summary["median"] < summary["frequent"] < summary["worst"]
    if scale >= 0.5:
        # prior's 200-iteration warmup needs a full-size epoch to mean
        # anything; at small scale its window degenerates to the epoch.
        assert summary["seqpoint"] < summary["prior"]
