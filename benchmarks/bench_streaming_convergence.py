"""Streaming convergence bench: how little of an epoch identification needs.

For the paper's two end-to-end networks this bench streams one logged
epoch through the online identifier and reports

* the fraction of the epoch consumed when the selection converged, and
* the full-epoch projection error of the converged (prefix) selection
  against the complete trace — the quantity the paper's threshold ``e``
  bounds for the batch pipeline.

Scenarios: GNMT on its paper pipeline (pooled bucketing — periodically
stationary, period one pool), DS2 on a shuffled pipeline (steady-state
stationary ordering), and DS2 on its paper SortaGrad pipeline — whose
sorted first epoch is a monotone changepoint stream by construction.
The plain drift guard correctly *refuses* that last stream; the
``segmented`` selector (changepoint-native, ``repro.stream.segments``)
converges on it inside the terminal quasi-stationary segment instead,
with a drift-aware projection gated at ``SEGMENTED_ERROR_GATE_PCT``.

Every trial also asserts streaming-vs-batch **bit-identity** twice:

* the incremental per-SL statistics of the consumed prefix equal the
  batch group-by of the same prefix, and
* a fully consumed stream reproduces ``AnalysisEngine.run`` exactly,

and each *stationary* scenario asserts the ``segmented`` wrapper is a
bit-for-bit no-op (degenerate single-segment pass-through).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_streaming_convergence.py
        [--smoke] [--json BENCH_streaming_convergence.json]

or through pytest (``pytest benchmarks/bench_streaming_convergence.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.api import AnalysisEngine, AnalysisSpec
from repro.core.sl_stats import SlStatistics
from repro.stream import (
    SegmentedSelector,
    StreamSpec,
    StreamingIdentifier,
    StreamingSlStatistics,
    TraceReplayFeed,
)
from repro.train.frame import TraceFrame

#: The paper's identification-error threshold e (percent).
ERROR_THRESHOLD_PCT = 1.0
#: Convergence must fire within this fraction of the logged epoch
#: (stationary scenarios only — a monotone stream must be seen nearly
#: whole before its terminal segment can prove itself stable).
CONSUMPTION_GATE = 0.5
#: Projection-error gate for the segmented SortaGrad row.
SEGMENTED_ERROR_GATE_PCT = 2.0

#: Per-network streaming knobs (cadence tracks the pipeline's natural
#: period: one bucketing pool for GNMT, a shorter window for the small
#: shuffled DS2 epoch, and an even shorter one for SortaGrad so the
#: terminal plateau spans several checks).  ``gate`` picks which
#: non-smoke acceptance block applies.
SCENARIOS = {
    "gnmt": dict(
        analysis=dict(network="gnmt"),
        cadence=100, patience=3, rtol=0.02, drift_rtol=0.1, sl_rtol=0.2,
        chunk_size=7, gate="stationary",
    ),
    "ds2": dict(
        analysis=dict(network="ds2", batching="shuffled"),
        cadence=64, patience=3, rtol=0.015, drift_rtol=0.1, sl_rtol=0.15,
        chunk_size=7, gate="stationary",
    ),
    # DS2's paper pipeline, epoch 1: sorted (monotone) SL stream.  The
    # plain guard refuses it (asserted below); the segmented selector
    # converges once the terminal plateau holds for `patience` checks.
    "ds2-sortagrad": dict(
        analysis=dict(
            network="ds2",
            selector="segmented",
            selector_kwargs={"cadence": 12, "min_segment": 48},
        ),
        cadence=12, patience=3, rtol=0.01, drift_rtol=0.1, sl_rtol=0.15,
        chunk_size=7, gate="segmented",
    ),
}


def assert_prefix_bit_identity(engine: AnalysisEngine, spec, consumed: int) -> None:
    """Streamed stats of the consumed prefix == batch group-by of it."""
    frame = engine.frame_for(spec)
    streamed = StreamingSlStatistics.for_frame(frame)
    streamed.absorb_frame(frame, 0, consumed)
    prefix = TraceFrame.from_records(
        model_name=frame.model_name,
        dataset_name=frame.dataset_name,
        config_name=frame.config_name,
        batch_size=frame.batch_size,
        records=engine.trace_for(spec).records[:consumed],
    )
    assert streamed.statistics() == SlStatistics.from_trace(prefix), (
        "streaming statistics diverged from the batch group-by"
    )


def assert_full_stream_matches_batch(engine: AnalysisEngine, spec) -> None:
    """An exhausted stream reproduces the batch engine.run numbers."""
    batch = engine.run(spec)
    frame = engine.frame_for(spec)
    run = StreamingIdentifier(
        spec.build_selector(), cadence=len(frame), patience=10_000
    ).run(
        TraceReplayFeed(frame, chunk_size=7),
        stats=StreamingSlStatistics.for_frame(frame),
    )
    assert run.identification_error_pct == batch.identification_error_pct
    assert run.projected_prefix_total_s == batch.projected_total_s
    assert [
        (p.seq_len, p.tgt_len, p.weight, p.record.time_s)
        for p in run.selection.points
    ] == [(p.seq_len, p.tgt_len, p.weight, p.time_s) for p in batch.points], (
        "fully consumed stream diverged from the batch selection"
    )


def assert_segmented_is_passthrough(engine: AnalysisEngine, spec, cadence: int) -> None:
    """On a stationary epoch the segmented wrapper is a bit-exact no-op."""
    frame = engine.frame_for(spec)
    base = spec.build_selector().select(frame)
    wrapped = SegmentedSelector(spec.build_selector(), cadence=cadence).select(frame)
    assert [
        (p.seq_len, p.tgt_len, p.weight, p.record.time_s)
        for p in wrapped.selection.points
    ] == [
        (p.seq_len, p.tgt_len, p.weight, p.record.time_s)
        for p in base.selection.points
    ], "segmented wrapper changed a stationary selection"
    assert wrapped.projected_total_s == base.projected_total_s
    assert wrapped.identification_error_pct == base.identification_error_pct


def assert_plain_guard_refuses(engine: AnalysisEngine, knobs: dict) -> None:
    """The unsegmented identifier must refuse the monotone stream."""
    spec = AnalysisSpec(
        **{**knobs["analysis"], "selector": "seqpoint", "selector_kwargs": {}},
        scale=knobs["scale"],
    )
    frame = engine.frame_for(spec)
    run = StreamingIdentifier(
        spec.build_selector(),
        cadence=knobs["cadence"],
        patience=knobs["patience"],
        rtol=knobs["rtol"],
        drift_rtol=knobs["drift_rtol"],
        sl_rtol=knobs["sl_rtol"],
    ).run(
        TraceReplayFeed(frame, chunk_size=knobs["chunk_size"]),
        stats=StreamingSlStatistics.for_frame(frame),
    )
    assert not run.converged, (
        "the plain drift guard unexpectedly converged on the SortaGrad "
        "stream; the segmented row no longer demonstrates a refusal"
    )


def run_network(engine: AnalysisEngine, name: str, scale: float):
    knobs = dict(SCENARIOS[name])
    gate = knobs.pop("gate")
    analysis = AnalysisSpec(scale=scale, **knobs.pop("analysis"))
    stream = StreamSpec(analysis=analysis, **knobs)

    start = time.perf_counter()
    result = engine.run_streaming(stream)
    seconds = time.perf_counter() - start

    assert_prefix_bit_identity(engine, analysis, result.iterations_consumed)
    assert_full_stream_matches_batch(engine, analysis)
    if gate == "stationary":
        assert_segmented_is_passthrough(engine, analysis, knobs["cadence"])
    return result, seconds


def report(name, result, seconds):
    status = "converged" if result.converged else "NOT converged"
    segmented = ""
    if result.checks and result.checks[-1].segments_closed:
        segmented = f", {result.checks[-1].segments_closed + 1} segments"
    print(
        f"  {name:>13}: {status} at {result.iterations_consumed}/"
        f"{result.epoch_iterations} iterations "
        f"({100 * result.fraction_consumed:.1f}% of the epoch), "
        f"projection error {result.projection_error_pct:.3f}%"
        f"{segmented}, {seconds * 1e3:.0f} ms"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny corpus, no convergence gates")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="corpus scale (default 1.0: paper-sized epochs)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write machine-readable results (BENCH_*.json schema)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.scale = 0.05

    engine = AnalysisEngine()
    cores = os.cpu_count() or 1
    print(f"streaming convergence at scale {args.scale} "
          f"(bit-identity asserted per trial)")
    entries = []
    failures = []
    for name in SCENARIOS:
        gate = SCENARIOS[name]["gate"]
        result, seconds = run_network(engine, name, args.scale)
        report(name, result, seconds)
        entries.append(
            {
                "name": name,
                "seconds": seconds,
                # The cost-reduction factor: epoch length over the
                # iterations the online identifier actually needed.
                "speedup": result.epoch_iterations / result.iterations_consumed,
                "converged": result.converged,
                "fraction_consumed": result.fraction_consumed,
                "projection_error_pct": result.projection_error_pct,
                "iterations_consumed": result.iterations_consumed,
                "epoch_iterations": result.epoch_iterations,
            }
        )
        if args.smoke:
            continue
        if gate == "stationary":
            if not result.converged:
                failures.append(f"{name}: did not converge")
            elif result.fraction_consumed > CONSUMPTION_GATE:
                failures.append(
                    f"{name}: consumed {100 * result.fraction_consumed:.1f}% "
                    f"> {100 * CONSUMPTION_GATE:.0f}% of the epoch"
                )
            if result.projection_error_pct > ERROR_THRESHOLD_PCT:
                failures.append(
                    f"{name}: projection error "
                    f"{result.projection_error_pct:.3f}% > e"
                )
        elif cores < 2:
            # Like the serve fast-path gate: a 1-core host cannot be
            # trusted to reproduce the timing-free assertions either
            # once CI shares the core, so the whole gate self-skips.
            print(f"NOTE: only {cores} CPU; segmented convergence gate skipped")
        else:
            assert_plain_guard_refuses(
                engine, {**SCENARIOS[name], "scale": args.scale}
            )
            if not result.converged:
                failures.append(
                    f"{name}: segmented selector did not converge before "
                    "epoch end"
                )
            if result.iterations_consumed >= result.epoch_iterations:
                failures.append(
                    f"{name}: consumed the whole epoch "
                    f"({result.iterations_consumed} iterations)"
                )
            if result.projection_error_pct > SEGMENTED_ERROR_GATE_PCT:
                failures.append(
                    f"{name}: projection error "
                    f"{result.projection_error_pct:.3f}% > "
                    f"{SEGMENTED_ERROR_GATE_PCT}%"
                )

    if args.json is not None:
        payload = {
            "bench": "streaming_convergence",
            "scale": args.scale,
            "results": entries,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    for failure in failures:
        print(f"WARNING: {failure}")
    return 1 if failures else 0


def test_streaming_convergence_bit_identity(scale):
    """Pytest entry: streamed stats/selections must equal the batch path."""
    engine = AnalysisEngine()
    for name in SCENARIOS:
        knobs = dict(SCENARIOS[name])
        gate = knobs.pop("gate")
        analysis = AnalysisSpec(scale=min(scale, 0.05), **knobs.pop("analysis"))
        frame = engine.frame_for(analysis)
        assert_prefix_bit_identity(engine, analysis, max(1, len(frame) // 2))
        assert_full_stream_matches_batch(engine, analysis)
        if gate == "stationary":
            assert_segmented_is_passthrough(engine, analysis, knobs["cadence"])


if __name__ == "__main__":
    raise SystemExit(main())
