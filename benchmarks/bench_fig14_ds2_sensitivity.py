"""Fig 14 bench: DS2 sensitivity to the hardware knobs and to ``e``.

Like Fig 13's bench, the target-count study runs as a declarative grid
on the sweep engine, all thresholds sharing one identification epoch.
"""

from repro.api.engine import default_engine
from repro.api.parallel import run_sweep
from repro.experiments import fig14
from repro.experiments.sensitivity import (
    THRESHOLDS,
    sensitivity_curves,
    threshold_run_violations,
    threshold_sweep,
)


def test_fig14_ds2_sensitivity(benchmark, scale, emit):
    result = benchmark.pedantic(fig14.run, args=(scale,), rounds=1, iterations=1)
    emit(result)
    curves = sensitivity_curves("ds2", scale)
    for config_index, curve in curves.items():
        uplifts = [u for _, u in curve]
        assert max(uplifts) - min(uplifts) > 0.3, f"config {config_index} flat"
        # Paper shape: short sequences are less sensitive (region below
        # the O2 plateau), so the curve rises with SL.
        assert uplifts[0] == min(uplifts)
    # The plateau exists: the upper half of the SL range is nearly flat.
    for curve in curves.values():
        upper = [u for _, u in curve[len(curve) // 2:]]
        assert (max(upper) - min(upper)) / max(upper) < 0.05


def test_fig14_ds2_target_count_sweep(scale):
    """Target-count sensitivity via the sweep engine (paper Fig 14 axis)."""
    run = run_sweep(threshold_sweep("ds2", scale), engine=default_engine())
    assert len(run.results) == len(THRESHOLDS)
    assert threshold_run_violations(run) == []
