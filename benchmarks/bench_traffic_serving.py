"""Traffic serving bench: SeqPoint identification on a live request stream.

For the paper's two end-to-end networks this bench drives the
``repro.traffic`` serving loop — seeded arrivals, corpus-sampled
request lengths, dynamic batching, device FIFO — and reports

* **stationary mixes**: the online identifier converges on the live
  batch stream and its serving-time projection lands within the
  paper's threshold ``e`` of the actually served total,
* **drifting mixes**: the request mix shifts mid-stream (disjoint
  corpus quantiles), the drift guard fires at least one reset, and the
  identifier re-converges on the new mix, and
* **SLO percentiles**: request latency p50/p95/p99 per batching
  policy, the serving-facing view of what each policy trades away, and
* **serve fast path**: the shape-memoized columnar serve
  (``TrafficSimulator(memoized=True)``, the default) against the
  retained per-batch scalar walk on one pre-formed paper-scale request
  stream — bit-identity asserted every trial (frame, latency columns,
  percentiles, streaming convergence), speedup gated at ≥5x on
  non-smoke runs (skipped on 1-core hosts).

Unlike the corpus-replay benches, load here is set by the request
count and arrival rate — the corpus scale only sets the pool request
lengths are sampled from.  The convergence/error gates are calibrated
at the default ``--scale 0.3``; other scales still run but the gates
are only asserted at the calibrated default.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_traffic_serving.py
        [--smoke] [--json BENCH_traffic_serving.json]

or through pytest (``pytest benchmarks/bench_traffic_serving.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.api import AnalysisEngine
from repro.hw.config import paper_config
from repro.hw.device import GpuDevice
from repro.stream import StreamingSlStatistics
from repro.traffic import (
    TrafficFeed,
    TrafficSimulator,
    TrafficSpec,
    form_batches,
    sample_requests,
)

#: The paper's identification-error threshold e (percent), applied to
#: the streaming projected-vs-actual serving time on stationary mixes.
ERROR_THRESHOLD_PCT = 1.0
#: Corpus scale the gates are calibrated at (see module docstring).
CALIBRATED_SCALE = 0.3

#: Serving knobs shared by every scenario: small batches so the stream
#: carries enough batch-formation events for cadence-8 checks.  The
#: drifting scenarios serve a longer stream so the identifier has room
#: to re-converge after the guard resets it at the shift.
_SERVE = dict(rate=128.0, cadence=8, patience=3, rtol=0.01, sl_rtol=0.2)

#: Mid-stream mix shift: a short head on the short-request half of the
#: corpus, then the long-request half — disjoint quantiles, so padded
#: batch shapes (and per-SL means) move when the shift lands.
_SHIFT = [{"fraction": 0.15, "quantile_hi": 0.5},
          {"fraction": 0.85, "quantile_lo": 0.5}]

#: Per-network scenarios.  GNMT serves its paper pipeline (pooled
#: bucketing).  DS2 serves shuffled when stationary (SortaGrad's sorted
#: epoch is a monotone changepoint stream, as in the streaming bench)
#: and pooled when drifting — pooled recomposition is what makes the
#: mix shift visible to the per-SL drift guard, which also needs the
#: tighter ``drift_rtol``.
SCENARIOS = {
    "gnmt-stationary": dict(
        analysis=dict(network="gnmt", batch_size=16),
        requests=2048, drift_rtol=0.1, **_SERVE,
    ),
    "gnmt-drifting": dict(
        analysis=dict(network="gnmt", batch_size=16),
        requests=4096, arrival="bursty", phases=_SHIFT, drift_rtol=0.1,
        **_SERVE,
    ),
    "ds2-stationary": dict(
        analysis=dict(network="ds2", batch_size=16, batching="shuffled"),
        requests=2048, drift_rtol=0.1, **_SERVE,
    ),
    "ds2-drifting": dict(
        analysis=dict(network="ds2", batch_size=16, batching="pooled"),
        requests=4096, arrival="bursty", phases=_SHIFT, drift_rtol=0.05,
        **_SERVE,
    ),
}

#: Batching policies compared in the SLO table (stationary mix).
SLO_POLICIES = ("pooled", "sorted", "shuffled")

#: Serve fast-path knobs: paper-scale stream (the memoized path's win
#: grows with batches-per-unique-shape), min-of-repeats timing, and a
#: speedup gate mirroring the kernel-timing bench's self-skip rules.
SERVE_REQUESTS = 65536
SERVE_REPEATS = 3
SERVE_SPEEDUP_GATE = 5.0
MIN_RELIABLE_SERVE_S = 0.05


def build_spec(name: str, scale: float, requests: int | None = None):
    knobs = json.loads(json.dumps(SCENARIOS[name]))  # deep copy
    knobs["analysis"]["scale"] = scale
    if requests is not None:
        knobs["requests"] = requests
    return TrafficSpec.from_dict(knobs)


def run_scenario(engine: AnalysisEngine, name: str, scale: float,
                 requests: int | None = None):
    start = time.perf_counter()
    result = engine.run_traffic(build_spec(name, scale, requests))
    return result, time.perf_counter() - start


def check_gates(name: str, result) -> list[str]:
    """The acceptance story, as assertable facts."""
    failures = []
    if not result.converged:
        failures.append(f"{name}: identifier did not converge")
    if name.endswith("-stationary"):
        if result.drift_resets != 0:
            failures.append(
                f"{name}: {result.drift_resets} drift resets on a "
                "stationary mix"
            )
        if result.streaming_projection_error_pct > ERROR_THRESHOLD_PCT:
            failures.append(
                f"{name}: serving-time projection error "
                f"{result.streaming_projection_error_pct:.3f}% > e"
            )
    else:
        if result.drift_resets < 1:
            failures.append(f"{name}: drift guard never fired on the shift")
    return failures


def report(name, result, seconds):
    status = "converged" if result.converged else "NOT converged"
    print(
        f"  {name:>15}: {status} at {result.iterations_consumed}/"
        f"{result.batches} batches, {result.drift_resets} drift resets, "
        f"projection error {result.streaming_projection_error_pct:.3f}%, "
        f"{seconds * 1e3:.0f} ms"
    )


def slo_table(engine: AnalysisEngine, scale: float, requests: int):
    """Latency percentiles per batching policy on the stationary mix."""
    rows = []
    for network in ("gnmt", "ds2"):
        for policy in SLO_POLICIES:
            spec = TrafficSpec.from_dict({
                "analysis": {"network": network, "batch_size": 16,
                             "batching": policy, "scale": scale},
                **{k: _SERVE[k] for k in ("rate", "cadence", "patience",
                                          "rtol", "sl_rtol")},
                "requests": requests,
            })
            start = time.perf_counter()
            result = engine.run_traffic(spec)
            seconds = time.perf_counter() - start
            latency = result.latency
            rows.append((f"{network}-slo-{policy}", seconds, result, latency))
            print(
                f"  {network:>5} {policy:>9}: p50 {latency['p50_ms']:8.1f} ms"
                f"  p95 {latency['p95_ms']:8.1f} ms"
                f"  p99 {latency['p99_ms']:8.1f} ms"
                f"  (mean wait {result.queue_wait['mean_ms']:.1f} ms)"
            )
    return rows


def assert_served_identical(fast, slow, spec) -> None:
    """Bit-identity of the memoized serve against the scalar walk."""
    assert fast.frame.to_payload() == slow.frame.to_payload()
    assert np.array_equal(fast.queue_wait_s, slow.queue_wait_s)
    assert np.array_equal(fast.latency_s, slow.latency_s)
    assert fast.makespan_s == slow.makespan_s
    assert fast.latency_percentiles() == slow.latency_percentiles()
    assert fast.queue_wait_percentiles() == slow.queue_wait_percentiles()
    runs = [
        spec.build_identifier().run(
            TrafficFeed(served),
            stats=StreamingSlStatistics.for_frame(served.frame),
        )
        for served in (fast, slow)
    ]
    assert runs[0].converged == runs[1].converged
    assert runs[0].iterations_consumed == runs[1].iterations_consumed
    assert [
        (p.seq_len, p.tgt_len, p.weight) for p in runs[0].selection.points
    ] == [
        (p.seq_len, p.tgt_len, p.weight) for p in runs[1].selection.points
    ]


def serve_fastpath_rows(engine: AnalysisEngine, scale: float, requests: int):
    """Memoized vs scalar serve on one pre-formed request stream.

    Both simulators share the device (measurements are deterministic
    and memoized there) and are warmed once, so the repeats time the
    serve paths themselves: O(unique shapes) columnar work against
    O(batches) Python stepping.
    """
    rows = []
    print("serve fast path (memoized vs per-batch scalar):")
    for network in ("gnmt", "ds2"):
        spec = build_spec(f"{network}-stationary", scale, requests)
        resolved = engine.resolve(spec.analysis)
        stream = sample_requests(
            resolved.train_data, spec.phases, spec.requests,
            spec.analysis.seed,
        )
        arrival_s = spec.build_arrivals().times(
            len(stream), spec.analysis.seed
        )
        batches = form_batches(
            arrival_s, stream.seq_len, stream.tgt_len,
            resolved.batching, spec.max_wait_s,
        )
        device = GpuDevice(paper_config(spec.analysis.config))
        simulators = {
            memoized: TrafficSimulator(
                resolved.model, spec.analysis.dataset, resolved.batching,
                device, memoized=memoized,
            )
            for memoized in (True, False)
        }
        # Warm both executors: repeats then measure serve-path overhead,
        # not first-shape device timing.
        for simulator in simulators.values():
            simulator.serve(stream, arrival_s, batches)
        memoized_s = scalar_s = float("inf")
        for _ in range(SERVE_REPEATS):
            start = time.perf_counter()
            fast = simulators[True].serve(stream, arrival_s, batches)
            memoized_s = min(memoized_s, time.perf_counter() - start)
            start = time.perf_counter()
            slow = simulators[False].serve(stream, arrival_s, batches)
            scalar_s = min(scalar_s, time.perf_counter() - start)
            assert_served_identical(fast, slow, spec)
        shapes = {(len(b), b.seq_len, b.tgt_len) for b in batches}
        speedup = scalar_s / memoized_s
        rows.append(
            {
                "name": f"{network}-serve-fastpath",
                "seconds": memoized_s,
                "speedup": speedup,
                f"{network}_serve_scalar_ms": scalar_s * 1e3,
                f"{network}_serve_memoized_ms": memoized_s * 1e3,
                "batches": len(batches),
                "unique_shapes": len(shapes),
            }
        )
        print(
            f"  {network:>5}: {len(batches)} batches collapse onto "
            f"{len(shapes)} unique shapes; scalar {scalar_s * 1e3:.1f} ms, "
            f"memoized {memoized_s * 1e3:.1f} ms ({speedup:.1f}x), "
            "bit-identical every trial"
        )
    return rows


def check_serve_gate(rows) -> list[str]:
    """The ≥5x serve gate, with the kernel bench's self-skip rules."""
    cores = os.cpu_count() or 1
    if cores < 2:
        print(f"NOTE: only {cores} CPU; serve speedup gate skipped")
        return []
    failures = []
    for row in rows:
        scalar_s = row["seconds"] * row["speedup"]
        if scalar_s < MIN_RELIABLE_SERVE_S:
            print(
                f"NOTE: {row['name']}: scalar serve took "
                f"{scalar_s * 1e3:.0f} ms "
                f"(< {MIN_RELIABLE_SERVE_S * 1e3:.0f} ms); too fast to gate"
            )
        elif row["speedup"] < SERVE_SPEEDUP_GATE:
            failures.append(
                f"{row['name']}: memoized serve speedup "
                f"{row['speedup']:.2f}x below the "
                f"{SERVE_SPEEDUP_GATE:.0f}x gate"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny request stream, no convergence gates")
    parser.add_argument("--scale", type=float, default=CALIBRATED_SCALE,
                        help="corpus scale the request mix samples from "
                             f"(default {CALIBRATED_SCALE}: gate-calibrated)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write machine-readable results (BENCH_*.json schema)")
    args = parser.parse_args(argv)
    requests = None
    if args.smoke:
        args.scale = 0.05
        requests = 512

    engine = AnalysisEngine()
    gated = not args.smoke and args.scale == CALIBRATED_SCALE
    print(f"traffic serving at corpus scale {args.scale} "
          f"({'gates on' if gated else 'gates off'})")
    entries = []
    failures = []
    for name in SCENARIOS:
        result, seconds = run_scenario(engine, name, args.scale, requests)
        report(name, result, seconds)
        entries.append(
            {
                "name": name,
                "seconds": seconds,
                # The cost-reduction factor: batches served over the
                # batches the online identifier actually watched.
                "speedup": result.batches / result.iterations_consumed,
                "converged": result.converged,
                "drift_resets": result.drift_resets,
                "projection_error_pct": result.streaming_projection_error_pct,
                "iterations_consumed": result.iterations_consumed,
                "batches": result.batches,
            }
        )
        if gated:
            failures.extend(check_gates(name, result))

    print("request latency per batching policy (stationary mix):")
    for name, seconds, result, latency in slo_table(
        engine, args.scale, requests or 2048
    ):
        entries.append(
            {
                "name": name,
                "seconds": seconds,
                "speedup": result.batches / result.iterations_consumed,
                "p50_ms": latency["p50_ms"],
                "p95_ms": latency["p95_ms"],
                "p99_ms": latency["p99_ms"],
            }
        )

    fastpath = serve_fastpath_rows(
        engine, args.scale, 512 if args.smoke else SERVE_REQUESTS
    )
    entries.extend(fastpath)
    if gated:
        failures.extend(check_serve_gate(fastpath))

    if args.json is not None:
        payload = {
            "bench": "traffic_serving",
            "scale": args.scale,
            "results": entries,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    for failure in failures:
        print(f"WARNING: {failure}")
    return 1 if failures else 0


def test_traffic_serving_invariants(scale):
    """Pytest entry: structural invariants of one served stream."""
    engine = AnalysisEngine()
    result, _ = run_scenario(
        engine, "gnmt-stationary", min(scale, 0.05), requests=512
    )
    assert result.requests == 512
    assert result.latency["count"] == 512
    assert result.iterations_consumed <= result.batches
    assert result.makespan_s >= result.actual_total_s > 0.0
    again, _ = run_scenario(
        engine, "gnmt-stationary", min(scale, 0.05), requests=512
    )
    assert again.to_dict() == result.to_dict()


def test_serve_fastpath_bit_identity(scale):
    """Pytest entry: memoized serve ≡ scalar walk (asserted inside)."""
    rows = serve_fastpath_rows(AnalysisEngine(), min(scale, 0.05), 512)
    assert {row["name"] for row in rows} == {
        "gnmt-serve-fastpath", "ds2-serve-fastpath"
    }
    for row in rows:
        assert 1 <= row["unique_shapes"] <= row["batches"]
        assert row["speedup"] > 0.0


if __name__ == "__main__":
    raise SystemExit(main())
