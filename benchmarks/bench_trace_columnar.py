"""Columnar trace core bench: old per-record path vs shape-memoized path.

Compares end-to-end *analysis* time — simulate an epoch, group it per
unique SL, histogram it, and run the full selector sweep (seqpoint,
frequent, median, prior) — between:

* **legacy**: the pre-columnar pipeline — per-iteration epoch loop
  (``run_epoch(columnar=False)``) plus the interpreted per-record
  analysis scans this file preserves verbatim; each selector re-groups
  the trace, as the pre-refactor selectors did.
* **columnar**: ``run_epoch_frame`` (one kernel walk per unique shape,
  vectorized planning and broadcasting) plus the vectorized,
  frame-memoised analysis the library now ships.

Two timings are reported per run:

* *cold*: epoch 0 on untouched simulators, including the one-off
  kernel lowering/measurement cost.  That cost is O(unique shapes),
  identical on both paths by construction (the same executor substrate
  serves both), and dominates a first epoch — so this ratio mostly
  shows the shared floor;
* *steady-state*: the full multi-epoch analysis after the kernel
  substrate has seen every shape once (the regime of sweeps, cached
  engines, and long training runs).  Here the trace data path — epoch
  planning, per-iteration bookkeeping, trace construction, grouping,
  selection — is what's measured, and that is what the columnar
  refactor targets.  The headline speedup (the ≥3x claim in the
  README) is this one.

Both paths must agree bit-for-bit; the bench asserts it on every epoch.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_trace_columnar.py [--smoke]
        [--json BENCH_trace_columnar.json]

or through pytest (``pytest benchmarks/bench_trace_columnar.py``).
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro.api.registry import DATASETS, MODELS, build_batching
from repro.train.frame import TraceFrame
from repro.core.baselines import FrequentSelector, MedianSelector, PriorSelector
from repro.core.seqpoint import SeqPointSelector
from repro.core.sl_stats import SlStatistics
from repro.hw.config import paper_config
from repro.hw.device import GpuDevice
from repro.train.runner import TrainingRunSimulator

_DATASET = {"gnmt": "iwslt", "ds2": "librispeech"}
_BATCHING = {"gnmt": "pooled", "ds2": "sortagrad"}


def build_simulator(
    network: str, scale: float, noise_sigma: float
) -> TrainingRunSimulator:
    dataset = DATASETS.create(_DATASET[network], scale=scale)
    return TrainingRunSimulator(
        model=MODELS.create(network),
        dataset=dataset,
        batching=build_batching(_BATCHING[network], 64, dataset=_DATASET[network]),
        device=GpuDevice(paper_config(1)),
        noise_sigma=noise_sigma,
    )


# -- the pre-columnar analysis loops, preserved verbatim ---------------


def legacy_sl_statistics(records):
    """Interpreted per-record grouping (pre-refactor SlStatistics)."""
    by_sl = {}
    for record in records:
        by_sl.setdefault(record.seq_len, []).append(record)
    stats = []
    for seq_len in sorted(by_sl):
        group = by_sl[seq_len]
        total = sum(r.time_s for r in group)
        mean = total / len(group)
        representative = min(group, key=lambda r: abs(r.time_s - mean))
        stats.append((seq_len, len(group), mean, total, representative))
    return stats


def legacy_histogram(records):
    histogram = {}
    for record in records:
        histogram[record.seq_len] = histogram.get(record.seq_len, 0) + 1
    return histogram


def legacy_seqpoint(records, max_unique=10, initial_bins=5, threshold=1.0):
    """Pre-refactor SeqPoint loop: re-group, bin, project in Python."""
    stats = legacy_sl_statistics(records)
    actual = sum(total for _, _, _, total, _ in stats)

    def project(points):
        return sum(weight * rep.time_s for weight, rep in points)

    if len(stats) <= max_unique:
        points = [(float(count), rep) for _, count, _, _, rep in stats]
        projected = project(points)
        return points, abs(projected - actual) / actual * 100.0

    lo, hi = stats[0][0], stats[-1][0]
    k = min(initial_bins, len(stats))
    while True:
        width = (hi - lo) / k
        buckets = [[] for _ in range(k)]
        for stat in stats:
            buckets[min(int((stat[0] - lo) / width), k - 1)].append(stat)
        points = []
        for bucket in buckets:
            if not bucket:
                continue
            iterations = sum(count for _, count, _, _, _ in bucket)
            total = sum(total for _, _, _, total, _ in bucket)
            mean = total / iterations
            best = min(bucket, key=lambda stat: abs(stat[2] - mean))
            points.append((float(iterations), best[4]))
        projected = project(points)
        error = abs(projected - actual) / actual * 100.0
        if error < threshold or k >= len(stats):
            return points, error
        k += 1


def legacy_analysis(trace):
    """The full interpreted sweep: every selector re-scans the records."""
    records = trace.records
    total_time = sum(record.time_s for record in records)
    histogram = legacy_histogram(records)
    points, error = legacy_seqpoint(records)
    # frequent: per-selector re-grouping, as the old selectors did.
    frequent = max(legacy_sl_statistics(records), key=lambda stat: stat[1])
    ordered = sorted(record.seq_len for record in records)
    median_stats = legacy_sl_statistics(records)
    median_sl = ordered[len(ordered) // 2]
    start = min(200, max(0, len(records) - 50))
    prior = records[start:start + 50]
    return {
        "total_time_s": total_time,
        "unique_sls": len(histogram),
        "seqpoint_sls": sorted(rep.seq_len for _, rep in points),
        "seqpoint_error_pct": error,
        "frequent_sl": frequent[0],
        "median_sl": median_sl,
        "prior_window": len(prior),
        "_median_groups": len(median_stats),
    }


def columnar_analysis(frame):
    """The vectorized sweep over the columnar frame."""
    SlStatistics.from_trace(frame)
    result = SeqPointSelector().select(frame)
    frequent = FrequentSelector().select(frame)
    median = MedianSelector().select(frame)
    prior = PriorSelector().select(frame)
    return {
        "total_time_s": frame.total_time_s,
        "unique_sls": len(frame.iteration_histogram()),
        "seqpoint_sls": sorted(result.selection.seq_lens),
        "seqpoint_error_pct": result.identification_error_pct,
        "frequent_sl": frequent.points[0].seq_len,
        "median_sl": median.points[0].seq_len,
        "prior_window": len(prior.points),
    }


def run_comparison(network: str, scale: float, epochs: int, sigma: float):
    legacy_sim = build_simulator(network, scale, sigma)
    columnar_sim = build_simulator(network, scale, sigma)

    # Cold first epochs on untouched simulators (one-off kernel walks
    # included; that cost is shared by both paths).
    start = time.perf_counter()
    cold_trace = legacy_sim.run_epoch(epoch=0, include_eval=False, columnar=False)
    legacy_analysis(cold_trace)
    cold_legacy = time.perf_counter() - start
    start = time.perf_counter()
    cold_frame = columnar_sim.run_epoch_frame(epoch=0, include_eval=False)
    columnar_analysis(cold_frame)
    cold_columnar = time.perf_counter() - start

    # Warm the shared kernel substrate over every epoch's shapes, so
    # the timed loop below measures the trace data path, not the
    # one-off measurement cost (identical on both paths anyway).
    for sim in (legacy_sim, columnar_sim):
        for epoch in range(epochs):
            sim.run_epoch_frame(epoch=epoch, include_eval=False)

    legacy_times, columnar_times = [], []
    iterations = unique = 0
    for epoch in range(epochs):
        start = time.perf_counter()
        trace = legacy_sim.run_epoch(
            epoch=epoch, include_eval=False, columnar=False
        )
        legacy_result = legacy_analysis(trace)
        legacy_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        frame = columnar_sim.run_epoch_frame(epoch=epoch, include_eval=False)
        columnar_result = columnar_analysis(frame)
        columnar_times.append(time.perf_counter() - start)

        iterations = len(frame)
        unique = len(frame.unique_seq_lens())
        assert frame.time_s.tolist() == [r.time_s for r in trace.records]
        legacy_result.pop("_median_groups")
        for key, value in columnar_result.items():
            expected = legacy_result[key]
            if isinstance(value, float):
                # Summation order differs (np pairwise vs sequential),
                # so totals agree to within float rounding only.
                assert abs(value - expected) <= 1e-9 * max(1.0, abs(expected))
            else:
                assert expected == value, (key, expected, value)

    return (cold_legacy, cold_columnar), legacy_times, columnar_times, iterations, unique


def run_cold_load(network: str, scale: float, sigma: float, repeats: int = 5):
    """Cold artefact loads: v2 JSON parse vs v3 binary mmap + views.

    Saves one simulated epoch in both formats, times ``repeats`` cold
    :meth:`TraceFrame.load` calls of each (best-of, to shave scheduler
    noise), and asserts the loaded frames are payload-bit-identical.
    """
    sim = build_simulator(network, scale, sigma)
    frame = sim.run_epoch_frame(epoch=0, include_eval=False)
    expected = json.dumps(frame.to_payload(), sort_keys=True)
    with tempfile.TemporaryDirectory() as tmp:
        artefacts = (
            ("json", Path(tmp) / "epoch.json", 2),
            ("binary", Path(tmp) / "epoch.npt", 3),
        )
        for _, path, version in artefacts:
            frame.save(path, version=version)
        times: dict[str, float] = {}
        for fmt, path, _ in artefacts:
            samples = []
            for _ in range(repeats):
                start = time.perf_counter()
                loaded = TraceFrame.load(path)
                samples.append(time.perf_counter() - start)
            assert json.dumps(loaded.to_payload(), sort_keys=True) == expected
            times[fmt] = min(samples)
    return len(frame), times["json"], times["binary"]


def report_cold_load(network, iterations, json_s, binary_s):
    speedup = json_s / binary_s
    print(
        f"  cold artefact load ({iterations} iterations):      "
        f"json v2  {json_s * 1e3:8.1f} ms   "
        f"binary v3 {binary_s * 1e3:8.1f} ms   "
        f"({speedup:.2f}x)"
    )
    return speedup


def report(network, cold, legacy_times, columnar_times, iterations, unique):
    cold_legacy, cold_columnar = cold
    steady_legacy = sum(legacy_times)
    steady_columnar = sum(columnar_times)
    speedup = steady_legacy / steady_columnar
    print(
        f"{network}: {iterations} iterations/epoch, {unique} unique SLs, "
        f"{len(legacy_times)} epochs"
    )
    print(
        f"  cold epoch (incl. shared one-off kernel walks): "
        f"legacy {cold_legacy * 1e3:8.1f} ms   "
        f"columnar {cold_columnar * 1e3:8.1f} ms   "
        f"({cold_legacy / cold_columnar:.2f}x)"
    )
    print(
        f"  multi-epoch analysis (warm kernel substrate):   "
        f"legacy {steady_legacy * 1e3:8.1f} ms   "
        f"columnar {steady_columnar * 1e3:8.1f} ms   "
        f"({speedup:.2f}x)"
    )
    return speedup


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny corpus, 2 epochs, no speedup assertion")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="corpus scale (default 0.5)")
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--sigma", type=float, default=0.0,
                        help="measurement-noise sigma (default 0: exact)")
    parser.add_argument("--networks", default="gnmt",
                        help="comma-separated: gnmt,ds2")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write machine-readable results (BENCH_*.json schema)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.scale, args.epochs = 0.05, 2

    worst = float("inf")
    worst_load = float("inf")
    entries = []
    for network in args.networks.split(","):
        outcome = run_comparison(network, args.scale, args.epochs, args.sigma)
        worst = min(worst, report(network, *outcome))
        _, legacy_times, columnar_times, _, _ = outcome
        steady_legacy, steady_columnar = sum(legacy_times), sum(columnar_times)
        entries.append(
            {"name": f"{network}_steady_legacy", "seconds": steady_legacy,
             "speedup": 1.0}
        )
        entries.append(
            {"name": f"{network}_steady_columnar", "seconds": steady_columnar,
             "speedup": steady_legacy / steady_columnar}
        )
        iterations, json_s, binary_s = run_cold_load(
            network, args.scale, args.sigma
        )
        worst_load = min(
            worst_load, report_cold_load(network, iterations, json_s, binary_s)
        )
        entries.append(
            {"name": f"{network}_cold_load_json", "seconds": json_s,
             "speedup": 1.0}
        )
        entries.append(
            {"name": f"{network}_cold_load_binary", "seconds": binary_s,
             "speedup": json_s / binary_s}
        )
    if args.json is not None:
        payload = {"bench": "trace_columnar", "scale": args.scale, "results": entries}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    if not args.smoke and worst < 3.0:
        print(f"WARNING: steady-state speedup {worst:.2f}x below the 3x target")
        return 1
    if not args.smoke and worst_load < 5.0:
        print(f"WARNING: cold-load speedup {worst_load:.2f}x below the 5x target")
        return 1
    return 0


def test_cold_load_binary_beats_json(scale):
    """Pytest entry: v3 binary cold loads must beat v2 JSON parsing."""
    _, json_s, binary_s = run_cold_load("gnmt", max(scale, 0.2), sigma=0.0)
    assert binary_s < json_s, f"binary {binary_s:.4f}s vs json {json_s:.4f}s"


def test_columnar_steady_state_speedup(scale):
    """Pytest entry: the columnar path must beat legacy by >=2x."""
    _, legacy_times, columnar_times, _, _ = run_comparison(
        "gnmt", max(scale, 0.2), epochs=3, sigma=0.0
    )
    steady_legacy = sum(legacy_times)
    steady_columnar = sum(columnar_times)
    assert steady_columnar < steady_legacy / 2.0, (
        f"columnar {steady_columnar:.4f}s vs legacy {steady_legacy:.4f}s"
    )


if __name__ == "__main__":
    raise SystemExit(main())
