"""§VII-E bench: SeqPoint on inference request streams."""

from repro.experiments import inference
from repro.experiments.inference import inference_outcome


def test_inference(benchmark, scale, emit):
    result = benchmark.pedantic(
        inference.run, args=(scale,), rounds=1, iterations=1
    )
    emit(result)
    for network in ("gnmt", "ds2"):
        outcome = inference_outcome(network, scale)
        assert outcome["seqpoints"] <= outcome["requests"]
        if scale >= 0.5:  # small request sets are all-unique corner cases
            assert outcome["config3_error_pct"] < 5.0
