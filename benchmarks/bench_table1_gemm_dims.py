"""Table I bench: classifier GEMM dims across iterations match the paper."""

from repro.experiments import table1


def test_table1_gemm_dims(benchmark, scale, emit):
    result = benchmark.pedantic(table1.run, args=(scale,), rounds=1, iterations=1)
    emit(result)
    by_key = {(row[0], row[1]): row for row in result.rows}
    # GNMT classifier forward: M = vocab 36549, K = hidden 1024.
    assert by_key[("gnmt", "GEMM-a")][2:4] == [36549, 1024]
    assert by_key[("gnmt", "GEMM-b")][2:4] == [1024, 36549]
    # DS2 classifier forward: M = alphabet 29, K = 2x800 GRU features.
    assert by_key[("ds2", "GEMM-a")][2:4] == [29, 1600]
    # Paper's exact N values at the chosen sequence lengths.
    assert by_key[("gnmt", "GEMM-a")][4:] == [576, 6016]
    assert by_key[("ds2", "GEMM-a")][4:] == [3776, 25728]
