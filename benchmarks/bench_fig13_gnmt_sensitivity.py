"""Fig 13 bench: GNMT sensitivity to the hardware knobs and to ``e``.

The per-SL uplift curves check the paper's shape; the target-count
study runs as a declarative grid on the sweep engine
(:mod:`repro.api.parallel`), all thresholds sharing one identification
epoch through the trace cache.
"""

from repro.api.engine import default_engine
from repro.api.parallel import run_sweep
from repro.experiments import fig13
from repro.experiments.sensitivity import (
    THRESHOLDS,
    sensitivity_curves,
    threshold_run_violations,
    threshold_sweep,
)


def test_fig13_gnmt_sensitivity(benchmark, scale, emit):
    result = benchmark.pedantic(fig13.run, args=(scale,), rounds=1, iterations=1)
    emit(result)
    curves = sensitivity_curves("gnmt", scale)
    for config_index, curve in curves.items():
        uplifts = [u for _, u in curve]
        # Paper shape: sensitivity varies meaningfully across SLs...
        spread = max(uplifts) - min(uplifts)
        assert spread > 0.5, f"config {config_index} flat: {uplifts}"
        # ...rising from short sequences toward a plateau.
        assert uplifts[0] < max(uplifts)
    # Clock and CU bands sit far above the cache bands, as in the paper.
    assert min(u for _, u in curves[3]) > max(u for _, u in curves[5])


def test_fig13_gnmt_target_count_sweep(scale):
    """Target-count sensitivity via the sweep engine (paper Fig 13 axis)."""
    run = run_sweep(threshold_sweep("gnmt", scale), engine=default_engine())
    assert len(run.results) == len(THRESHOLDS)
    assert threshold_run_violations(run) == []
