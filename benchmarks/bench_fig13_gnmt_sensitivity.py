"""Fig 13 bench: GNMT per-SL sensitivity to the hardware knobs."""

from repro.experiments import fig13
from repro.experiments.sensitivity import sensitivity_curves


def test_fig13_gnmt_sensitivity(benchmark, scale, emit):
    result = benchmark.pedantic(fig13.run, args=(scale,), rounds=1, iterations=1)
    emit(result)
    curves = sensitivity_curves("gnmt", scale)
    for config_index, curve in curves.items():
        uplifts = [u for _, u in curve]
        # Paper shape: sensitivity varies meaningfully across SLs...
        spread = max(uplifts) - min(uplifts)
        assert spread > 0.5, f"config {config_index} flat: {uplifts}"
        # ...rising from short sequences toward a plateau.
        assert uplifts[0] < max(uplifts)
    # Clock and CU bands sit far above the cache bands, as in the paper.
    assert min(u for _, u in curves[3]) > max(u for _, u in curves[5])
