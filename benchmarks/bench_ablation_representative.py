"""Design ablation bench: bin-representative selection strategies."""

from repro.experiments import ablation_representative
from repro.experiments.ablation_representative import compare


def test_ablation_representative(benchmark, scale, emit):
    result = benchmark.pedantic(
        ablation_representative.run, args=(scale,), rounds=1, iterations=1
    )
    emit(result)
    for network in ("gnmt", "ds2"):
        outcome = compare(network, scale)
        # The paper's closest-to-bin-average choice is accurate; the
        # comparative claim needs full-size bins to be stable.
        assert outcome["closest-mean"] < 3.0
        if scale >= 0.5:
            assert outcome["closest-mean"] <= outcome["median-sl"] * 1.5 + 0.5
