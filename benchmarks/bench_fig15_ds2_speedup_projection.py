"""Fig 15 bench: DS2 speedup-projection errors."""

from repro.experiments import fig15
from repro.experiments.speedup_projection import speedup_projection_errors
from repro.util.stats import geomean


def test_fig15_ds2_speedup_projection(benchmark, scale, emit):
    result = benchmark.pedantic(fig15.run, args=(scale,), rounds=1, iterations=1)
    emit(result)
    errors, actuals = speedup_projection_errors("ds2", scale)
    summary = {m: geomean(list(v.values())) for m, v in errors.items()}
    # Paper shape: SeqPoint projects speedups within a fraction of a
    # percentage point; worst bounds arbitrary selection.
    assert summary["seqpoint"] < 1.0
    assert summary["seqpoint"] < summary["worst"]
    assert summary["worst"] > 1.0
    if scale >= 0.5:
        assert summary["seqpoint"] <= min(
            summary["frequent"], summary["prior"], summary["worst"]
        )
    # The studied uplifts are substantial (clock ~60%+, CUs ~100%+).
    assert actuals[2] > 40.0
    assert actuals[3] > 80.0
