"""§V-C bench: counter statistics project from runtime-picked SeqPoints."""

from repro.experiments import counter_projection
from repro.experiments.counter_projection import counter_errors


def test_counter_projection(benchmark, scale, emit):
    result = benchmark.pedantic(
        counter_projection.run, args=(scale,), rounds=1, iterations=1
    )
    emit(result)
    for network in ("gnmt", "ds2"):
        errors = counter_errors(network, scale)
        # Runtime-identified points also summarise the counter totals:
        # all three project within a few percent.
        assert max(errors.values()) < 6.0
