"""Fig 10 bench: the SeqPoint identification loop."""

from repro.experiments import fig10
from repro.experiments.selectors import seqpoint_result


def test_fig10_mechanism(benchmark, scale, emit):
    result = benchmark.pedantic(fig10.run, args=(scale,), rounds=1, iterations=1)
    emit(result)
    for network in ("gnmt", "ds2"):
        outcome = seqpoint_result(network, scale)
        # The loop met its error threshold (or exhausted unique SLs).
        assert outcome.identification_error_pct < 1.0 or outcome.k > 0
        # The representative set is tiny relative to the epoch.
        assert len(outcome.selection) <= 40
