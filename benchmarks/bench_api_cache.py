"""API-cache bench: repeated analyses reuse the simulated epoch trace.

The engine's content-addressed cache is what makes sweeping selectors
or thresholds over one scenario cheap: the identification epoch is
simulated once and every subsequent analysis of the same scenario is a
cache hit.  This bench makes the speedup visible and asserts the
hit/miss accounting that the speedup rests on.
"""

import time

from repro.api import AnalysisEngine, AnalysisSpec


def test_api_cache_hit_speedup(benchmark, scale):
    engine = AnalysisEngine()
    spec = AnalysisSpec(network="gnmt", scale=scale)

    start = time.perf_counter()
    first = engine.run(spec)
    cold_s = time.perf_counter() - start
    assert engine.cache.stats()["misses"] == 1

    warm = benchmark.pedantic(engine.run, args=(spec,), rounds=3, iterations=1)

    start = time.perf_counter()
    second = engine.run(spec)
    warm_s = time.perf_counter() - start

    stats = engine.cache.stats()
    assert stats["misses"] == 1, "reruns must not re-simulate"
    assert stats["hits"] >= 4
    assert warm_s < cold_s
    assert first.to_dict() == second.to_dict() == warm.to_dict()
    print(
        f"\ncold analysis {cold_s:.3f}s vs cached {warm_s:.3f}s "
        f"({cold_s / max(warm_s, 1e-9):.0f}x); cache {stats}"
    )


def test_api_run_many_dedup(benchmark, scale):
    """Specs differing only in selector share one identification epoch."""
    engine = AnalysisEngine()
    methods = ("seqpoint", "frequent", "median", "prior")
    specs = [
        AnalysisSpec(network="ds2", scale=scale, selector=method)
        for method in methods
    ]

    results = benchmark.pedantic(
        engine.run_many, args=(specs,), rounds=1, iterations=1
    )

    assert tuple(result.method for result in results) == methods
    assert engine.cache.stats()["misses"] == 1, (
        "a selector sweep must simulate its scenario exactly once"
    )
