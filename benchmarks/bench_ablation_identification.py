"""Architecture-independence bench: identification config ablation."""

from repro.experiments import ablation_identification
from repro.experiments.ablation_identification import identification_config_errors


def test_ablation_identification(benchmark, scale, emit):
    result = benchmark.pedantic(
        ablation_identification.run, args=(scale,), rounds=1, iterations=1
    )
    emit(result)
    for network in ("gnmt", "ds2"):
        errors = identification_config_errors(network, scale)
        # Identifying on any config transfers: all geomeans stay small
        # and close to the config #1 choice the paper makes.  Bounds
        # tighten at full corpus scale where noise floors are lower.
        limit, spread = (3.0, 2.0) if scale >= 0.5 else (6.0, 4.0)
        assert max(errors.values()) < limit
        assert max(errors.values()) - min(errors.values()) < spread
