"""Fig 16 bench: GNMT speedup-projection errors."""

from repro.experiments import fig16
from repro.experiments.speedup_projection import speedup_projection_errors
from repro.util.stats import geomean


def test_fig16_gnmt_speedup_projection(benchmark, scale, emit):
    result = benchmark.pedantic(fig16.run, args=(scale,), rounds=1, iterations=1)
    emit(result)
    errors, _ = speedup_projection_errors("gnmt", scale)
    summary = {m: geomean(list(v.values())) for m, v in errors.items()}
    # Paper shape: SeqPoint outperforms all alternatives (geomean 1.50%);
    # with GNMT's more uniform SL distribution, frequent/median errors
    # are larger than for DS2.
    assert summary["seqpoint"] < 1.5
    if scale >= 0.5:
        assert summary["seqpoint"] <= min(summary[m] for m in summary)
        assert summary["prior"] > summary["seqpoint"]
