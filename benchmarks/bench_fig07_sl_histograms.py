"""Fig 7 bench: sequence-length histograms and unique-SL space size."""

from repro.experiments import fig07
from repro.experiments.fig07 import unique_sl_fraction


def test_fig07_sl_histograms(benchmark, scale, emit):
    result = benchmark.pedantic(fig07.run, args=(scale,), rounds=1, iterations=1)
    emit(result)
    networks = {row[0] for row in result.rows}
    assert networks == {"ds2", "gnmt"}
    # Paper §V-A: DS2's unique-SL space is a large fraction of the epoch
    # (up to ~half); GNMT's is much smaller relative to its epoch.
    ds2_fraction = unique_sl_fraction("ds2", scale)
    gnmt_fraction = unique_sl_fraction("gnmt", scale)
    assert gnmt_fraction < ds2_fraction
    if scale >= 0.5:  # the absolute fraction needs the full corpus
        assert 0.2 < ds2_fraction <= 0.6
