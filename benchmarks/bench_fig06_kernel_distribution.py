"""Fig 6 bench: kernel runtime distribution differs with sequence length."""

from repro.experiments import fig06


def test_fig06_kernel_distribution(benchmark, scale, emit):
    result = benchmark.pedantic(fig06.run, args=(scale,), rounds=1, iterations=1)
    emit(result)
    for row in result.rows:
        shares = [float(v) for v in row[3:]]
        # Shares are a distribution over groups (rows round to 4dp).
        assert abs(sum(shares) - 1.0) < 1e-3
    # GEMM groups dominate both networks, as in the paper's charts.
    for row in result.rows:
        gemm1, gemm2 = float(row[3]), float(row[4])
        assert gemm1 + gemm2 > 0.5
