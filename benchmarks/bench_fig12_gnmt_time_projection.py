"""Fig 12 bench: GNMT training-time projection errors."""

from repro.experiments import fig12
from repro.experiments.time_projection import time_projection_errors
from repro.util.stats import geomean


def test_fig12_gnmt_time_projection(benchmark, scale, emit):
    result = benchmark.pedantic(fig12.run, args=(scale,), rounds=1, iterations=1)
    emit(result)
    errors = time_projection_errors("gnmt", scale)
    summary = {m: geomean(list(v.values())) for m, v in errors.items()}
    # Paper shape: SeqPoint geomean 0.53%; prior performs poorly for
    # GNMT in general; worst is catastrophic.
    assert summary["seqpoint"] < 2.0
    assert summary["prior"] > 5.0
    assert summary["seqpoint"] < summary["median"] < summary["worst"]
    assert summary["worst"] > 50.0
