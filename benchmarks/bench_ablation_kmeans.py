"""§VII-C ablation bench: SL binning vs k-means over profiles."""

from repro.experiments import ablation_kmeans
from repro.experiments.ablation_kmeans import compare


def test_ablation_kmeans(benchmark, scale, emit):
    result = benchmark.pedantic(
        ablation_kmeans.run, args=(scale,), rounds=1, iterations=1
    )
    emit(result)
    for network in ("gnmt", "ds2"):
        outcome = compare(network, scale)
        # Paper finding: simple binning performs as well as k-means —
        # i.e. within the same accuracy class (both small errors).
        assert outcome["seqpoint"] < 3.0
        assert outcome["kmeans"] < 6.0
