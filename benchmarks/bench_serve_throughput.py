"""Serve throughput bench: closed-loop clients against the daemon.

Starts a real :class:`repro.serve.ReproServer` on an ephemeral port,
warms its trace cache with one analyze job, then drives it with N
closed-loop HTTP clients — each submits an analyze job, polls it to
completion, fetches the result, and immediately submits the next.
Reported per client count: jobs/sec plus p50/p95/p99 submit-to-result
latency (nearest-rank, via :func:`repro.serve.metrics.percentile`).

The headline claim is that concurrent clients raise throughput — the
queue keeps the worker tier busy while clients sit in their poll
loops.  The gate compares 4 clients vs 1 and is skipped (with a note)
on hosts without the cores to back it.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py [--smoke]
        [--json BENCH_serve_throughput.json]

or through pytest (``pytest benchmarks/bench_serve_throughput.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
import urllib.request

from repro.api.spec import AnalysisSpec
from repro.serve import ReproServer
from repro.serve.metrics import percentile

#: Submit-to-result poll interval; small enough not to dominate p50.
POLL_S = 0.002


def _call(url: str, payload: dict | None = None) -> dict:
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def _run_one_job(base: str, spec: dict) -> float:
    """Submit one analyze job, poll to done, fetch the result."""
    start = time.perf_counter()
    job = _call(f"{base}/jobs", {"kind": "analyze", "spec": spec})["job"]
    while job["state"] not in ("done", "failed", "cancelled"):
        time.sleep(POLL_S)
        job = _call(f"{base}/jobs/{job['id']}")["job"]
    if job["state"] != "done":
        raise AssertionError(f"bench job ended {job['state']}: {job}")
    _call(f"{base}/jobs/{job['id']}/result")
    return time.perf_counter() - start


def closed_loop(base: str, spec: dict, clients: int, jobs_per_client: int):
    """Drive the server with N closed-loop clients; returns the numbers."""
    latencies: list[float] = []
    lock = threading.Lock()
    errors: list[BaseException] = []

    def client() -> None:
        try:
            mine = [
                _run_one_job(base, spec) for _ in range(jobs_per_client)
            ]
            with lock:
                latencies.extend(mine)
        except BaseException as exc:  # surface, don't hang the bench
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=client) for _ in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start
    if errors:
        raise errors[0]

    total = clients * jobs_per_client
    return {
        "clients": clients,
        "jobs": total,
        "seconds": wall_s,
        "jobs_per_s": total / wall_s,
        "p50_ms": 1e3 * percentile(latencies, 50),
        "p95_ms": 1e3 * percentile(latencies, 95),
        "p99_ms": 1e3 * percentile(latencies, 99),
    }


def report(numbers: dict) -> None:
    print(
        f"  {numbers['clients']} client(s): "
        f"{numbers['jobs']:3d} jobs in {numbers['seconds'] * 1e3:8.1f} ms   "
        f"{numbers['jobs_per_s']:6.1f} jobs/s   "
        f"p50 {numbers['p50_ms']:.1f} ms  "
        f"p95 {numbers['p95_ms']:.1f} ms  "
        f"p99 {numbers['p99_ms']:.1f} ms"
    )


def run_bench(scale: float, jobs_per_client: int, workers: int):
    """One warm-cache server, then 1-client and 4-client closed loops."""
    spec = AnalysisSpec(network="gnmt", scale=scale).to_dict()
    with ReproServer(port=0, workers=workers, sweep_mode="serial") as server:
        # Warm the shared trace cache: every later job is a cache hit.
        _run_one_job(server.url, spec)
        single = closed_loop(server.url, spec, 1, jobs_per_client)
        quad = closed_loop(server.url, spec, 4, jobs_per_client)
    return single, quad


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="few jobs per client, no throughput gate")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="corpus scale of the analyze jobs (default 0.05)")
    parser.add_argument("--jobs", type=int, default=25,
                        help="jobs per client per run (default 25)")
    parser.add_argument("--workers", type=int, default=2,
                        help="server job worker threads (default 2)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write machine-readable results (BENCH_*.json schema)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.scale, args.jobs = 0.02, 6

    single, quad = run_bench(args.scale, args.jobs, args.workers)
    print(f"closed-loop analyze jobs, scale {args.scale}, warm cache")
    report(single)
    report(quad)
    speedup = quad["jobs_per_s"] / single["jobs_per_s"]
    print(f"  4-client throughput gain: {speedup:.2f}x")

    if args.json is not None:
        payload = {
            "bench": "serve_throughput",
            "scale": args.scale,
            "results": [
                {
                    "name": "clients[1]",
                    "seconds": single["seconds"],
                    "speedup": 1.0,
                    "jobs_per_s": single["jobs_per_s"],
                    "p50_ms": single["p50_ms"],
                    "p95_ms": single["p95_ms"],
                    "p99_ms": single["p99_ms"],
                },
                {
                    "name": "clients[4]",
                    "seconds": quad["seconds"],
                    "speedup": speedup,
                    "jobs_per_s": quad["jobs_per_s"],
                    "p50_ms": quad["p50_ms"],
                    "p95_ms": quad["p95_ms"],
                    "p99_ms": quad["p99_ms"],
                },
            ],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    cores = os.cpu_count() or 1
    if not args.smoke:
        if cores < 4:
            print(
                f"NOTE: only {cores} CPUs for 4 closed-loop clients; "
                "throughput gate skipped"
            )
        elif speedup < 1.3:
            print(
                f"WARNING: 4-client throughput gain {speedup:.2f}x "
                "below the 1.3x target"
            )
            return 1
    return 0


def test_serve_throughput_smoke(scale):
    """Pytest entry: the closed loop completes and latencies are sane."""
    single, quad = run_bench(min(scale, 0.02), jobs_per_client=3, workers=2)
    for numbers in (single, quad):
        assert numbers["jobs"] == 3 * numbers["clients"]
        assert numbers["p50_ms"] <= numbers["p95_ms"] <= numbers["p99_ms"]
        assert numbers["jobs_per_s"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
