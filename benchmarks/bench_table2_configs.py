"""Table II bench: the five evaluated hardware configurations."""

from repro.experiments import table2
from repro.hw.config import PAPER_CONFIGS
from repro.util.units import GHZ, KIB, MHZ, MIB


def test_table2_configs(benchmark, scale, emit):
    result = benchmark.pedantic(table2.run, args=(scale,), rounds=1, iterations=1)
    emit(result)
    assert len(result.rows) == 5
    assert PAPER_CONFIGS[1].gclk_hz == 1.6 * GHZ
    assert PAPER_CONFIGS[2].gclk_hz == 852 * MHZ
    assert PAPER_CONFIGS[3].num_cus == 16
    assert PAPER_CONFIGS[4].l1_bytes == 0
    assert PAPER_CONFIGS[5].l2_bytes == 0
    assert PAPER_CONFIGS[1].l1_bytes == 16 * KIB
    assert PAPER_CONFIGS[1].l2_bytes == 4 * MIB
