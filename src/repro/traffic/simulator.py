"""The serving loop: formed batches through the batched device pipeline.

Each :class:`~repro.traffic.batcher.FormedBatch` is timed with one
forward pass through the PR 4 batched lowering→timing pipeline
(:class:`~repro.train.iteration.IterationExecutor`, i.e. the
process-wide ``PlanCache`` plus one vectorized
:meth:`~repro.hw.device.GpuDevice.run_batch` call per unique shape),
then queued on a single-device FIFO: a batch starts at
``max(form_time, device_free)`` and occupies the device for its
measured forward latency.  The result is

* a standard :class:`~repro.train.frame.TraceFrame` (one row per
  batch, profile pool deduplicated per unique shape, ``epoch`` column
  carrying the traffic phase) — so every SeqPoint selector, projection,
  and streaming identifier consumes serving traffic unchanged, and
* per-request queue-wait and end-to-end latency columns, summarised as
  SLO-style p50/p95/p99 through the
  :class:`~repro.serve.metrics.LatencyHistogram` machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.data.batching import BatchingPolicy
from repro.hw.device import GpuDevice
from repro.models.spec import IterationInputs, Model
from repro.traffic.batcher import FormedBatch
from repro.traffic.workload import RequestSet
from repro.train.frame import NO_TGT, IterationProfile, TraceFrame
from repro.train.inference import DEFAULT_SERVING_OVERHEAD_S
from repro.train.iteration import IterationExecutor

__all__ = ["ServedTraffic", "TrafficSimulator", "latency_snapshot"]


def latency_snapshot(seconds: np.ndarray) -> dict[str, Any]:
    """p50/p95/p99 summary of a latency column, in milliseconds."""
    # Imported lazily: ``repro.serve`` pulls in the HTTP daemon (and,
    # through it, the top-level package), which must not load just
    # because a traffic simulation wants a histogram.
    from repro.serve.metrics import LatencyHistogram

    histogram = LatencyHistogram()
    for value in seconds.tolist():
        histogram.observe(value)
    return histogram.snapshot()


@dataclass(frozen=True)
class ServedTraffic:
    """One simulated serving run, columnar throughout.

    ``frame`` has one row per formed batch (its ``time_s`` is device
    time, so ``frame.total_time_s`` is total serving compute); the
    per-request columns hold the queueing story — ``latency_s`` is
    completion minus arrival, ``queue_wait_s`` is device-start minus
    arrival.  ``makespan_s`` is when the last batch finished.
    """

    frame: TraceFrame
    batches: tuple[FormedBatch, ...]
    arrival_s: np.ndarray
    queue_wait_s: np.ndarray
    latency_s: np.ndarray
    makespan_s: float

    def __len__(self) -> int:
        return int(self.arrival_s.size)

    def latency_percentiles(self) -> dict[str, Any]:
        return latency_snapshot(self.latency_s)

    def queue_wait_percentiles(self) -> dict[str, Any]:
        return latency_snapshot(self.queue_wait_s)


class TrafficSimulator:
    """Times formed batches of one model on one device."""

    def __init__(
        self,
        model: Model,
        dataset_name: str,
        policy: BatchingPolicy,
        device: GpuDevice,
        host_overhead_s: float = DEFAULT_SERVING_OVERHEAD_S,
        batched: bool = True,
    ):
        self.model = model
        self.dataset_name = dataset_name
        self.policy = policy
        self.device = device
        self.executor = IterationExecutor(
            model, device, host_overhead_s, batched=batched
        )

    def measure_seq_len(self, seq_len: int, tgt_len: int | None = None) -> float:
        """Forward latency of one full batch at ``seq_len``."""
        inputs = IterationInputs(
            batch=self.policy.batch_size, seq_len=seq_len, tgt_len=tgt_len
        )
        return self.executor.run_forward(inputs).time_s

    def serve(
        self,
        requests: RequestSet,
        arrival_s: np.ndarray,
        batches: list[FormedBatch],
    ) -> ServedTraffic:
        """Run formed batches through the device FIFO."""
        count = len(batches)
        index = np.arange(count, dtype=np.int64)
        epoch = np.empty(count, dtype=np.int64)
        seq_len = np.empty(count, dtype=np.int64)
        tgt_len = np.empty(count, dtype=np.int64)
        time_s = np.empty(count, dtype=np.float64)
        profile_id = np.empty(count, dtype=np.int64)
        pool: dict[tuple, int] = {}
        profiles: list[IterationProfile] = []
        queue_wait = np.zeros(len(requests), dtype=np.float64)
        latency = np.zeros(len(requests), dtype=np.float64)
        device_free = 0.0
        for i, batch in enumerate(batches):
            inputs = IterationInputs(
                batch=len(batch),
                seq_len=batch.seq_len,
                tgt_len=None if batch.tgt_len == NO_TGT else batch.tgt_len,
            )
            result = self.executor.run_forward(inputs)
            start = max(batch.form_time_s, device_free)
            device_free = start + result.time_s
            queue_wait[batch.members] = start - arrival_s[batch.members]
            latency[batch.members] = device_free - arrival_s[batch.members]
            # The batch's phase: its earliest-arriving member's, so the
            # epoch column tracks the mixture schedule.
            epoch[i] = int(requests.phase[batch.members].min())
            seq_len[i] = batch.seq_len
            tgt_len[i] = batch.tgt_len
            time_s[i] = result.time_s
            profile = IterationProfile(
                launches=result.launches,
                counters=result.counters,
                group_times=dict(result.group_times),
                kernel_names=result.kernel_names,
            )
            key = profile.dedup_key()
            pid = pool.get(key)
            if pid is None:
                pid = pool[key] = len(profiles)
                profiles.append(profile)
            profile_id[i] = pid
        frame = TraceFrame(
            model_name=f"{self.model.name}-serving",
            dataset_name=self.dataset_name,
            config_name=self.device.config.name,
            batch_size=self.policy.batch_size,
            index=index,
            epoch=epoch,
            seq_len=seq_len,
            tgt_len=tgt_len,
            time_s=time_s,
            profile_id=profile_id,
            profiles=tuple(profiles),
        )
        return ServedTraffic(
            frame=frame,
            batches=tuple(batches),
            arrival_s=np.asarray(arrival_s, dtype=np.float64),
            queue_wait_s=queue_wait,
            latency_s=latency,
            makespan_s=device_free,
        )
