"""The serving loop: formed batches through the batched device pipeline.

Each :class:`~repro.traffic.batcher.FormedBatch` is timed with one
forward pass through the PR 4 batched lowering→timing pipeline
(:class:`~repro.train.iteration.IterationExecutor`, i.e. the
process-wide ``PlanCache`` plus one vectorized
:meth:`~repro.hw.device.GpuDevice.run_batch` call per unique shape),
then queued on a single-device FIFO: a batch starts at
``max(form_time, device_free)`` and occupies the device for its
measured forward latency.  The result is

* a standard :class:`~repro.train.frame.TraceFrame` (one row per
  batch, profile pool deduplicated per unique shape, ``epoch`` column
  carrying the traffic phase) — so every SeqPoint selector, projection,
  and streaming identifier consumes serving traffic unchanged, and
* per-request queue-wait and end-to-end latency columns, summarised as
  SLO-style p50/p95/p99 through the
  :class:`~repro.util.histogram.LatencyHistogram` machinery.

Two serve paths exist, mirroring the executor's batched/scalar split:
the default **memoized** path groups batches by unique
``(len(batch), seq_len, tgt_len)`` shape, times each unique shape
exactly once (one :meth:`~repro.hw.device.GpuDevice.run_batch` over all
unique shapes), scatters times and profile ids back by group index, and
replays the device FIFO as a vectorized prefix recurrence; the
**scalar** reference path (``memoized=False``) walks batch by batch,
exactly as before.  Both produce bit-identical :class:`ServedTraffic`
values — asserted every bench trial and property-tested across
policies × arrival processes × seeds × drift schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.data.batching import BatchingPolicy
from repro.hw.device import GpuDevice
from repro.models.spec import IterationInputs, Model
from repro.traffic.batcher import FormedBatch
from repro.traffic.workload import RequestSet
from repro.train.frame import NO_TGT, IterationProfile, TraceFrame
from repro.train.inference import DEFAULT_SERVING_OVERHEAD_S
from repro.train.iteration import IterationExecutor
from repro.util.histogram import LatencyHistogram

__all__ = ["ServedTraffic", "TrafficSimulator", "latency_snapshot"]


def _fifo_prefix(
    form_s: np.ndarray, time_s: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized replay of the single-device FIFO recurrence.

    The scalar loop computes ``start[i] = max(form[i], free[i-1])``,
    ``free[i] = start[i] + time[i]`` — a running max-plus fold that a
    naive prefix scan would re-associate, changing low bits.  Instead
    the stream is split into *idle runs* (each batch starts at its own
    formation instant, so ``free = form + time`` elementwise) and *busy
    chains* (each batch starts when its predecessor frees the device,
    so frees are a cumsum with the chain's entry free prepended — the
    same strict left fold the scalar loop performs).  Idle-run extents
    are precomputable: once one batch idles, the next idles iff its
    formation is at or past ``form + time`` of the previous.  Busy-chain
    extents depend on computed frees: short chains (the common case
    under moderate load) step scalar — the identical left fold, hence
    the identical bits — and long chains escalate to geometrically
    doubling lookahead blocks, keeping work linear amortized.  Every
    emitted value is produced by the same IEEE
    operation on the same operands as the scalar loop, hence
    bit-identical.
    """
    count = int(form_s.size)
    fresh_free = form_s + time_s
    # Start from the all-idle answer; busy stretches overwrite in place.
    start_s = form_s.copy()
    free_s = fresh_free.copy()
    # Positions i where batch i+1 would couple to batch i *if* batch i
    # idle-started (then free[i] == fresh_free[i] exactly).
    couple_list = np.flatnonzero(form_s[1:] < fresh_free[:-1]).tolist()
    couple_count = len(couple_list)
    # Python-float copies for the scalar stepping below: float64 →
    # float is exact, and Python ``+`` is the same IEEE add.
    form_list = form_s.tolist()
    time_list = time_s.tolist()
    fresh_list = fresh_free.tolist()
    slot = 0
    cursor = 0
    carry = 0.0  # device-free instant before batch ``cursor``
    while cursor < count:
        if form_list[cursor] >= carry:
            # Idle run: the prefilled values are already correct for
            # this batch and every successor until the next coupling
            # point (the slot pointer advances monotonically).
            while slot < couple_count and couple_list[slot] < cursor:
                slot += 1
            stop = couple_list[slot] + 1 if slot < couple_count else count
            carry = fresh_list[stop - 1]
            cursor = stop
            continue
        # Busy chain: frees accumulate left to right from ``carry``.
        # Step the first stretch scalar; chains that outlast it switch
        # to vectorized lookahead blocks.
        limit = min(count, cursor + 64)
        while cursor < limit and form_list[cursor] < carry:
            start_s[cursor] = carry
            carry = carry + time_list[cursor]
            free_s[cursor] = carry
            cursor += 1
        if cursor == limit and cursor < count and form_list[cursor] < carry:
            block = 64
            while cursor < count:
                upper = min(count, cursor + block)
                chain = np.cumsum(
                    np.concatenate(((carry,), time_s[cursor:upper]))
                )
                prev_free = chain[:-1]
                breaks = np.flatnonzero(form_s[cursor:upper] >= prev_free)
                if breaks.size:
                    cut = int(breaks[0])
                    start_s[cursor : cursor + cut] = prev_free[:cut]
                    free_s[cursor : cursor + cut] = chain[1 : cut + 1]
                    carry = float(chain[cut])
                    cursor += cut
                    break
                start_s[cursor:upper] = prev_free
                free_s[cursor:upper] = chain[1:]
                carry = float(chain[-1])
                cursor = upper
                block *= 2
    return start_s, free_s


def latency_snapshot(seconds: np.ndarray) -> dict[str, Any]:
    """p50/p95/p99 summary of a latency column, in milliseconds."""
    histogram = LatencyHistogram()
    histogram.observe_many(seconds)
    return histogram.snapshot()


@dataclass(frozen=True)
class ServedTraffic:
    """One simulated serving run, columnar throughout.

    ``frame`` has one row per formed batch (its ``time_s`` is device
    time, so ``frame.total_time_s`` is total serving compute); the
    per-request columns hold the queueing story — ``latency_s`` is
    completion minus arrival, ``queue_wait_s`` is device-start minus
    arrival.  ``makespan_s`` is when the last batch finished.
    """

    frame: TraceFrame
    batches: tuple[FormedBatch, ...]
    arrival_s: np.ndarray
    queue_wait_s: np.ndarray
    latency_s: np.ndarray
    makespan_s: float

    def __len__(self) -> int:
        return int(self.arrival_s.size)

    def latency_percentiles(self) -> dict[str, Any]:
        return latency_snapshot(self.latency_s)

    def queue_wait_percentiles(self) -> dict[str, Any]:
        return latency_snapshot(self.queue_wait_s)


class TrafficSimulator:
    """Times formed batches of one model on one device."""

    def __init__(
        self,
        model: Model,
        dataset_name: str,
        policy: BatchingPolicy,
        device: GpuDevice,
        host_overhead_s: float = DEFAULT_SERVING_OVERHEAD_S,
        batched: bool = True,
        memoized: bool = True,
    ):
        self.model = model
        self.dataset_name = dataset_name
        self.policy = policy
        self.device = device
        self.memoized = memoized
        self.executor = IterationExecutor(
            model, device, host_overhead_s, batched=batched
        )
        #: Per unique shape, the reusable inputs object and the derived
        #: profile with its pooling key — shapes repeat across serve
        #: calls just as they repeat across batches.
        self._inputs_of: dict[tuple[int, int, int], IterationInputs] = {}
        self._profile_of: dict[
            tuple[int, int, int], tuple[tuple, IterationProfile]
        ] = {}

    def measure_seq_len(self, seq_len: int, tgt_len: int | None = None) -> float:
        """Forward latency of one full batch at ``seq_len``."""
        inputs = IterationInputs(
            batch=self.policy.batch_size, seq_len=seq_len, tgt_len=tgt_len
        )
        return self.executor.run_forward(inputs).time_s

    def serve(
        self,
        requests: RequestSet,
        arrival_s: np.ndarray,
        batches: list[FormedBatch],
    ) -> ServedTraffic:
        """Run formed batches through the device FIFO.

        Dispatches to the shape-memoized columnar path (the default) or
        the per-batch scalar reference; both return bit-identical
        results.
        """
        if self.memoized and batches:
            return self._serve_memoized(requests, arrival_s, batches)
        return self._serve_scalar(requests, arrival_s, batches)

    def _serve_scalar(
        self,
        requests: RequestSet,
        arrival_s: np.ndarray,
        batches: list[FormedBatch],
    ) -> ServedTraffic:
        """Reference path: one forward pass and FIFO step per batch."""
        count = len(batches)
        index = np.arange(count, dtype=np.int64)
        epoch = np.empty(count, dtype=np.int64)
        seq_len = np.empty(count, dtype=np.int64)
        tgt_len = np.empty(count, dtype=np.int64)
        time_s = np.empty(count, dtype=np.float64)
        profile_id = np.empty(count, dtype=np.int64)
        pool: dict[tuple, int] = {}
        profiles: list[IterationProfile] = []
        queue_wait = np.zeros(len(requests), dtype=np.float64)
        latency = np.zeros(len(requests), dtype=np.float64)
        device_free = 0.0
        for i, batch in enumerate(batches):
            inputs = IterationInputs(
                batch=len(batch),
                seq_len=batch.seq_len,
                tgt_len=None if batch.tgt_len == NO_TGT else batch.tgt_len,
            )
            result = self.executor.run_forward(inputs)
            start = max(batch.form_time_s, device_free)
            device_free = start + result.time_s
            queue_wait[batch.members] = start - arrival_s[batch.members]
            latency[batch.members] = device_free - arrival_s[batch.members]
            # The batch's phase: its earliest-arriving member's, so the
            # epoch column tracks the mixture schedule.
            epoch[i] = int(requests.phase[batch.members].min())
            seq_len[i] = batch.seq_len
            tgt_len[i] = batch.tgt_len
            time_s[i] = result.time_s
            profile = IterationProfile(
                launches=result.launches,
                counters=result.counters,
                group_times=dict(result.group_times),
                kernel_names=result.kernel_names,
            )
            key = profile.dedup_key()
            pid = pool.get(key)
            if pid is None:
                pid = pool[key] = len(profiles)
                profiles.append(profile)
            profile_id[i] = pid
        frame = TraceFrame(
            model_name=f"{self.model.name}-serving",
            dataset_name=self.dataset_name,
            config_name=self.device.config.name,
            batch_size=self.policy.batch_size,
            index=index,
            epoch=epoch,
            seq_len=seq_len,
            tgt_len=tgt_len,
            time_s=time_s,
            profile_id=profile_id,
            profiles=tuple(profiles),
        )
        return ServedTraffic(
            frame=frame,
            batches=tuple(batches),
            arrival_s=np.asarray(arrival_s, dtype=np.float64),
            queue_wait_s=queue_wait,
            latency_s=latency,
            makespan_s=device_free,
        )

    def _serve_memoized(
        self,
        requests: RequestSet,
        arrival_s: np.ndarray,
        batches: list[FormedBatch],
    ) -> ServedTraffic:
        """Fast path: device work per unique shape, columnar FIFO.

        SeqPoint's Key Observation 4 applied to serving — formed
        batches collapse onto few unique ``(batch, seq_len, tgt_len)``
        shapes, so each shape is timed exactly once (all missing shapes
        through one :meth:`~repro.hw.device.GpuDevice.run_batch`) and
        per-batch columns are gathered back by group index.  Unique
        shapes are processed in first-appearance order, so the profile
        pool is populated in the same order the scalar walk would
        populate it; the FIFO/latency columns come from
        :func:`_fifo_prefix`.  Result is bit-identical to
        :meth:`_serve_scalar`.
        """
        count = len(batches)
        columns = getattr(batches, "columns", None)
        if columns is not None:
            # The vectorized batcher kept its per-batch arrays: no
            # re-gathering of fields batch by batch.
            sizes = columns.sizes
            seq_len = columns.seq_len
            tgt_len = columns.tgt_len
            form_s = columns.form_s
            members = columns.members
            segment_starts = columns.starts
        else:
            sizes = np.fromiter(
                (len(batch) for batch in batches), np.int64, count
            )
            seq_len = np.fromiter(
                (batch.seq_len for batch in batches), np.int64, count
            )
            tgt_len = np.fromiter(
                (batch.tgt_len for batch in batches), np.int64, count
            )
            form_s = np.fromiter(
                (batch.form_time_s for batch in batches), np.float64, count
            )
            members = np.concatenate([batch.members for batch in batches])
            segment_starts = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(sizes)[:-1])
            )
        # Group by unique shape via one packed int64 key — injective
        # because each field is bounded by its own base — instead of a
        # row-sorting ``np.unique(..., axis=0)``.
        tgt_shift = tgt_len + 1  # NO_TGT (-1) packs as 0
        seq_base = int(seq_len.max()) + 1
        tgt_base = int(tgt_shift.max()) + 1
        code = (sizes * seq_base + seq_len) * tgt_base + tgt_shift
        _, first_index, inverse = np.unique(
            code, return_index=True, return_inverse=True
        )
        # np.unique sorts; re-rank the unique ids by first appearance.
        order = np.argsort(first_index, kind="stable")
        rank = np.empty(order.size, dtype=np.int64)
        rank[order] = np.arange(order.size, dtype=np.int64)
        inverse = rank[inverse]
        first_index = first_index[order]
        shape_keys = [
            (int(sizes[i]), int(seq_len[i]), int(tgt_len[i]))
            for i in first_index.tolist()
        ]
        inputs_seq = []
        for key in shape_keys:
            inputs = self._inputs_of.get(key)
            if inputs is None:
                inputs = self._inputs_of[key] = IterationInputs(
                    batch=key[0],
                    seq_len=key[1],
                    tgt_len=None if key[2] == NO_TGT else key[2],
                )
            inputs_seq.append(inputs)
        results = self.executor.run_forward_unique(inputs_seq)
        unique_times = np.fromiter(
            (result.time_s for result in results), np.float64, len(results)
        )
        time_s = unique_times[inverse]
        # Dedup profiles per unique shape, not per batch; first-
        # appearance processing keeps pool insertion order (and with it
        # every profile id) identical to the scalar walk's.
        pool: dict[tuple, int] = {}
        profiles: list[IterationProfile] = []
        unique_pid = np.empty(len(results), dtype=np.int64)
        for position, (key, result) in enumerate(zip(shape_keys, results)):
            cached = self._profile_of.get(key)
            if cached is None:
                profile = IterationProfile(
                    launches=result.launches,
                    counters=result.counters,
                    group_times=dict(result.group_times),
                    kernel_names=result.kernel_names,
                )
                cached = self._profile_of[key] = (
                    profile.dedup_key(), profile,
                )
            dedup_key, profile = cached
            pid = pool.get(dedup_key)
            if pid is None:
                pid = pool[dedup_key] = len(profiles)
                profiles.append(profile)
            unique_pid[position] = pid
        profile_id = unique_pid[inverse]
        start_s, free_s = _fifo_prefix(form_s, time_s)

        owner = np.repeat(np.arange(count, dtype=np.int64), sizes)
        arrival_s = np.asarray(arrival_s, dtype=np.float64)
        queue_wait = np.zeros(len(requests), dtype=np.float64)
        latency = np.zeros(len(requests), dtype=np.float64)
        queue_wait[members] = start_s[owner] - arrival_s[members]
        latency[members] = free_s[owner] - arrival_s[members]
        # Per-batch phase: segment-min over member phases (the scalar
        # walk's earliest-arriving member, batches being non-empty).
        epoch = np.minimum.reduceat(
            requests.phase[members], segment_starts
        ).astype(np.int64)
        frame = TraceFrame(
            model_name=f"{self.model.name}-serving",
            dataset_name=self.dataset_name,
            config_name=self.device.config.name,
            batch_size=self.policy.batch_size,
            index=np.arange(count, dtype=np.int64),
            epoch=epoch,
            seq_len=seq_len,
            tgt_len=tgt_len,
            time_s=time_s,
            profile_id=profile_id,
            profiles=tuple(profiles),
        )
        return ServedTraffic(
            frame=frame,
            batches=tuple(batches),
            arrival_s=arrival_s,
            queue_wait_s=queue_wait,
            latency_s=latency,
            makespan_s=float(free_s[-1]),
        )
