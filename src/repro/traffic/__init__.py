"""Traffic-driven inference serving: synthetic production load.

The serving twin of the training pipeline: a seeded arrival process
(:mod:`repro.traffic.arrivals`) paces bootstrap-resampled corpus
requests (:mod:`repro.traffic.workload`, with mixture schedules that
shift the length mix mid-run); a dynamic batcher built on the epoch
batching policies closes device batches on max-batch/max-wait triggers
(:mod:`repro.traffic.batcher`); and the serving loop times each batch
through the batched lowering→timing pipeline into a standard
:class:`~repro.train.frame.TraceFrame` plus SLO-style latency
percentiles (:mod:`repro.traffic.simulator`).

Declarative entry points mirror the rest of the API: a JSON
round-trip :class:`~repro.traffic.spec.TrafficSpec` nesting
``AnalysisSpec``, :meth:`repro.api.engine.AnalysisEngine.run_traffic`,
the ``repro traffic`` CLI command, a ``traffic`` job kind in
``repro.serve``, and :class:`~repro.traffic.feed.TrafficFeed`, which
lets the streaming identifier consume the live batch stream.
"""

from repro.traffic.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    BurstyArrivals,
    DeterministicArrivals,
    OfflineArrivals,
    PoissonArrivals,
    build_arrival_process,
)
from repro.traffic.batcher import DynamicBatcher, FormedBatch, form_batches
from repro.traffic.feed import TrafficFeed
from repro.traffic.simulator import ServedTraffic, TrafficSimulator
from repro.traffic.spec import TrafficSpec
from repro.traffic.workload import RequestSet, TrafficPhase, sample_requests

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "BurstyArrivals",
    "DeterministicArrivals",
    "DynamicBatcher",
    "FormedBatch",
    "OfflineArrivals",
    "PoissonArrivals",
    "RequestSet",
    "ServedTraffic",
    "TrafficFeed",
    "TrafficPhase",
    "TrafficSimulator",
    "TrafficSpec",
    "build_arrival_process",
    "form_batches",
    "sample_requests",
]
