"""Dynamic batching: forming device batches from a live arrival queue.

The epoch-oriented policies in :mod:`repro.data.batching` already
encode *how requests should be grouped* (FIFO for shuffled pipelines,
length-bucketed for pooled/sorted ones, padded to the policy's
``pad_multiple``); this module adds the serving-side question of *when*
a batch may form.  Two triggers close a batch:

* **max-batch** — the waiting pool reaches the policy's capacity
  (``batch_size`` for FIFO policies, ``pool_factor * batch_size`` for
  pooled bucketing, unbounded for fully sorted policies, which only
  ever flush on the wait trigger), and
* **max-wait** — the oldest waiting request has been queued for
  ``max_wait_s``, at which point *everything* waiting is flushed
  (ragged tail included) so no request waits unboundedly.

Formation is a pure function of arrivals and lengths — no randomness —
so a seeded arrival process plus any policy yields a bit-deterministic
batch sequence (a property test asserts this).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.batching import (
    BatchingPolicy,
    PooledBucketing,
    ShuffledBatching,
    SortaGradBatching,
    SortedBatching,
)
from repro.errors import ConfigurationError
from repro.train.frame import NO_TGT

__all__ = [
    "BatchColumns",
    "FormedBatch",
    "FormedBatchList",
    "DynamicBatcher",
    "form_batches",
]


@dataclass(frozen=True)
class FormedBatch:
    """One device batch as the dynamic batcher closed it.

    ``members`` are request indices into the arrival stream, in the
    order the policy packed them; ``seq_len``/``tgt_len`` are the
    padded batch maxima (``NO_TGT`` when the corpus has no target
    side), exactly as an epoch iteration would record them.
    """

    form_time_s: float
    members: np.ndarray
    seq_len: int
    tgt_len: int

    def __len__(self) -> int:
        return int(self.members.size)


@dataclass(frozen=True)
class BatchColumns:
    """Columnar twin of a formed-batch list.

    The vectorized formation path computes every per-batch quantity as
    an array before materialising :class:`FormedBatch` objects; keeping
    those arrays lets the serving fast path stay columnar end to end
    instead of re-gathering fields batch by batch.  ``members`` is the
    full request permutation in batch order; batch ``b`` owns
    ``members[starts[b]:starts[b] + sizes[b]]``.
    """

    form_s: np.ndarray
    seq_len: np.ndarray
    tgt_len: np.ndarray
    sizes: np.ndarray
    members: np.ndarray
    starts: np.ndarray


class FormedBatchList(list):
    """A ``list[FormedBatch]`` carrying its :class:`BatchColumns`."""

    def __init__(self, batches, columns: BatchColumns):
        super().__init__(batches)
        self.columns = columns


def _policy_queue(policy: BatchingPolicy) -> tuple[bool, int | None]:
    """``(bucketed, capacity)`` the serving queue derives from a policy.

    Mirrors what each policy does to an epoch: shuffled pipelines keep
    arrival order and dispatch as soon as one batch is full; pooled
    bucketing sorts within a ``pool_factor``-batch pool; fully sorted
    policies (DS2's SortaGrad identification epoch) sort everything
    they can see, so only the wait deadline bounds their pool.
    """
    if isinstance(policy, PooledBucketing):
        return True, policy.pool_factor * policy.batch_size
    if isinstance(policy, (SortedBatching, SortaGradBatching)):
        return True, None
    if isinstance(policy, ShuffledBatching):
        return False, policy.batch_size
    return True, policy.batch_size


def form_batches(
    arrival_s: np.ndarray,
    seq_len: np.ndarray,
    tgt_len: np.ndarray,
    policy: BatchingPolicy,
    max_wait_s: float,
    vectorized: bool = True,
) -> list[FormedBatch]:
    """Form serving batches from an arrival-ordered request stream.

    ``vectorized`` picks between two bit-identical implementations: the
    default columnar one (precomputed flush points, one global stable
    sort) and the scalar event loop the columnar path is asserted
    against (property tests sweep policies × arrival processes ×
    seeds).
    """
    if not max_wait_s > 0.0:
        raise ConfigurationError(
            f"max_wait_s must be positive, got {max_wait_s}"
        )
    arrival_s = np.asarray(arrival_s, dtype=np.float64)
    seq_len = np.asarray(seq_len, dtype=np.int64)
    tgt_len = np.asarray(tgt_len, dtype=np.int64)
    if not (arrival_s.size == seq_len.size == tgt_len.size):
        raise ConfigurationError(
            f"arrival/seq/tgt columns disagree on length: "
            f"{arrival_s.size}/{seq_len.size}/{tgt_len.size}"
        )
    if arrival_s.size and np.any(np.diff(arrival_s) < 0):
        raise ConfigurationError("arrival times must be non-decreasing")
    if vectorized:
        return _form_batches_columnar(
            arrival_s, seq_len, tgt_len, policy, max_wait_s
        )
    return _form_batches_scalar(
        arrival_s, seq_len, tgt_len, policy, max_wait_s
    )


def _form_batches_scalar(
    arrival_s: np.ndarray,
    seq_len: np.ndarray,
    tgt_len: np.ndarray,
    policy: BatchingPolicy,
    max_wait_s: float,
) -> list[FormedBatch]:
    """Reference event loop: one pass, one decision per request."""
    bucketed, capacity = _policy_queue(policy)
    batch_size = policy.batch_size
    batches: list[FormedBatch] = []
    waiting: list[int] = []  # request indices, arrival order

    def flush(now: float) -> None:
        """Close everything waiting into consecutive batches at ``now``."""
        pool = np.asarray(waiting, dtype=np.int64)
        if bucketed:
            pool = pool[np.argsort(seq_len[pool], kind="stable")]
        for lo in range(0, pool.size, batch_size):
            members = pool[lo:lo + batch_size]
            tgt_max = int(tgt_len[members].max())
            batches.append(
                FormedBatch(
                    form_time_s=now,
                    members=members,
                    seq_len=policy._pad(int(seq_len[members].max())),
                    tgt_len=(
                        NO_TGT if tgt_max == NO_TGT
                        else policy._pad(tgt_max)
                    ),
                )
            )
        waiting.clear()

    for index in range(arrival_s.size):
        now = float(arrival_s[index])
        if waiting and arrival_s[waiting[0]] + max_wait_s < now:
            flush(float(arrival_s[waiting[0]]) + max_wait_s)
        waiting.append(index)
        if capacity is not None and len(waiting) >= capacity:
            flush(now)
    if waiting:
        # Stream exhausted: the remainder goes out when the oldest
        # waiting request's deadline expires (never before it arrived —
        # the arrival loop guarantees every member predates this).
        flush(float(arrival_s[waiting[0]]) + max_wait_s)
    return batches


def _form_batches_columnar(
    arrival_s: np.ndarray,
    seq_len: np.ndarray,
    tgt_len: np.ndarray,
    policy: BatchingPolicy,
    max_wait_s: float,
) -> list[FormedBatch]:
    """Columnar formation, bit-identical to the scalar event loop.

    Flush pools are contiguous arrival ranges, so the event loop
    collapses to: from pool start ``s``, the deadline break is the
    first request arriving strictly after ``arrival[s] + max_wait``
    (one ``searchsorted`` over precomputed deadlines); the capacity
    trigger wins iff the pool fills before that break, flushing at the
    capacity-filling arrival, else the whole range flushes at the
    deadline (end-of-stream included — same formula).  Within-pool
    ordering is one global stable lexsort (pool id major, seq_len
    minor) instead of one argsort per flush; per-batch padded maxima
    come from ``np.maximum.reduceat``.
    """
    total = int(arrival_s.size)
    if total == 0:
        return []
    bucketed, capacity = _policy_queue(policy)
    batch_size = policy.batch_size
    # Per-request deadline, computed with the same float add the scalar
    # loop performs; breaks[s] = first index arriving strictly later.
    deadline = arrival_s + max_wait_s
    breaks = np.searchsorted(arrival_s, deadline, side="right")

    pool_of = np.empty(total, dtype=np.int64)
    pool_start_of = np.empty(total, dtype=np.int64)
    pool_flush: list[float] = []
    start = 0
    while start < total:
        brk = int(breaks[start])
        if capacity is not None and start + capacity <= brk:
            stop = start + capacity
            flush_time = float(arrival_s[stop - 1])
        else:
            stop = brk
            flush_time = float(deadline[start])
        pool_of[start:stop] = len(pool_flush)
        pool_start_of[start:stop] = start
        pool_flush.append(flush_time)
        start = stop

    if bucketed:
        order = np.lexsort((seq_len, pool_of)).astype(np.int64)
    else:
        order = np.arange(total, dtype=np.int64)
    position = np.arange(total, dtype=np.int64) - pool_start_of
    batch_starts = np.flatnonzero(position % batch_size == 0)
    batch_stops = np.append(batch_starts[1:], total)
    seq_max = np.maximum.reduceat(seq_len[order], batch_starts)
    tgt_max = np.maximum.reduceat(tgt_len[order], batch_starts)
    seq_pad = policy._pad_column(seq_max)
    tgt_pad = np.where(
        tgt_max == NO_TGT, NO_TGT, policy._pad_column(tgt_max)
    )
    batch_pool = pool_of[batch_starts]
    flush_s = np.asarray(pool_flush, dtype=np.float64)
    columns = BatchColumns(
        form_s=flush_s[batch_pool],
        seq_len=seq_pad.astype(np.int64, copy=False),
        tgt_len=tgt_pad.astype(np.int64, copy=False),
        sizes=batch_stops - batch_starts,
        members=order,
        starts=batch_starts,
    )
    return FormedBatchList(
        (
            FormedBatch(
                form_time_s=pool_flush[int(batch_pool[b])],
                members=order[batch_starts[b]:batch_stops[b]],
                seq_len=int(seq_pad[b]),
                tgt_len=int(tgt_pad[b]),
            )
            for b in range(batch_starts.size)
        ),
        columns,
    )


class DynamicBatcher:
    """A policy plus a wait bound, reusable across request streams."""

    def __init__(self, policy: BatchingPolicy, max_wait_s: float = 0.5):
        if not max_wait_s > 0.0:
            raise ConfigurationError(
                f"max_wait_s must be positive, got {max_wait_s}"
            )
        self.policy = policy
        self.max_wait_s = max_wait_s

    def form(
        self,
        arrival_s: np.ndarray,
        seq_len: np.ndarray,
        tgt_len: np.ndarray,
    ) -> list[FormedBatch]:
        return form_batches(
            arrival_s, seq_len, tgt_len, self.policy, self.max_wait_s
        )
