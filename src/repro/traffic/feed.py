"""Feed adapter: serving traffic as a live identification stream.

:class:`TrafficFeed` presents a :class:`~repro.traffic.simulator.ServedTraffic`
to the streaming subsystem as :class:`~repro.stream.feed.FrameSlice`
chunks.  Chunking follows the batcher, not an arbitrary replay
granularity: batches closed at the same formation instant (one
max-wait flush, one pool dispatch) arrive at the identifier together,
exactly as a live serving loop would report them.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.stream.feed import FrameSlice
from repro.traffic.simulator import ServedTraffic

__all__ = ["TrafficFeed"]


class TrafficFeed:
    """Iterate a served run as formation-instant chunks of its frame."""

    def __init__(self, served: ServedTraffic):
        self.frame = served.frame
        self._form_times = np.asarray(
            [batch.form_time_s for batch in served.batches], dtype=np.float64
        )
        # Chunk boundaries: wherever the formation instant changes.
        self._bounds = np.flatnonzero(np.diff(self._form_times)) + 1

    def __len__(self) -> int:
        return len(self.frame)

    def __iter__(self) -> Iterator[FrameSlice]:
        total = len(self.frame)
        if total == 0:
            return
        start = 0
        for stop in self._bounds.tolist():
            yield FrameSlice(frame=self.frame, start=start, stop=stop)
            start = stop
        yield FrameSlice(frame=self.frame, start=start, stop=total)
