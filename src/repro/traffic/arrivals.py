"""Request arrival processes: when traffic reaches the serving queue.

Each process maps ``(count, seed)`` to a sorted float64 array of
arrival instants in seconds, seeded through :mod:`repro.util.rng` so a
traffic run is bit-reproducible end to end.  Four regimes cover the
serving literature's usual suspects:

* :class:`OfflineArrivals` — every request is already waiting at t=0
  (a batch job pretending to be traffic; degenerate on purpose, it is
  how ``experiments/inference.py`` routes through the traffic layer).
* :class:`DeterministicArrivals` — a perfectly paced load generator.
* :class:`PoissonArrivals` — memoryless open-loop traffic, the
  canonical serving assumption.
* :class:`BurstyArrivals` — an on/off modulated Poisson process: the
  rate alternates between ``burst_factor * rate`` (a fraction
  ``on_fraction`` of each period) and a compensating trough, keeping
  the long-run mean at ``rate``.  Sampled by inverting the piecewise
  linear integrated rate, so the event count stays exact.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError
from repro.util.rng import derive_seed, make_rng

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "OfflineArrivals",
    "DeterministicArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
    "build_arrival_process",
]

#: Registered arrival-process kinds, in documentation order.
ARRIVAL_KINDS = ("offline", "deterministic", "poisson", "bursty")


def _check_rate(rate: float) -> float:
    try:
        rate = float(rate)
    except (TypeError, ValueError):
        raise ConfigurationError(f"rate must be numeric, got {rate!r}") from None
    if not rate > 0.0:
        raise ConfigurationError(f"rate must be positive, got {rate}")
    return rate


class ArrivalProcess(ABC):
    """Maps a request count to deterministic arrival instants."""

    #: Registry name of this process (one of :data:`ARRIVAL_KINDS`).
    kind: str

    @abstractmethod
    def times(self, count: int, seed: int) -> np.ndarray:
        """Sorted float64 arrival seconds for ``count`` requests."""

    def _rng(self, seed: int) -> np.random.Generator:
        return make_rng(derive_seed(seed, "traffic-arrivals", self.kind))


class OfflineArrivals(ArrivalProcess):
    """All requests present at t=0 (a replayed batch, not live load)."""

    kind = "offline"

    def times(self, count: int, seed: int) -> np.ndarray:
        return np.zeros(count, dtype=np.float64)


class DeterministicArrivals(ArrivalProcess):
    """Evenly paced arrivals at exactly ``rate`` requests/second."""

    kind = "deterministic"

    def __init__(self, rate: float):
        self.rate = _check_rate(rate)

    def times(self, count: int, seed: int) -> np.ndarray:
        return np.arange(count, dtype=np.float64) / self.rate


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals with exponential inter-arrival gaps."""

    kind = "poisson"

    def __init__(self, rate: float):
        self.rate = _check_rate(rate)

    def times(self, count: int, seed: int) -> np.ndarray:
        gaps = self._rng(seed).exponential(1.0 / self.rate, size=count)
        return np.cumsum(gaps)


class BurstyArrivals(ArrivalProcess):
    """On/off modulated Poisson traffic with mean rate ``rate``.

    Each ``period_s``-second window opens with a burst at
    ``burst_factor * rate`` lasting ``on_fraction`` of the period, then
    drops to the trough rate that keeps the window's mean at ``rate``
    (which requires ``burst_factor * on_fraction < 1``).  Events come
    from a unit-rate Poisson process pushed through the inverse of the
    integrated rate function — the standard inversion construction for
    inhomogeneous Poisson processes.
    """

    kind = "bursty"

    def __init__(
        self,
        rate: float,
        burst_factor: float = 3.0,
        on_fraction: float = 0.25,
        period_s: float = 1.0,
    ):
        self.rate = _check_rate(rate)
        try:
            burst_factor = float(burst_factor)
            on_fraction = float(on_fraction)
            period_s = float(period_s)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"burst_factor/on_fraction/period_s must be numeric, got "
                f"{burst_factor!r}/{on_fraction!r}/{period_s!r}"
            ) from None
        if burst_factor < 1.0:
            raise ConfigurationError(
                f"burst_factor must be >= 1, got {burst_factor}"
            )
        if not 0.0 < on_fraction < 1.0:
            raise ConfigurationError(
                f"on_fraction must lie in (0, 1), got {on_fraction}"
            )
        if burst_factor * on_fraction >= 1.0:
            raise ConfigurationError(
                f"burst_factor * on_fraction must be < 1 so the off-phase "
                f"rate stays positive, got {burst_factor * on_fraction}"
            )
        if not period_s > 0.0:
            raise ConfigurationError(
                f"period_s must be positive, got {period_s}"
            )
        self.burst_factor = burst_factor
        self.on_fraction = on_fraction
        self.period_s = period_s

    def times(self, count: int, seed: int) -> np.ndarray:
        # Integrated-hazard values of a unit-rate Poisson process ...
        hazard = np.cumsum(self._rng(seed).exponential(1.0, size=count))
        # ... inverted through the piecewise linear cumulative rate.
        rate_on = self.burst_factor * self.rate
        on_share = self.burst_factor * self.on_fraction
        rate_off = self.rate * (1.0 - on_share) / (1.0 - self.on_fraction)
        per_period = self.rate * self.period_s  # hazard mass per period
        on_mass = rate_on * self.on_fraction * self.period_s
        period = np.floor(hazard / per_period)
        residual = hazard - period * per_period
        in_burst = residual <= on_mass
        offset = np.where(
            in_burst,
            residual / rate_on,
            self.on_fraction * self.period_s + (residual - on_mass) / rate_off,
        )
        return period * self.period_s + offset


def build_arrival_process(
    kind: str,
    rate: float = 64.0,
    burst_factor: float = 3.0,
    on_fraction: float = 0.25,
    period_s: float = 1.0,
) -> ArrivalProcess:
    """Instantiate a named arrival process with its relevant knobs."""
    if kind == "offline":
        return OfflineArrivals()
    if kind == "deterministic":
        return DeterministicArrivals(rate)
    if kind == "poisson":
        return PoissonArrivals(rate)
    if kind == "bursty":
        return BurstyArrivals(
            rate,
            burst_factor=burst_factor,
            on_fraction=on_fraction,
            period_s=period_s,
        )
    raise ConfigurationError(
        f"unknown arrival process {kind!r}; expected one of: "
        f"{', '.join(ARRIVAL_KINDS)}"
    )
