"""Request workloads: which sequence lengths the traffic asks for.

Serving requests are bootstrap-resampled from the corpus the scenario
already names (IWSLT sentences, LibriSpeech utterances), so the request
mix inherits the realistic length distributions of
:mod:`repro.data.corpora` instead of inventing new ones.  A *mixture
schedule* is a tuple of :class:`TrafficPhase`\\ s: each phase owns a
fraction of the run and restricts sampling to a quantile window of the
corpus length distribution, so overlapping windows model gradual shifts
and disjoint windows model hard changepoints.  One phase spanning
``[0, 1]`` is stationary traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.data.dataset import SequenceDataset
from repro.errors import ConfigurationError
from repro.train.frame import NO_TGT
from repro.util.rng import derive_seed, make_rng

__all__ = ["TrafficPhase", "RequestSet", "sample_requests"]


@dataclass(frozen=True)
class TrafficPhase:
    """One quasi-stationary segment of the request mix.

    ``fraction`` is this phase's share of the request count;
    ``quantile_lo``/``quantile_hi`` bound the corpus length quantiles
    requests are drawn from while the phase is active.
    """

    fraction: float
    quantile_lo: float = 0.0
    quantile_hi: float = 1.0

    def __post_init__(self) -> None:
        try:
            object.__setattr__(self, "fraction", float(self.fraction))
            object.__setattr__(self, "quantile_lo", float(self.quantile_lo))
            object.__setattr__(self, "quantile_hi", float(self.quantile_hi))
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"phase fields must be numeric, got {self.fraction!r}/"
                f"{self.quantile_lo!r}/{self.quantile_hi!r}"
            ) from None
        if not self.fraction > 0.0:
            raise ConfigurationError(
                f"phase fraction must be positive, got {self.fraction}"
            )
        if not 0.0 <= self.quantile_lo < self.quantile_hi <= 1.0:
            raise ConfigurationError(
                f"phase quantile window [{self.quantile_lo}, "
                f"{self.quantile_hi}] must satisfy 0 <= lo < hi <= 1"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "fraction": self.fraction,
            "quantile_lo": self.quantile_lo,
            "quantile_hi": self.quantile_hi,
        }

    @classmethod
    def from_value(cls, value: Any) -> "TrafficPhase":
        """Coerce a JSON phase entry (mapping) or pass one through."""
        if isinstance(value, TrafficPhase):
            return value
        try:
            items = dict(value)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"phases must be mappings with fraction/quantile_lo/"
                f"quantile_hi, got {value!r}"
            ) from None
        unknown = sorted(set(items) - {"fraction", "quantile_lo", "quantile_hi"})
        if unknown:
            raise ConfigurationError(
                f"unknown TrafficPhase fields: {', '.join(unknown)}; "
                f"expected a subset of: fraction, quantile_hi, quantile_lo"
            )
        if "fraction" not in items:
            raise ConfigurationError("phases need a 'fraction' field")
        return cls(**items)


@dataclass(frozen=True)
class RequestSet:
    """A sampled request stream, columnar and arrival-ordered.

    ``seq_len``/``tgt_len`` are the per-request raw lengths (``NO_TGT``
    where the corpus has no target side) and ``phase`` maps each
    request onto the :class:`TrafficPhase` that generated it.  Requests
    are ordered phase by phase, so phase boundaries are mid-run
    mixture shifts once arrival times attach.
    """

    seq_len: np.ndarray
    tgt_len: np.ndarray
    phase: np.ndarray

    def __len__(self) -> int:
        return int(self.seq_len.size)


def sample_requests(
    dataset: SequenceDataset,
    phases: tuple[TrafficPhase, ...],
    count: int,
    seed: int,
) -> RequestSet:
    """Bootstrap ``count`` requests from ``dataset`` per the schedule.

    Phase fractions are normalised; integer request counts allocate by
    floor with the remainder credited to the final phase, so the total
    is exact.  Each phase resamples (with replacement) from the corpus
    samples whose lengths fall inside its quantile window, under its
    own derived seed, so inserting or editing one phase cannot shift
    another phase's draw.
    """
    if count <= 0:
        raise ConfigurationError(f"request count must be positive, got {count}")
    if not phases:
        raise ConfigurationError("at least one traffic phase is required")
    lengths = dataset.lengths
    targets = dataset.tgt_lengths if dataset.has_targets else None
    total_fraction = sum(phase.fraction for phase in phases)
    allocation = [
        int(count * phase.fraction / total_fraction) for phase in phases
    ]
    allocation[-1] += count - sum(allocation)
    seq_parts: list[np.ndarray] = []
    tgt_parts: list[np.ndarray] = []
    phase_parts: list[np.ndarray] = []
    for index, (phase, quota) in enumerate(zip(phases, allocation)):
        if quota == 0:
            continue
        lo = np.quantile(lengths, phase.quantile_lo)
        hi = np.quantile(lengths, phase.quantile_hi)
        eligible = np.flatnonzero((lengths >= lo) & (lengths <= hi))
        if eligible.size == 0:
            raise ConfigurationError(
                f"phase {index}: quantile window [{phase.quantile_lo}, "
                f"{phase.quantile_hi}] selects no corpus samples"
            )
        rng = make_rng(derive_seed(seed, "traffic-requests", index))
        chosen = eligible[rng.integers(0, eligible.size, size=quota)]
        seq_parts.append(lengths[chosen])
        tgt_parts.append(
            targets[chosen]
            if targets is not None
            else np.full(quota, NO_TGT, dtype=np.int64)
        )
        phase_parts.append(np.full(quota, index, dtype=np.int64))
    return RequestSet(
        seq_len=np.concatenate(seq_parts).astype(np.int64, copy=False),
        tgt_len=np.concatenate(tgt_parts).astype(np.int64, copy=False),
        phase=np.concatenate(phase_parts),
    )
