"""Declarative traffic requests: frozen, validated, JSON round-trip.

A :class:`TrafficSpec` nests the scenario description — a full
:class:`~repro.api.spec.AnalysisSpec` — under the serving knobs: the
arrival process and its load/burst shape, the request count, the
mixture schedule (:class:`~repro.traffic.workload.TrafficPhase`\\ s),
the dynamic batcher's wait bound, the configurations to project
serving time onto, and the streaming-identification convergence loop.
One JSON document therefore describes a full traffic study end to end,
exactly as ``StreamSpec`` does for replayed epochs.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.api.spec import AnalysisSpec, ProjectionSpec, SpecBase
from repro.errors import ConfigurationError
from repro.traffic.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    build_arrival_process,
)
from repro.traffic.workload import TrafficPhase

__all__ = ["TrafficSpec"]


@dataclass(frozen=True)
class TrafficSpec(SpecBase):
    """One traffic-driven serving simulation, declaratively.

    ``analysis`` names the scenario (network, corpus, batching policy,
    serving batch size, device config, selector); the traffic fields
    shape the load; the trailing fields parameterise the streaming
    identifier that watches the live batch stream.
    """

    analysis: AnalysisSpec
    #: Arrival process kind (one of ``repro.traffic.ARRIVAL_KINDS``).
    arrival: str = "poisson"
    #: Mean request rate in requests/second (ignored by ``offline``).
    rate: float = 64.0
    #: Total requests the run serves.
    requests: int = 1024
    #: Dynamic batcher's max-wait trigger.
    max_wait_s: float = 0.5
    #: Bursty-arrival shape (ignored by the other kinds).
    burst_factor: float = 3.0
    on_fraction: float = 0.25
    period_s: float = 1.0
    #: Mixture schedule; one full-window phase is stationary traffic.
    phases: tuple[TrafficPhase, ...] = (TrafficPhase(1.0),)
    #: Overrides the dataset's pad multiple (``None``: keep it).
    pad_multiple: int | None = None
    #: Configs to project serving time onto (``None``: none).
    targets: tuple[int, ...] | None = None
    #: Streaming-identifier knobs (see ``StreamSpec``).
    cadence: int = 16
    patience: int = 3
    rtol: float = 0.005
    drift_rtol: float = 0.02
    sl_rtol: float = 0.1
    min_iterations: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.analysis, Mapping):
            object.__setattr__(
                self, "analysis", AnalysisSpec.from_dict(self.analysis)
            )
        if not isinstance(self.analysis, AnalysisSpec):
            raise ConfigurationError(
                f"analysis must be an AnalysisSpec (or its dict form), "
                f"got {self.analysis!r}"
            )
        if self.arrival not in ARRIVAL_KINDS:
            raise ConfigurationError(
                f"unknown arrival process {self.arrival!r}; expected one "
                f"of: {', '.join(ARRIVAL_KINDS)}"
            )
        if not isinstance(self.requests, int) or isinstance(self.requests, bool):
            raise ConfigurationError(
                f"requests must be an int, got {self.requests!r}"
            )
        if self.requests < 1:
            raise ConfigurationError(
                f"requests must be >= 1, got {self.requests}"
            )
        for name in ("rate", "max_wait_s", "burst_factor", "on_fraction",
                     "period_s", "rtol", "drift_rtol", "sl_rtol"):
            try:
                object.__setattr__(self, name, float(getattr(self, name)))
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"{name} must be numeric, got {getattr(self, name)!r}"
                ) from None
        if not self.max_wait_s > 0:
            raise ConfigurationError(
                f"max_wait_s must be positive, got {self.max_wait_s}"
            )
        if not isinstance(self.phases, Sequence) or isinstance(
            self.phases, (str, bytes)
        ):
            raise ConfigurationError(
                f"phases must be a sequence of phase objects, "
                f"got {self.phases!r}"
            )
        object.__setattr__(
            self,
            "phases",
            tuple(TrafficPhase.from_value(phase) for phase in self.phases),
        )
        if not self.phases:
            raise ConfigurationError("phases cannot be empty")
        if self.pad_multiple is not None:
            if (
                not isinstance(self.pad_multiple, int)
                or isinstance(self.pad_multiple, bool)
                or self.pad_multiple < 1
            ):
                raise ConfigurationError(
                    f"pad_multiple must be a positive int or null, "
                    f"got {self.pad_multiple!r}"
                )
        if self.targets is not None:
            object.__setattr__(
                self, "targets", ProjectionSpec(targets=self.targets).targets
            )
        for name in ("cadence", "patience", "min_iterations"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigurationError(
                    f"{name} must be an int, got {value!r}"
                )
        if self.cadence < 1:
            raise ConfigurationError(f"cadence must be >= 1, got {self.cadence}")
        if self.patience < 1:
            raise ConfigurationError(
                f"patience must be >= 1, got {self.patience}"
            )
        if self.min_iterations < 0:
            raise ConfigurationError(
                f"min_iterations cannot be negative, got {self.min_iterations}"
            )
        if not self.rtol > 0:
            raise ConfigurationError(f"rtol must be positive, got {self.rtol}")
        if not self.drift_rtol > 0:
            raise ConfigurationError(
                f"drift_rtol must be positive, got {self.drift_rtol}"
            )
        if self.sl_rtol < 0:
            raise ConfigurationError(
                f"sl_rtol cannot be negative, got {self.sl_rtol}"
            )
        self.build_arrivals()  # fail now, not after sampling a workload

    def build_arrivals(self) -> ArrivalProcess:
        """Instantiate the arrival process this spec describes."""
        return build_arrival_process(
            self.arrival,
            rate=self.rate,
            burst_factor=self.burst_factor,
            on_fraction=self.on_fraction,
            period_s=self.period_s,
        )

    def build_identifier(self) -> Any:
        """Instantiate the streaming convergence loop for this traffic."""
        from repro.stream.identifier import StreamingIdentifier

        return StreamingIdentifier(
            selector=self.analysis.build_selector(),
            cadence=self.cadence,
            patience=self.patience,
            rtol=self.rtol,
            drift_rtol=self.drift_rtol,
            sl_rtol=self.sl_rtol,
            min_iterations=self.min_iterations,
        )

    def projection(self) -> ProjectionSpec | None:
        return None if self.targets is None else ProjectionSpec(self.targets)

    def to_dict(self) -> dict[str, Any]:
        return {
            "analysis": self.analysis.to_dict(),
            "arrival": self.arrival,
            "rate": self.rate,
            "requests": self.requests,
            "max_wait_s": self.max_wait_s,
            "burst_factor": self.burst_factor,
            "on_fraction": self.on_fraction,
            "period_s": self.period_s,
            "phases": [phase.to_dict() for phase in self.phases],
            "pad_multiple": self.pad_multiple,
            "targets": None if self.targets is None else list(self.targets),
            "cadence": self.cadence,
            "patience": self.patience,
            "rtol": self.rtol,
            "drift_rtol": self.drift_rtol,
            "sl_rtol": self.sl_rtol,
            "min_iterations": self.min_iterations,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TrafficSpec":
        data = cls._validate_payload(payload)
        if "analysis" not in data:
            raise ConfigurationError("TrafficSpec needs an 'analysis' object")
        return cls(**data)
