"""IWSLT'15-like machine-translation corpus (GNMT's dataset).

IWSLT 2015 English-Vietnamese has ~133k sentence pairs with classically
log-normal sentence lengths (median around 16 tokens, a long tail to
~200) and a target side slightly longer than the source on average.
The synthetic population reproduces those statistics; the vocabulary is
pinned to 36549 — the classifier dimension the paper's Table I shows.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Sample, SequenceDataset
from repro.data.distributions import LogNormalLengths
from repro.models.gnmt import GNMT_VOCAB
from repro.util.rng import derive_seed, make_rng

__all__ = ["build_iwslt", "IWSLT_SENTENCES", "IWSLT_MAX_LEN"]

IWSLT_SENTENCES = 133_000
IWSLT_MAX_LEN = 200
_TGT_RATIO_MEAN = 1.1
_TGT_RATIO_STD = 0.12


def build_iwslt(
    sentences: int = IWSLT_SENTENCES, seed: int = 2015
) -> SequenceDataset:
    """Synthesise the IWSLT'15-like training corpus."""
    length_rng = make_rng(derive_seed(seed, "iwslt", "src"))
    ratio_rng = make_rng(derive_seed(seed, "iwslt", "ratio"))

    distribution = LogNormalLengths(
        median=16.0, sigma=0.62, min_len=1, max_len=IWSLT_MAX_LEN
    )
    src = distribution.sample(length_rng, sentences)

    ratios = ratio_rng.normal(_TGT_RATIO_MEAN, _TGT_RATIO_STD, size=sentences)
    tgt = np.clip(np.rint(src * ratios), 1, IWSLT_MAX_LEN).astype(np.int64)

    samples = tuple(
        Sample(length=int(s), tgt_length=int(t)) for s, t in zip(src, tgt)
    )
    return SequenceDataset(
        name="iwslt15", samples=samples, vocab=GNMT_VOCAB, unit="tokens"
    )
