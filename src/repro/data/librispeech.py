"""LibriSpeech-100h-like speech corpus (DS2's dataset).

LibriSpeech train-clean-100 has 28.5k utterances totalling ~100 hours:
a mode of long read-speech segments (10-17 s, where chapter audio is
chunked near the corpus cap) plus a shorter-utterance mode from
sentence-final fragments.  Sample lengths are *spectrogram frames* at a
20 ms hop (50 frames/s, the paper-era DS2 front-end); DS2's strided
convolutions halve them, so an SL-804 batch reaches the GRU stack as
402 steps — Table I's ``N = 64*402``.
"""

from __future__ import annotations

from repro.data.dataset import Sample, SequenceDataset
from repro.data.distributions import LogNormalLengths, MixtureLengths
from repro.models.ds2 import DS2_ALPHABET
from repro.util.rng import derive_seed, make_rng

__all__ = ["build_librispeech", "LIBRISPEECH_UTTERANCES", "FRAMES_PER_SECOND"]

LIBRISPEECH_UTTERANCES = 28_539
FRAMES_PER_SECOND = 50
#: LibriSpeech caps utterances near 16.7 s → ~835 frames.
_MAX_FRAMES = 835
_MIN_FRAMES = 50


def build_librispeech(
    utterances: int = LIBRISPEECH_UTTERANCES, seed: int = 2015
) -> SequenceDataset:
    """Synthesise the LibriSpeech-100h-like training corpus."""
    rng = make_rng(derive_seed(seed, "librispeech", "frames"))
    distribution = MixtureLengths.of(
        # Short fragments: a couple of seconds.
        (0.30, LogNormalLengths(
            median=4.2 * FRAMES_PER_SECOND, sigma=0.50,
            min_len=_MIN_FRAMES, max_len=_MAX_FRAMES,
        )),
        # Chunked read speech: clustered under the corpus cap.
        (0.70, LogNormalLengths(
            median=13.0 * FRAMES_PER_SECOND, sigma=0.22,
            min_len=_MIN_FRAMES, max_len=_MAX_FRAMES,
        )),
    )
    frames = distribution.sample(rng, utterances)
    samples = tuple(Sample(length=int(f)) for f in frames)
    return SequenceDataset(
        name="librispeech-100h",
        samples=samples,
        vocab=DS2_ALPHABET,
        unit="frames",
    )
