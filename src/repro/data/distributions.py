"""Sequence-length distribution models.

Length populations are what give SQNN training its heterogeneity, so
these distributions are the root of every paper figure.  Two families
cover both corpora: a clipped log-normal (sentence lengths are
classically log-normal) and a weighted mixture (speech corpora have
distinct short-utterance and long-utterance modes).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LengthDistribution", "LogNormalLengths", "MixtureLengths"]


class LengthDistribution(ABC):
    """Draws integer sequence lengths."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Return ``count`` integer lengths."""

    @staticmethod
    def _clip_to_int(
        values: np.ndarray, min_len: int, max_len: int
    ) -> np.ndarray:
        return np.clip(np.rint(values), min_len, max_len).astype(np.int64)


@dataclass(frozen=True)
class LogNormalLengths(LengthDistribution):
    """Log-normal lengths clipped to ``[min_len, max_len]``.

    ``median`` is the distribution median in length units (more
    readable to calibrate than the underlying mu).
    """

    median: float
    sigma: float
    min_len: int
    max_len: int

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma <= 0:
            raise ConfigurationError("median and sigma must be positive")
        if not 0 < self.min_len <= self.max_len:
            raise ConfigurationError(
                f"need 0 < min_len <= max_len, got [{self.min_len}, {self.max_len}]"
            )

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        draws = rng.lognormal(mean=np.log(self.median), sigma=self.sigma, size=count)
        return self._clip_to_int(draws, self.min_len, self.max_len)


@dataclass(frozen=True)
class MixtureLengths(LengthDistribution):
    """Weighted mixture of component distributions."""

    components: tuple[tuple[float, LengthDistribution], ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise ConfigurationError("mixture needs at least one component")
        if any(weight <= 0 for weight, _ in self.components):
            raise ConfigurationError("mixture weights must be positive")

    @staticmethod
    def of(*components: tuple[float, LengthDistribution]) -> "MixtureLengths":
        return MixtureLengths(components=tuple(components))

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        weights = np.array([weight for weight, _ in self.components], dtype=float)
        weights /= weights.sum()
        assignment = rng.choice(len(self.components), size=count, p=weights)
        lengths = np.empty(count, dtype=np.int64)
        for index, (_, dist) in enumerate(self.components):
            mask = assignment == index
            picked = int(mask.sum())
            if picked:
                lengths[mask] = dist.sample(rng, picked)
        return lengths
