"""Dataset container: a population of variable-length samples.

A :class:`SequenceDataset` is all SeqPoint ever sees of a corpus: how
many samples, their lengths (and target-side lengths for seq2seq), and
the vocabulary size (which must be preserved when sampling — the
paper's Key Observation 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Sample", "SequenceDataset"]


@dataclass(frozen=True)
class Sample:
    """One training example's length metadata."""

    length: int
    tgt_length: int | None = None

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ConfigurationError(f"sample length must be positive: {self.length}")
        if self.tgt_length is not None and self.tgt_length <= 0:
            raise ConfigurationError(
                f"target length must be positive: {self.tgt_length}"
            )


@dataclass(frozen=True)
class SequenceDataset:
    """A corpus as a population of sample lengths."""

    name: str
    samples: tuple[Sample, ...]
    vocab: int
    #: Human-readable modality, e.g. "speech-frames" or "text-tokens".
    unit: str = "tokens"

    def __post_init__(self) -> None:
        if not self.samples:
            raise ConfigurationError(f"{self.name}: dataset has no samples")
        if self.vocab <= 0:
            raise ConfigurationError(f"{self.name}: vocab must be positive")

    def __len__(self) -> int:
        return len(self.samples)

    @cached_property
    def lengths(self) -> np.ndarray:
        """Source-side lengths as one immutable int64 column."""
        array = np.array(
            [sample.length for sample in self.samples], dtype=np.int64
        )
        array.setflags(write=False)
        return array

    @cached_property
    def tgt_lengths(self) -> np.ndarray:
        """Target-side lengths column (only meaningful for seq2seq)."""
        array = np.array(
            [sample.tgt_length for sample in self.samples], dtype=np.int64
        )
        array.setflags(write=False)
        return array

    @property
    def has_targets(self) -> bool:
        return self.samples[0].tgt_length is not None

    def length_histogram(self) -> dict[int, int]:
        """Sample count per unique length (the Fig 7 statistic)."""
        values, counts = np.unique(self.lengths, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def split(self, eval_fraction: float, seed: int) -> tuple[
        "SequenceDataset", "SequenceDataset"
    ]:
        """Deterministic train/eval split (eval is the paper's ~2-3%)."""
        if not 0.0 < eval_fraction < 1.0:
            raise ConfigurationError(
                f"eval_fraction must lie in (0, 1), got {eval_fraction}"
            )
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.samples))
        eval_count = max(1, int(len(self.samples) * eval_fraction))
        eval_idx = set(order[:eval_count].tolist())
        train = tuple(
            sample for i, sample in enumerate(self.samples) if i not in eval_idx
        )
        evaluation = tuple(
            sample for i, sample in enumerate(self.samples) if i in eval_idx
        )
        return (
            SequenceDataset(f"{self.name}-train", train, self.vocab, self.unit),
            SequenceDataset(f"{self.name}-eval", evaluation, self.vocab, self.unit),
        )
