"""Synthetic datasets with paper-calibrated sequence-length statistics.

The paper trains on IWSLT'15 (GNMT) and LibriSpeech-100h (DS2).  The
corpora themselves are not needed — SeqPoint consumes only the stream
of per-iteration sequence lengths — so this package synthesises sample
populations whose length *distributions* match the published shapes
(paper Fig 7): log-normal sentence lengths for IWSLT, a short/long
duration mixture for LibriSpeech.
"""

from repro.data.batching import (
    BatchingPolicy,
    PooledBucketing,
    ShuffledBatching,
    SortaGradBatching,
    SortedBatching,
)
from repro.data.dataset import Sample, SequenceDataset
from repro.data.distributions import LengthDistribution, LogNormalLengths, MixtureLengths
from repro.data.iwslt import build_iwslt
from repro.data.librispeech import build_librispeech

__all__ = [
    "BatchingPolicy",
    "PooledBucketing",
    "ShuffledBatching",
    "SortaGradBatching",
    "SortedBatching",
    "Sample",
    "SequenceDataset",
    "LengthDistribution",
    "LogNormalLengths",
    "MixtureLengths",
    "build_iwslt",
    "build_librispeech",
]
