"""Batching policies: how a corpus becomes an epoch of iterations.

Every policy groups samples into fixed-size batches and pads each batch
to its longest member (paper §IV-B1), so the *iteration* sequence
length is the batch maximum.  The three policies reproduce the
pipelines the paper's two networks actually use:

* :class:`SortedBatching` — DS2's SortaGrad: the first epoch is sorted
  by length.  This is the "artifact of DS2's computation" (§VI-D) that
  hands the `prior` baseline a contiguous window of near-identical,
  runtime-dominating iterations.
* :class:`PooledBucketing` — GNMT-style: shuffle, then sort within
  pools of ``pool_factor`` batches to limit padding waste.  Contiguous
  iterations are therefore *locally similar* in SL, which is exactly
  why a contiguous 50-iteration window is not diverse (§VI-E's
  explanation of prior's GNMT errors).
* :class:`ShuffledBatching` — plain random order, for later epochs and
  ablations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.data.dataset import SequenceDataset
from repro.errors import ConfigurationError
from repro.models.spec import IterationInputs
from repro.util.rng import derive_seed, make_rng

__all__ = [
    "BatchingPolicy",
    "ShuffledBatching",
    "SortedBatching",
    "SortaGradBatching",
    "PooledBucketing",
]


class BatchingPolicy(ABC):
    """Turns a dataset into an epoch's iteration inputs.

    ``pad_multiple`` rounds the padded batch length up to a multiple
    (speech pipelines pad the time axis for kernel alignment); it is
    why DS2's unique-SL count is "up to half of all iterations" rather
    than nearly all of them (paper §V-A).
    """

    def __init__(self, batch_size: int, pad_multiple: int = 1):
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive: {batch_size}")
        if pad_multiple <= 0:
            raise ConfigurationError(f"pad_multiple must be positive: {pad_multiple}")
        self.batch_size = batch_size
        self.pad_multiple = pad_multiple

    def _pad(self, length: int) -> int:
        multiple = self.pad_multiple
        return ((length + multiple - 1) // multiple) * multiple

    def _pad_column(self, lengths: np.ndarray) -> np.ndarray:
        multiple = self.pad_multiple
        return ((lengths + multiple - 1) // multiple) * multiple

    @abstractmethod
    def _sample_order(
        self, dataset: SequenceDataset, epoch: int, seed: int
    ) -> np.ndarray:
        """Index order in which samples are consumed this epoch."""

    def plan_epoch(
        self,
        dataset: SequenceDataset,
        epoch: int = 0,
        seed: int = 0,
        drop_last: bool = True,
    ) -> list[IterationInputs]:
        """Batch the dataset for one epoch.

        ``drop_last`` drops the final ragged batch, as both reference
        training pipelines do; evaluation passes keep it (at its actual
        size) so small held-out sets are not silently skipped.
        """
        order = self._sample_order(dataset, epoch, seed)
        lengths = dataset.lengths[order]
        targets = dataset.tgt_lengths[order] if dataset.has_targets else None

        iterations: list[IterationInputs] = []
        for lo in range(0, len(order), self.batch_size):
            hi = min(lo + self.batch_size, len(order))
            if hi - lo < self.batch_size and drop_last:
                break
            seq_len = self._pad(int(lengths[lo:hi].max()))
            tgt_len = (
                self._pad(int(targets[lo:hi].max()))
                if targets is not None
                else None
            )
            iterations.append(
                IterationInputs(batch=hi - lo, seq_len=seq_len, tgt_len=tgt_len)
            )
        return iterations

    def plan_epoch_columns(
        self, dataset: SequenceDataset, epoch: int = 0, seed: int = 0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized epoch plan: ``(seq_len, tgt_len)`` int64 columns.

        The columnar twin of :meth:`plan_epoch` for the training path
        (full batches only, ragged tail dropped): batch ``b`` covers the
        same samples, so the padded maxima are identical integers —
        guaranteed by a test.  ``tgt_len`` is ``-1`` where the dataset
        has no target side.  All batches have exactly ``batch_size``
        samples, so no batch column is needed.
        """
        order = self._sample_order(dataset, epoch, seed)
        n_full = len(order) // self.batch_size
        order = order[: n_full * self.batch_size]
        if n_full == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        grouped = dataset.lengths[order].reshape(n_full, self.batch_size)
        seq_len = self._pad_column(grouped.max(axis=1))
        if dataset.has_targets:
            grouped_tgt = dataset.tgt_lengths[order].reshape(
                n_full, self.batch_size
            )
            tgt_len = self._pad_column(grouped_tgt.max(axis=1))
        else:
            tgt_len = np.full(n_full, -1, dtype=np.int64)
        return seq_len, tgt_len


class ShuffledBatching(BatchingPolicy):
    """Uniform random sample order, reshuffled every epoch."""

    def _sample_order(
        self, dataset: SequenceDataset, epoch: int, seed: int
    ) -> np.ndarray:
        rng = make_rng(derive_seed(seed, "shuffle", dataset.name, epoch))
        return rng.permutation(len(dataset))


class SortedBatching(BatchingPolicy):
    """Ascending length order (DS2's SortaGrad first epoch)."""

    def _sample_order(
        self, dataset: SequenceDataset, epoch: int, seed: int
    ) -> np.ndarray:
        return np.argsort(dataset.lengths, kind="stable")


class SortaGradBatching(BatchingPolicy):
    """DS2's actual curriculum: first epoch sorted, later epochs shuffled.

    DeepSpeech2 sorts the first epoch by utterance length for training
    stability ("SortaGrad"); from the second epoch on it shuffles.  The
    paper's `prior`-baseline discussion (§VI-D) hinges on the sorted
    first epoch, which is also the identification epoch.
    """

    def _sample_order(
        self, dataset: SequenceDataset, epoch: int, seed: int
    ) -> np.ndarray:
        if epoch == 0:
            return np.argsort(dataset.lengths, kind="stable")
        rng = make_rng(derive_seed(seed, "sortagrad", dataset.name, epoch))
        return rng.permutation(len(dataset))


class PooledBucketing(BatchingPolicy):
    """Shuffle, then sort within pools of ``pool_factor`` batches.

    The standard NMT input pipeline (torchtext/fairseq style): padding
    waste stays low because nearby batches have similar lengths, and
    batch order inherits the pool structure rather than being uniformly
    mixed.
    """

    def __init__(
        self, batch_size: int, pool_factor: int = 100, pad_multiple: int = 1
    ):
        super().__init__(batch_size, pad_multiple)
        if pool_factor <= 0:
            raise ConfigurationError(f"pool_factor must be positive: {pool_factor}")
        self.pool_factor = pool_factor

    def _sample_order(
        self, dataset: SequenceDataset, epoch: int, seed: int
    ) -> np.ndarray:
        rng = make_rng(derive_seed(seed, "pooled", dataset.name, epoch))
        order = rng.permutation(len(dataset))
        lengths = dataset.lengths
        pool_span = self.pool_factor * self.batch_size
        pieces: list[np.ndarray] = []
        for start in range(0, len(order), pool_span):
            pool = order[start:start + pool_span]
            pieces.append(pool[np.argsort(lengths[pool], kind="stable")])
        return np.concatenate(pieces)
