"""K-means clustering over iteration execution profiles (paper §VII-C).

The paper's "more sophisticated" alternative to SL binning: cluster
iterations by their execution profiles, take one representative per
cluster.  The paper found it performs no better than simple contiguous
binning — our ablation benchmark regenerates that comparison.

Features per unique SL: the iteration's kernel-group runtime shares
plus its normalised runtime.  Standard k-means with k-means++ seeding,
implemented here directly (no sklearn offline), deterministic by seed.
"""

from __future__ import annotations

import numpy as np

from repro.core.selection import SelectedPoint, Selection
from repro.core.sl_stats import SlStat, SlStatistics
from repro.errors import SelectionError
from repro.train.frame import TraceFrame
from repro.train.trace import TrainingTrace
from repro.util.rng import make_rng

__all__ = ["KMeansSelector", "kmeans_cluster"]


def _feature_matrix(stats: list[SlStat]) -> np.ndarray:
    """Execution-profile features: group shares + normalised runtime."""
    groups = sorted({g for stat in stats for g in stat.representative.group_times})
    max_time = max(stat.mean_time_s for stat in stats)
    rows = []
    for stat in stats:
        times = stat.representative.group_times
        device_total = sum(times.values()) or 1.0
        shares = [times.get(group, 0.0) / device_total for group in groups]
        rows.append([*shares, stat.mean_time_s / max_time])
    return np.array(rows, dtype=float)


def kmeans_cluster(
    features: np.ndarray, k: int, seed: int = 0, max_iter: int = 100
) -> np.ndarray:
    """Cluster rows of ``features`` into ``k`` groups; returns labels."""
    if k <= 0:
        raise SelectionError(f"k must be positive, got {k}")
    n = features.shape[0]
    if k > n:
        raise SelectionError(f"k={k} exceeds {n} observations")
    rng = make_rng(seed)

    # k-means++ seeding.
    centers = [features[rng.integers(n)]]
    for _ in range(1, k):
        dists = np.min(
            [np.sum((features - c) ** 2, axis=1) for c in centers], axis=0
        )
        total = dists.sum()
        if total <= 0:
            centers.append(features[rng.integers(n)])
            continue
        centers.append(features[rng.choice(n, p=dists / total)])
    centroids = np.array(centers)

    labels = np.zeros(n, dtype=int)
    for _ in range(max_iter):
        distances = np.linalg.norm(
            features[:, None, :] - centroids[None, :, :], axis=2
        )
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            members = features[labels == j]
            if len(members):
                centroids[j] = members.mean(axis=0)
    return labels


class KMeansSelector:
    """Cluster execution profiles; one weighted representative each."""

    METHOD = "kmeans"

    def __init__(self, k: int, seed: int = 0):
        # Eager type checks: spec/CLI kwargs must fail at construction
        # with a clean error, not as a TypeError mid-clustering.
        for name, value in (("k", k), ("seed", seed)):
            if not isinstance(value, int) or isinstance(value, bool):
                raise SelectionError(f"{name} must be an int, got {value!r}")
        if k <= 0:
            raise SelectionError("k must be positive")
        self.k = k
        self.seed = seed

    def select(self, trace: TrainingTrace | TraceFrame) -> Selection:
        statistics = SlStatistics.from_trace(trace)
        stats = list(statistics)
        k = min(self.k, len(stats))
        features = _feature_matrix(stats)
        labels = kmeans_cluster(features, k, seed=self.seed)

        points = []
        for j in range(k):
            members = [stat for stat, label in zip(stats, labels) if label == j]
            if not members:
                continue
            weight = float(sum(stat.iterations for stat in members))
            mean_time = (
                sum(stat.total_time_s for stat in members) / weight
            )
            representative = min(
                members, key=lambda stat: abs(stat.mean_time_s - mean_time)
            )
            points.append(
                SelectedPoint(record=representative.representative, weight=weight)
            )
        return Selection(method=self.METHOD, points=tuple(points))
