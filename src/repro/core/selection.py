"""Selection containers shared by SeqPoint and every baseline.

A :class:`Selection` is a named set of weighted representative
iterations.  Projections (:mod:`repro.core.projection`) operate on this
type uniformly, so SeqPoint, ``frequent``, ``median``, ``worst``,
``prior``, and the k-means ablation are directly comparable — the
structure of the paper's Figs 11/12/15/16.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.binning import Bin
from repro.errors import SelectionError
from repro.train.trace import IterationRecord

__all__ = ["SelectedPoint", "Selection", "select_from_bin"]


@dataclass(frozen=True)
class SelectedPoint:
    """One representative iteration with its projection weight.

    ``weight`` is in iterations: the number of epoch iterations this
    point stands for.  Equation 1 of the paper is then
    ``sum(point.weight * stat(point))``.
    """

    record: IterationRecord
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise SelectionError(
                f"weight must be positive, got {self.weight} "
                f"for SL {self.record.seq_len}"
            )

    @property
    def seq_len(self) -> int:
        return self.record.seq_len

    @property
    def tgt_len(self) -> int | None:
        return self.record.tgt_len


@dataclass(frozen=True)
class Selection:
    """A named, weighted set of representative iterations.

    ``profiled_iterations`` overrides the profiling-cost accounting for
    methods that must execute more iterations than they keep distinct
    points for — ``prior`` profiles its whole 50-iteration window
    because it is oblivious to sequence-length semantics.
    """

    method: str
    points: tuple[SelectedPoint, ...]
    profiled_iterations: int | None = None

    def __post_init__(self) -> None:
        if not self.points:
            raise SelectionError(f"{self.method}: selection is empty")
        if self.profiled_iterations is not None and self.profiled_iterations <= 0:
            raise SelectionError(f"{self.method}: profiled_iterations must be positive")

    def __len__(self) -> int:
        return len(self.points)

    @cached_property
    def weights_column(self) -> np.ndarray:
        """Point weights as one float column (Equation 1's w vector)."""
        return np.fromiter(
            (point.weight for point in self.points),
            np.float64,
            len(self.points),
        )

    @cached_property
    def times_column(self) -> np.ndarray:
        """Representative runtimes as one float column."""
        return np.fromiter(
            (point.record.time_s for point in self.points),
            np.float64,
            len(self.points),
        )

    @property
    def total_weight(self) -> float:
        return sum(point.weight for point in self.points)

    @property
    def seq_lens(self) -> tuple[int, ...]:
        return tuple(point.seq_len for point in self.points)

    @property
    def iterations_to_profile(self) -> int:
        """How many iterations must actually be (re-)executed.

        The profiling-cost currency of §VI-F: distinct representative
        iterations (each runs once per hardware configuration), unless
        the method declares a larger mandatory window.
        """
        if self.profiled_iterations is not None:
            return self.profiled_iterations
        return len({(p.seq_len, p.tgt_len) for p in self.points})


def select_from_bin(bin_: Bin, strategy: str = "closest-mean") -> SelectedPoint:
    """Step 3 of Fig 10: pick one representative SL from a bin.

    ``closest-mean`` is the paper's choice: the SL whose runtime is
    closest to the bin's (iteration-weighted) average runtime.  The
    other strategies exist for the ablation benchmarks:

    * ``median-sl`` — the SL at the bin's median iteration;
    * ``centroid-sl`` — the SL nearest the bin's iteration-weighted
      mean SL (a SimPoint-style centroid in SL space).

    The point's weight is always the bin size in iterations (step 4).
    """
    weight = float(bin_.iterations)
    if strategy == "closest-mean":
        target = bin_.mean_time_s
        mean_times = np.fromiter(
            (stat.mean_time_s for stat in bin_.stats),
            np.float64,
            len(bin_.stats),
        )
        best = bin_.stats[int(np.argmin(np.abs(mean_times - target)))]
    elif strategy == "median-sl":
        iterations = np.fromiter(
            (stat.iterations for stat in bin_.stats),
            np.float64,
            len(bin_.stats),
        )
        at_least_half = np.cumsum(iterations) >= bin_.iterations / 2.0
        best = bin_.stats[int(np.argmax(at_least_half))]
    elif strategy == "centroid-sl":
        seq_lens = np.fromiter(
            (stat.seq_len for stat in bin_.stats),
            np.float64,
            len(bin_.stats),
        )
        iterations = np.fromiter(
            (stat.iterations for stat in bin_.stats),
            np.float64,
            len(bin_.stats),
        )
        centroid = float(seq_lens @ iterations) / weight
        best = bin_.stats[int(np.argmin(np.abs(seq_lens - centroid)))]
    else:
        raise SelectionError(
            f"unknown representative strategy {strategy!r}; expected "
            "'closest-mean', 'median-sl', or 'centroid-sl'"
        )
    return SelectedPoint(record=best.representative, weight=weight)
