"""The SeqPoint selector: the paper's Fig 10 mechanism end to end.

Given a logged epoch trace:

1. compute the per-unique-SL statistic (runtime);
2. if there are at most ``max_unique`` (paper: n = 10) unique SLs,
   every one becomes a SeqPoint weighted by its frequency;
3. otherwise bin SLs into ``k`` (initially 5) contiguous ranges, pick
   per bin the SL closest to the bin's average runtime, weight it by
   bin size;
4. project the epoch runtime as the weighted sum (Equation 1) and
   compare against the logged epoch runtime;
5. grow ``k`` and repeat until the error drops below the user
   threshold ``e`` (or every unique SL is its own bin).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.binning import bin_stats
from repro.core.projection import project_logged_time
from repro.core.selection import SelectedPoint, Selection, select_from_bin
from repro.core.sl_stats import SlStatistics
from repro.errors import SelectionError
from repro.train.frame import TraceFrame
from repro.train.trace import TrainingTrace
from repro.util.stats import percent_error

__all__ = ["SeqPointSelector", "SeqPointResult"]


@dataclass(frozen=True)
class SeqPointResult:
    """Outcome of SeqPoint identification on one trace."""

    selection: Selection
    #: Bins used; 0 means the no-binning path (few unique SLs).
    k: int
    #: Identification-config projection error that stopped the loop.
    identification_error_pct: float
    projected_total_s: float
    actual_total_s: float

    @property
    def seqpoints(self) -> tuple[SelectedPoint, ...]:
        return self.selection.points

    def __len__(self) -> int:
        return len(self.selection)


class SeqPointSelector:
    """Identifies SeqPoints from one training epoch's trace."""

    METHOD = "seqpoint"

    def __init__(
        self,
        max_unique: int = 10,
        initial_bins: int = 5,
        error_threshold_pct: float = 1.0,
        max_bins: int | None = None,
    ):
        # Validate types eagerly: these kwargs arrive verbatim from
        # specs and the CLI, and a bad type must fail at construction
        # (a clean ConfigurationError) rather than mid-selection.
        for name, value in (
            ("max_unique", max_unique),
            ("initial_bins", initial_bins),
            ("max_bins", max_bins),
        ):
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                raise SelectionError(f"{name} must be an int, got {value!r}")
        if not isinstance(error_threshold_pct, (int, float)) or isinstance(
            error_threshold_pct, bool
        ):
            raise SelectionError(
                f"error_threshold_pct must be a number, "
                f"got {error_threshold_pct!r}"
            )
        if max_unique < 1:
            raise SelectionError("max_unique must be at least 1")
        if initial_bins < 1:
            raise SelectionError("initial_bins must be at least 1")
        if error_threshold_pct <= 0:
            raise SelectionError("error_threshold_pct must be positive")
        if max_bins is not None and max_bins < initial_bins:
            raise SelectionError("max_bins cannot be below initial_bins")
        self.max_unique = max_unique
        self.initial_bins = initial_bins
        self.error_threshold_pct = error_threshold_pct
        self.max_bins = max_bins

    def _all_unique(self, statistics: SlStatistics) -> Selection:
        points = tuple(
            SelectedPoint(record=stat.representative, weight=float(stat.iterations))
            for stat in statistics
        )
        return Selection(method=self.METHOD, points=points)

    def _evaluate(
        self, selection: Selection, actual_total_s: float
    ) -> tuple[float, float]:
        projected = project_logged_time(selection)
        return projected, percent_error(projected, actual_total_s)

    def select(self, trace: TrainingTrace | TraceFrame) -> SeqPointResult:
        """Run the full identification loop on ``trace``.

        Accepts a row-oriented trace or its columnar frame directly;
        the per-SL grouping is computed once per frame and shared with
        any other selector run on the same trace.
        """
        statistics = SlStatistics.from_trace(trace)
        actual = statistics.total_time_s

        if len(statistics) <= self.max_unique:
            selection = self._all_unique(statistics)
            projected, error = self._evaluate(selection, actual)
            return SeqPointResult(
                selection=selection,
                k=0,
                identification_error_pct=error,
                projected_total_s=projected,
                actual_total_s=actual,
            )

        ceiling = min(
            self.max_bins if self.max_bins is not None else len(statistics),
            len(statistics),
        )
        k = min(self.initial_bins, ceiling)
        while True:
            bins = bin_stats(statistics, k)
            selection = Selection(
                method=self.METHOD,
                points=tuple(select_from_bin(b) for b in bins),
            )
            projected, error = self._evaluate(selection, actual)
            if error < self.error_threshold_pct or k >= ceiling:
                return SeqPointResult(
                    selection=selection,
                    k=k,
                    identification_error_pct=error,
                    projected_total_s=projected,
                    actual_total_s=actual,
                )
            k += 1
