"""Per-sequence-length statistics of a training trace.

Step 1 of the paper's mechanism: "calculate statistic *stat* per unique
sequence length".  For each unique SL the epoch exercised we keep its
iteration count (the weight source), its mean runtime (the clustered
statistic), and a representative iteration record (the actual iteration
a profiler would re-run).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceError
from repro.train.trace import IterationRecord, TrainingTrace

__all__ = ["SlStat", "SlStatistics"]


@dataclass(frozen=True)
class SlStat:
    """Statistics of all iterations at one unique sequence length."""

    seq_len: int
    iterations: int
    mean_time_s: float
    total_time_s: float
    #: The logged iteration whose runtime is closest to the mean — the
    #: concrete iteration to re-execute when this SL is selected.
    representative: IterationRecord

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise TraceError(f"SL {self.seq_len}: no iterations")


@dataclass(frozen=True)
class SlStatistics:
    """All per-SL statistics of one epoch, ordered by sequence length."""

    stats: tuple[SlStat, ...]

    @classmethod
    def from_trace(cls, trace: TrainingTrace) -> "SlStatistics":
        if not trace.records:
            raise TraceError("cannot compute SL statistics of an empty trace")
        by_sl: dict[int, list[IterationRecord]] = {}
        for record in trace.records:
            by_sl.setdefault(record.seq_len, []).append(record)

        stats = []
        for seq_len in sorted(by_sl):
            records = by_sl[seq_len]
            total = sum(r.time_s for r in records)
            mean = total / len(records)
            representative = min(records, key=lambda r: abs(r.time_s - mean))
            stats.append(
                SlStat(
                    seq_len=seq_len,
                    iterations=len(records),
                    mean_time_s=mean,
                    total_time_s=total,
                    representative=representative,
                )
            )
        return cls(stats=tuple(stats))

    def __len__(self) -> int:
        return len(self.stats)

    def __iter__(self):
        return iter(self.stats)

    @property
    def total_time_s(self) -> float:
        return sum(stat.total_time_s for stat in self.stats)

    @property
    def total_iterations(self) -> int:
        return sum(stat.iterations for stat in self.stats)

    @property
    def min_seq_len(self) -> int:
        return self.stats[0].seq_len

    @property
    def max_seq_len(self) -> int:
        return self.stats[-1].seq_len

    def for_seq_len(self, seq_len: int) -> SlStat:
        for stat in self.stats:
            if stat.seq_len == seq_len:
                return stat
        raise TraceError(f"no iterations at sequence length {seq_len}")
