"""Per-sequence-length statistics of a training trace.

Step 1 of the paper's mechanism: "calculate statistic *stat* per unique
sequence length".  For each unique SL the epoch exercised we keep its
iteration count (the weight source), its mean runtime (the clustered
statistic), and a representative iteration record (the actual iteration
a profiler would re-run).

The computation is a vectorized group-by over the trace's columnar
frame (``np.unique`` + ``np.bincount``) and is memoised on the frame,
so a sweep of selectors over one trace pays for the grouping once.  The
accumulation order matches the original per-record scan, keeping every
statistic bit-identical to the interpreted implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import TraceError
from repro.train.frame import TraceFrame, as_frame
from repro.train.trace import IterationRecord, TrainingTrace

__all__ = ["SlStat", "SlStatistics"]


@dataclass(frozen=True)
class SlStat:
    """Statistics of all iterations at one unique sequence length."""

    seq_len: int
    iterations: int
    mean_time_s: float
    total_time_s: float
    #: The logged iteration whose runtime is closest to the mean — the
    #: concrete iteration to re-execute when this SL is selected.
    representative: IterationRecord

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise TraceError(f"SL {self.seq_len}: no iterations")


@dataclass(frozen=True)
class SlStatistics:
    """All per-SL statistics of one epoch, ordered by sequence length."""

    stats: tuple[SlStat, ...]

    @classmethod
    def from_trace(
        cls, trace: TrainingTrace | TraceFrame
    ) -> "SlStatistics":
        """Group a trace (or its frame) by unique sequence length."""
        frame = as_frame(trace)
        if len(frame) == 0:
            raise TraceError("cannot compute SL statistics of an empty trace")
        return frame.cached("sl_statistics", lambda: cls._from_frame(frame))

    @classmethod
    def _from_frame(cls, frame: TraceFrame) -> "SlStatistics":
        seq_lens, inverse, counts = np.unique(
            frame.seq_len, return_inverse=True, return_counts=True
        )
        inverse = inverse.reshape(-1)
        # bincount accumulates in array order, matching the sequential
        # per-group sums of the original scan bit for bit.
        totals = np.bincount(
            inverse, weights=frame.time_s, minlength=seq_lens.size
        )
        return cls.from_grouped(frame, seq_lens, counts, totals, inverse)

    @classmethod
    def from_grouped(
        cls,
        frame: TraceFrame,
        seq_lens: np.ndarray,
        counts: np.ndarray,
        totals: np.ndarray,
        inverse: np.ndarray,
    ) -> "SlStatistics":
        """Build statistics from an already computed grouping.

        The one representative-search implementation shared by the
        batch group-by above and the incremental accumulator
        (:class:`repro.stream.stats.StreamingSlStatistics`), so their
        asserted bit-identity cannot drift: ``seq_lens`` are the sorted
        unique SLs, ``counts``/``totals`` their per-group aggregates
        (accumulated in iteration order), and ``inverse`` maps each of
        ``frame``'s iterations onto its group.
        """
        times = frame.time_s
        means = totals / counts
        # Representative per SL: first record attaining the minimal
        # |time - mean| (ties resolved by iteration order, as min() did).
        deviation = np.abs(times - means[inverse])
        order = np.lexsort((np.arange(times.size), deviation, inverse))
        group_starts = np.searchsorted(
            inverse[order], np.arange(seq_lens.size)
        )
        representatives = order[group_starts]
        return cls(
            stats=tuple(
                SlStat(
                    seq_len=int(seq_lens[group]),
                    iterations=int(counts[group]),
                    mean_time_s=float(means[group]),
                    total_time_s=float(totals[group]),
                    representative=frame.record(int(representatives[group])),
                )
                for group in range(seq_lens.size)
            )
        )

    def __len__(self) -> int:
        return len(self.stats)

    def __iter__(self):
        return iter(self.stats)

    # -- column views (cached; SlStatistics is immutable) -------------

    @cached_property
    def seq_lens_column(self) -> np.ndarray:
        return np.fromiter(
            (stat.seq_len for stat in self.stats), np.int64, len(self.stats)
        )

    @cached_property
    def iterations_column(self) -> np.ndarray:
        return np.fromiter(
            (stat.iterations for stat in self.stats),
            np.int64,
            len(self.stats),
        )

    @property
    def total_time_s(self) -> float:
        return sum(stat.total_time_s for stat in self.stats)

    @property
    def total_iterations(self) -> int:
        return sum(stat.iterations for stat in self.stats)

    @property
    def min_seq_len(self) -> int:
        return self.stats[0].seq_len

    @property
    def max_seq_len(self) -> int:
        return self.stats[-1].seq_len

    def for_seq_len(self, seq_len: int) -> SlStat:
        for stat in self.stats:
            if stat.seq_len == seq_len:
                return stat
        raise TraceError(f"no iterations at sequence length {seq_len}")
