"""Contiguous sequence-length binning (step 2 of the paper's Fig 10).

SLs are binned into ``k`` buckets of equal SL-range width.  Contiguity
is the paper's deliberate design choice: nearby SLs have similar
execution profiles (§V-B), so a contiguous range is a meaningful
cluster without any feature engineering.  Bins that catch no observed
SL are dropped (they carry zero weight).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SelectionError
from repro.core.sl_stats import SlStat, SlStatistics

__all__ = ["Bin", "bin_stats", "bin_stats_equal_mass"]


@dataclass(frozen=True)
class Bin:
    """One contiguous SL range and the per-SL stats that fall in it."""

    lo: float
    hi: float
    stats: tuple[SlStat, ...]

    @property
    def iterations(self) -> int:
        """Bin size in iterations — the SeqPoint weight (step 4)."""
        return sum(stat.iterations for stat in self.stats)

    @property
    def total_time_s(self) -> float:
        return sum(stat.total_time_s for stat in self.stats)

    @property
    def mean_time_s(self) -> float:
        """Iteration-weighted average runtime — the selection target."""
        return self.total_time_s / self.iterations

    @property
    def seq_lens(self) -> tuple[int, ...]:
        return tuple(stat.seq_len for stat in self.stats)


def bin_stats(statistics: SlStatistics, k: int) -> list[Bin]:
    """Split the observed SL range into ``k`` equal-width bins.

    Returns only non-empty bins, in ascending SL order.
    """
    if k <= 0:
        raise SelectionError(f"bin count must be positive, got {k}")
    if len(statistics) == 0:
        raise SelectionError("cannot bin empty statistics")

    lo = statistics.min_seq_len
    hi = statistics.max_seq_len
    if lo == hi or k == 1:
        return [Bin(lo=float(lo), hi=float(hi), stats=tuple(statistics))]

    width = (hi - lo) / k
    # Vectorized bucket assignment over the per-SL column; the float
    # arithmetic matches the scalar `int((sl - lo) / width)` exactly.
    indices = np.minimum(
        ((statistics.seq_lens_column - lo) / width).astype(np.int64), k - 1
    )
    buckets: list[list[SlStat]] = [[] for _ in range(k)]
    for stat, index in zip(statistics, indices):
        buckets[index].append(stat)

    bins = []
    for index, bucket in enumerate(buckets):
        if not bucket:
            continue
        bins.append(
            Bin(
                lo=lo + index * width,
                hi=lo + (index + 1) * width,
                stats=tuple(bucket),
            )
        )
    return bins


def bin_stats_equal_mass(statistics: SlStatistics, k: int) -> list[Bin]:
    """Ablation alternative: bins holding equal *iteration* counts.

    Still contiguous in SL, but boundaries follow the iteration
    distribution's quantiles instead of equal SL-range widths.  The
    ablation benchmark compares this against the paper's equal-width
    choice.
    """
    if k <= 0:
        raise SelectionError(f"bin count must be positive, got {k}")
    if len(statistics) == 0:
        raise SelectionError("cannot bin empty statistics")

    stats = list(statistics)
    k = min(k, len(stats))
    total = statistics.total_iterations
    target = total / k

    bins: list[Bin] = []
    bucket: list[SlStat] = []
    mass = 0.0
    remaining_bins = k
    for index, stat in enumerate(stats):
        bucket.append(stat)
        mass += stat.iterations
        remaining_stats = len(stats) - index - 1
        # Close the bucket once it reaches its share, but never leave
        # more buckets to fill than stats remain to fill them with.
        if (
            mass >= target and remaining_bins > 1 and remaining_stats >= remaining_bins - 1
        ):
            bins.append(
                Bin(
                    lo=float(bucket[0].seq_len),
                    hi=float(bucket[-1].seq_len),
                    stats=tuple(bucket),
                )
            )
            bucket = []
            mass = 0.0
            remaining_bins -= 1
    if bucket:
        bins.append(
            Bin(
                lo=float(bucket[0].seq_len),
                hi=float(bucket[-1].seq_len),
                stats=tuple(bucket),
            )
        )
    return bins
