"""Projection of whole-run statistics from a selection (Equation 1).

Extensive statistics (total runtime, total instructions) project as the
weighted *sum* over selected points; ratio statistics (throughput, IPC)
as the weighted *average* — normalised by the sum of weights, as the
paper specifies under Equation 1.

Cross-configuration projection is the headline use: points identified
once (config #1) are re-measured on another configuration by running
just those iterations, and the weighted arithmetic projects full-run
time, throughput, and speedups there.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.selection import SelectedPoint, Selection
from repro.errors import ProjectionError
from repro.train.runner import TrainingRunSimulator

__all__ = [
    "project_total",
    "project_average",
    "project_logged_time",
    "project_epoch_time",
    "project_throughput",
    "uplift_pct",
    "project_uplift_pct",
]

PointStat = Callable[[SelectedPoint], float]


def _stat_column(selection: Selection, stat: PointStat) -> np.ndarray:
    """Evaluate ``stat`` per point into one float column."""
    return np.fromiter(
        (stat(point) for point in selection.points),
        np.float64,
        len(selection.points),
    )


def project_total(selection: Selection, stat: PointStat) -> float:
    """Weighted sum of ``stat`` over the selection (extensive stats)."""
    return float(_stat_column(selection, stat) @ selection.weights_column)


def project_logged_time(selection: Selection) -> float:
    """Equation 1 on the *logged* runtimes (the identification check).

    Pure column arithmetic on the selection's cached weight/time
    columns — the hot projection of the SeqPoint ``k``-growing loop.
    """
    return float(selection.times_column @ selection.weights_column)


def project_average(selection: Selection, stat: PointStat) -> float:
    """Weight-normalised projection (ratio stats such as IPC)."""
    total_weight = float(selection.weights_column.sum())
    if total_weight <= 0.0:
        raise ProjectionError("weights must sum to a positive value")
    return project_total(selection, stat) / total_weight


def _measure_on(point: SelectedPoint, runner: TrainingRunSimulator) -> float:
    return runner.measure_seq_len(point.seq_len, point.tgt_len)


def project_epoch_time(
    selection: Selection, runner: TrainingRunSimulator
) -> float:
    """Project total epoch time on ``runner``'s hardware configuration.

    Only the selected iterations are executed — this is the entire
    point of representative selection.
    """
    return project_total(selection, lambda point: _measure_on(point, runner))


def project_throughput(
    selection: Selection, runner: TrainingRunSimulator
) -> float:
    """Project training throughput (samples/s) on ``runner``'s config."""
    total_time = project_epoch_time(selection, runner)
    if total_time <= 0:
        raise ProjectionError("projected epoch time is non-positive")
    samples = selection.total_weight * runner.batching.batch_size
    return samples / total_time


def uplift_pct(base_throughput: float, target_throughput: float) -> float:
    """Percentage throughput uplift going from base to target."""
    if base_throughput <= 0:
        raise ProjectionError("base throughput must be positive")
    return (target_throughput / base_throughput - 1.0) * 100.0


def project_uplift_pct(
    selection: Selection,
    base_runner: TrainingRunSimulator,
    target_runner: TrainingRunSimulator,
) -> float:
    """Project the throughput uplift between two hardware configs.

    Both sides are projected from the same selection, mirroring how the
    paper evaluates speedup projections (Figs 15 and 16).
    """
    base = project_throughput(selection, base_runner)
    target = project_throughput(selection, target_runner)
    return uplift_pct(base, target)
