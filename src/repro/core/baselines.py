"""Baseline representative-iteration selectors (paper §VI-C).

The paper compares SeqPoint against four alternatives:

* ``frequent`` — the single most frequently occurring SL (what a random
  draw would most likely hit);
* ``median`` — the iteration with the median SL;
* ``worst`` — the single iteration with the worst-case projection
  error, bounding arbitrary single-iteration selection;
* ``prior`` — the sampling methodology of Zhu et al. [1]: profile a
  window of contiguous iterations after a fixed warmup, and scale the
  window's mean iteration time by the epoch's iteration count.

All return :class:`~repro.core.selection.Selection`, so every
projection utility applies uniformly.
"""

from __future__ import annotations

from repro.core.selection import SelectedPoint, Selection
from repro.core.sl_stats import SlStatistics
from repro.errors import SelectionError
from repro.train.trace import TrainingTrace

__all__ = [
    "FrequentSelector",
    "MedianSelector",
    "WorstSelector",
    "PriorSelector",
]


def _single_point(
    method: str, statistics: SlStatistics, seq_len: int
) -> Selection:
    stat = statistics.for_seq_len(seq_len)
    point = SelectedPoint(
        record=stat.representative,
        weight=float(statistics.total_iterations),
    )
    return Selection(method=method, points=(point,))


class FrequentSelector:
    """The most frequently occurring sequence length."""

    METHOD = "frequent"

    def select(self, trace: TrainingTrace) -> Selection:
        statistics = SlStatistics.from_trace(trace)
        best = max(statistics, key=lambda stat: stat.iterations)
        return _single_point(self.METHOD, statistics, best.seq_len)


class MedianSelector:
    """The iteration with the median sequence length."""

    METHOD = "median"

    def select(self, trace: TrainingTrace) -> Selection:
        statistics = SlStatistics.from_trace(trace)
        ordered = sorted(record.seq_len for record in trace.records)
        median_sl = ordered[len(ordered) // 2]
        return _single_point(self.METHOD, statistics, median_sl)


class WorstSelector:
    """The single SL with the worst-case epoch-time projection error.

    A bound on how badly an arbitrarily chosen iteration can represent
    the run (the paper's ``worst`` bars).
    """

    METHOD = "worst"

    def select(self, trace: TrainingTrace) -> Selection:
        statistics = SlStatistics.from_trace(trace)
        actual = statistics.total_time_s
        total_iterations = statistics.total_iterations

        def error_of(stat) -> float:
            # Projection error of re-running this SL's representative
            # iteration and scaling by the epoch's iteration count.
            return abs(stat.representative.time_s * total_iterations - actual)

        worst = max(statistics, key=error_of)
        return _single_point(self.METHOD, statistics, worst.seq_len)


class PriorSelector:
    """Contiguous-window sampling after warmup (Zhu et al. [1]).

    Every window iteration is profiled (the method is SL-oblivious), so
    the selection carries ``window`` points each weighted by
    ``epoch_iterations / window``.
    """

    METHOD = "prior"

    def __init__(self, warmup: int = 200, window: int = 50):
        if warmup < 0:
            raise SelectionError("warmup cannot be negative")
        if window <= 0:
            raise SelectionError("window must be positive")
        self.warmup = warmup
        self.window = window

    def select(self, trace: TrainingTrace) -> Selection:
        records = trace.records
        if not records:
            raise SelectionError("prior: empty trace")
        start = min(self.warmup, max(0, len(records) - self.window))
        picked = records[start:start + self.window]
        if not picked:
            raise SelectionError(
                f"prior: trace has {len(records)} iterations, none left "
                f"after warmup {self.warmup}"
            )
        weight = len(records) / len(picked)
        points = tuple(
            SelectedPoint(record=record, weight=weight) for record in picked
        )
        return Selection(
            method=self.METHOD, points=points, profiled_iterations=len(picked)
        )
