"""Baseline representative-iteration selectors (paper §VI-C).

The paper compares SeqPoint against four alternatives:

* ``frequent`` — the single most frequently occurring SL (what a random
  draw would most likely hit);
* ``median`` — the iteration with the median SL;
* ``worst`` — the single iteration with the worst-case projection
  error, bounding arbitrary single-iteration selection;
* ``prior`` — the sampling methodology of Zhu et al. [1]: profile a
  window of contiguous iterations after a fixed warmup, and scale the
  window's mean iteration time by the epoch's iteration count.

All selectors operate on the trace's columnar frame (and accept either
a :class:`TrainingTrace` or a :class:`TraceFrame` directly), so the
per-iteration work is vectorized and records materialise only for the
handful of selected points.  All return
:class:`~repro.core.selection.Selection`, so every projection utility
applies uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.core.selection import SelectedPoint, Selection
from repro.core.sl_stats import SlStatistics
from repro.errors import SelectionError
from repro.train.frame import TraceFrame, as_frame
from repro.train.trace import TrainingTrace

__all__ = [
    "FrequentSelector",
    "MedianSelector",
    "WorstSelector",
    "PriorSelector",
]


def _single_point(
    method: str, statistics: SlStatistics, seq_len: int
) -> Selection:
    stat = statistics.for_seq_len(seq_len)
    point = SelectedPoint(
        record=stat.representative,
        weight=float(statistics.total_iterations),
    )
    return Selection(method=method, points=(point,))


class FrequentSelector:
    """The most frequently occurring sequence length."""

    METHOD = "frequent"

    def select(self, trace: TrainingTrace | TraceFrame) -> Selection:
        statistics = SlStatistics.from_trace(trace)
        best = statistics.stats[int(np.argmax(statistics.iterations_column))]
        return _single_point(self.METHOD, statistics, best.seq_len)


class MedianSelector:
    """The iteration with the median sequence length."""

    METHOD = "median"

    def select(self, trace: TrainingTrace | TraceFrame) -> Selection:
        frame = as_frame(trace)
        statistics = SlStatistics.from_trace(frame)
        ordered = np.sort(frame.seq_len)
        median_sl = int(ordered[ordered.size // 2])
        return _single_point(self.METHOD, statistics, median_sl)


class WorstSelector:
    """The single SL with the worst-case epoch-time projection error.

    A bound on how badly an arbitrarily chosen iteration can represent
    the run (the paper's ``worst`` bars).
    """

    METHOD = "worst"

    def select(self, trace: TrainingTrace | TraceFrame) -> Selection:
        statistics = SlStatistics.from_trace(trace)
        actual = statistics.total_time_s
        total_iterations = statistics.total_iterations

        # Projection error of re-running each SL's representative
        # iteration and scaling by the epoch's iteration count.
        representative_times = np.fromiter(
            (stat.representative.time_s for stat in statistics),
            np.float64,
            len(statistics),
        )
        errors = np.abs(representative_times * total_iterations - actual)
        worst = statistics.stats[int(np.argmax(errors))]
        return _single_point(self.METHOD, statistics, worst.seq_len)


class PriorSelector:
    """Contiguous-window sampling after warmup (Zhu et al. [1]).

    Every window iteration is profiled (the method is SL-oblivious), so
    the selection carries ``window`` points each weighted by
    ``epoch_iterations / window``.
    """

    METHOD = "prior"

    def __init__(self, warmup: int = 200, window: int = 50):
        # Eager type checks: spec/CLI kwargs must fail at construction
        # with a clean error, not as a TypeError mid-selection.
        for name, value in (("warmup", warmup), ("window", window)):
            if not isinstance(value, int) or isinstance(value, bool):
                raise SelectionError(f"{name} must be an int, got {value!r}")
        if warmup < 0:
            raise SelectionError("warmup cannot be negative")
        if window <= 0:
            raise SelectionError("window must be positive")
        self.warmup = warmup
        self.window = window

    def select(self, trace: TrainingTrace | TraceFrame) -> Selection:
        frame = as_frame(trace)
        total = len(frame)
        if total == 0:
            raise SelectionError("prior: empty trace")
        start = min(self.warmup, max(0, total - self.window))
        stop = min(start + self.window, total)
        if stop <= start:
            raise SelectionError(
                f"prior: trace has {total} iterations, none left "
                f"after warmup {self.warmup}"
            )
        weight = total / (stop - start)
        points = tuple(
            SelectedPoint(record=frame.record(index), weight=weight)
            for index in range(start, stop)
        )
        return Selection(
            method=self.METHOD, points=points, profiled_iterations=stop - start
        )
