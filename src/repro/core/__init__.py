"""SeqPoint: representative-iteration selection for SQNNs (paper §V).

Pipeline (paper Fig 10): per-SL statistics from one logged epoch →
contiguous SL binning → per-bin representative whose runtime is closest
to the bin average → bin-size weights → weighted-sum projection, with
the bin count ``k`` grown until the identification error meets the
user's threshold.  Baselines (``frequent``/``median``/``worst``/
``prior``) and the k-means alternative of §VII-C live alongside.
"""

from repro.core.baselines import (
    FrequentSelector,
    MedianSelector,
    PriorSelector,
    WorstSelector,
)
from repro.core.binning import Bin, bin_stats
from repro.core.kmeans import KMeansSelector
from repro.core.projection import (
    project_average,
    project_epoch_time,
    project_logged_time,
    project_throughput,
    project_total,
    project_uplift_pct,
    uplift_pct,
)
from repro.core.selection import SelectedPoint, Selection
from repro.core.seqpoint import SeqPointResult, SeqPointSelector
from repro.core.sl_stats import SlStat, SlStatistics

__all__ = [
    "FrequentSelector",
    "MedianSelector",
    "PriorSelector",
    "WorstSelector",
    "Bin",
    "bin_stats",
    "KMeansSelector",
    "project_average",
    "project_epoch_time",
    "project_logged_time",
    "project_throughput",
    "project_total",
    "project_uplift_pct",
    "uplift_pct",
    "SelectedPoint",
    "Selection",
    "SeqPointResult",
    "SeqPointSelector",
    "SlStat",
    "SlStatistics",
]
