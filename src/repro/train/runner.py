"""Training-run simulator: epochs, autotune phase, evaluation phase.

Drives the iteration executor over a batching plan to produce a
:class:`~repro.train.trace.TrainingTrace`.  Reproduces the two
non-training phases the paper discusses and excludes from its
representative runs: the framework *autotune* pass (charged once per
new GEMM shape — expensive in the first epoch, free afterwards) and
the end-of-epoch *evaluation* pass (forward-only on a held-out set,
empirically 2-3% of epoch time).

The default epoch path is *shape-memoized and columnar*: per Key
Observation 4, every iteration with the same padded
``(batch, seq_len, tgt_len)`` shape performs identical work, so an
epoch walks the kernel schedule once per unique shape — O(unique SLs)
— and broadcasts the results into a
:class:`~repro.train.frame.TraceFrame` with vectorized column
operations.  Autotune charging follows first appearances (repeat
charges are exactly ``0.0`` in the per-iteration path) and
per-iteration log-normal noise is applied on top, so the produced trace
is bit-identical to the per-iteration reference path, which is kept as
``columnar=False`` for equivalence tests and benchmarks.

Optional multiplicative log-normal noise models run-to-run measurement
jitter on real hardware; it is off by default so tests are exact.

Orthogonally to the columnar *trace* layout, the kernel-walk itself has
two implementations: the default batched pipeline (columnar
:class:`~repro.models.plan.SchedulePlan` per shape, one vectorized
device call, vectorized autotune candidate racing) and the scalar
per-invocation reference selected with ``batched=False`` — also
bit-identical, and the baseline of ``benchmarks/bench_kernel_timing.py``.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import BatchingPolicy
from repro.data.dataset import SequenceDataset
from repro.errors import ConfigurationError
from repro.hw.device import GpuDevice
from repro.kernels.autotune import Autotuner
from repro.models.spec import IterationInputs, Model
from repro.train.frame import (
    NO_TGT,
    IterationProfile,
    TraceFrame,
    dedupe_shapes,
)
from repro.train.iteration import DEFAULT_HOST_OVERHEAD_S, IterationExecutor
from repro.train.trace import IterationRecord, TrainingTrace
from repro.util.rng import derive_seed, make_rng

__all__ = ["TrainingRunSimulator", "memoized_shape_walk"]


def memoized_shape_walk(
    seq_len: np.ndarray,
    tgt_len: np.ndarray,
    batch: int,
    run,
    on_result=None,
):
    """Walk unique ``(seq_len, tgt_len)`` shapes in first-appearance order.

    The shared core of shape-memoized simulation (training and
    inference): ``run`` executes one :class:`IterationInputs` and
    returns an :class:`~repro.train.iteration.IterationResult`;
    ``on_result`` (optional) observes each unique shape's inputs and
    result in epoch order — the autotune-charging hook.  Returns
    ``(time_s, profile_id, profiles)`` with the per-shape runtimes
    already broadcast to every iteration.
    """
    first_iterations, profile_id = dedupe_shapes(seq_len, tgt_len)
    base_time = np.empty(first_iterations.size, dtype=np.float64)
    profiles: list[IterationProfile] = []
    for iteration in first_iterations:
        inputs = IterationInputs(
            batch=batch,
            seq_len=int(seq_len[iteration]),
            tgt_len=(
                None
                if tgt_len[iteration] == NO_TGT
                else int(tgt_len[iteration])
            ),
        )
        result = run(inputs)
        if on_result is not None:
            on_result(inputs, result)
        base_time[len(profiles)] = result.time_s
        profiles.append(
            IterationProfile(
                launches=result.launches,
                counters=result.counters,
                # Copy: the executor memoises results, and the profile
                # pool must not alias its cache.
                group_times=dict(result.group_times),
                kernel_names=result.kernel_names,
            )
        )
    return base_time[profile_id], profile_id, tuple(profiles)


class TrainingRunSimulator:
    """Simulates training epochs of one model/dataset/device triple."""

    def __init__(
        self,
        model: Model,
        dataset: SequenceDataset,
        batching: BatchingPolicy,
        device: GpuDevice,
        eval_dataset: SequenceDataset | None = None,
        host_overhead_s: float = DEFAULT_HOST_OVERHEAD_S,
        noise_sigma: float = 0.0,
        seed: int = 0,
        noise_seed: int | None = None,
        batched: bool = True,
    ):
        if noise_sigma < 0:
            raise ConfigurationError("noise_sigma cannot be negative")
        self.model = model
        self.dataset = dataset
        self.batching = batching
        self.device = device
        self.eval_dataset = eval_dataset
        self.noise_sigma = noise_sigma
        self.seed = seed
        # Measurement jitter is a property of the physical run, not of
        # the data order: it gets its own seed so two runs of the same
        # epoch plan on different hardware have independent noise.
        self.noise_seed = seed if noise_seed is None else noise_seed
        # ``batched=False`` selects the scalar reference pipeline end to
        # end (per-invocation measurement loop and scalar autotune
        # candidate timing) — bit-identical, kept for equivalence tests
        # and benchmarks/bench_kernel_timing.py.
        self.executor = IterationExecutor(
            model, device, host_overhead_s, batched=batched
        )
        self._autotuner = Autotuner(device.config, batched=batched)
        # Iteration shapes whose GEMM shapes have all been charged:
        # re-charging would contribute exactly 0.0, so the columnar
        # path skips the whole charge loop for them.
        self._autotune_settled: set[tuple[int, int, int | None]] = set()

    def _noise(self, epoch: int, index: int) -> float:
        if self.noise_sigma == 0.0:
            return 1.0
        rng = make_rng(derive_seed(self.noise_seed, "noise", epoch, index))
        return float(rng.lognormal(mean=0.0, sigma=self.noise_sigma))

    def _noise_column(self, epoch: int, count: int) -> np.ndarray | None:
        """Per-iteration jitter factors for one epoch (None when off)."""
        if self.noise_sigma == 0.0:
            return None
        return np.fromiter(
            (self._noise(epoch, index) for index in range(count)),
            dtype=np.float64,
            count=count,
        )

    def _eval_phase_time(self, epoch: int = 0) -> float:
        """Evaluation-pass time after ``epoch``.

        The eval plan follows the batching policy at the epoch being
        simulated: policies whose order is epoch-dependent (shuffled,
        SortaGrad after epoch 0) regroup the held-out set each epoch,
        which changes batch padding and therefore eval time.
        """
        if self.eval_dataset is None:
            return 0.0
        plan = self.batching.plan_epoch(
            self.eval_dataset, epoch=epoch, seed=self.seed, drop_last=False
        )
        return sum(
            self.executor.run_forward(inputs).time_s for inputs in plan
        )

    def run_training(
        self, epochs: int, include_eval: bool = True
    ) -> list[TrainingTrace]:
        """Simulate several epochs (paper Fig 2's training-run structure).

        The autotune phase is charged only where shapes first appear —
        almost entirely in epoch 0 — and every epoch gets its own
        evaluation pass, as real training loops do.
        """
        if epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {epochs}")
        return [
            self.run_epoch(epoch=epoch, include_eval=include_eval)
            for epoch in range(epochs)
        ]

    def run_epoch(
        self,
        epoch: int = 0,
        include_eval: bool = True,
        *,
        columnar: bool = True,
    ) -> TrainingTrace:
        """Simulate one epoch and return its trace.

        ``columnar=False`` selects the per-iteration reference path; it
        produces a bit-identical trace and exists for equivalence tests
        and the ``bench_trace_columnar`` comparison.
        """
        if not columnar:
            return self._run_epoch_reference(epoch, include_eval)
        return TrainingTrace.from_frame(self.run_epoch_frame(epoch, include_eval))

    def run_epoch_frame(
        self, epoch: int = 0, include_eval: bool = True
    ) -> TraceFrame:
        """Simulate one epoch directly into a columnar frame.

        Kernel walks happen once per unique ``(seq_len, tgt_len)``
        shape, in first-appearance order so autotune accounting matches
        the per-iteration path exactly; runtimes are broadcast back to
        all iterations and noised per iteration.
        """
        seq_len, tgt_len = self.batching.plan_epoch_columns(
            self.dataset, epoch=epoch, seed=self.seed
        )
        count = int(seq_len.size)
        if count == 0:
            raise ConfigurationError(
                f"{self.dataset.name}: dataset too small for one "
                f"batch of {self.batching.batch_size}"
            )
        autotune_s = 0.0

        def charge_autotune(inputs: IterationInputs, result) -> None:
            nonlocal autotune_s
            shape_key = (inputs.batch, inputs.seq_len, inputs.tgt_len)
            if shape_key not in self._autotune_settled:
                for shape in result.gemm_shapes:
                    autotune_s += self._autotuner.charge(*shape)
                self._autotune_settled.add(shape_key)

        batch = self.batching.batch_size
        time_s, profile_id, profiles = memoized_shape_walk(
            seq_len, tgt_len, batch, self.executor.run, charge_autotune
        )
        noise = self._noise_column(epoch, count)
        if noise is not None:
            time_s = time_s * noise
        return TraceFrame(
            model_name=self.model.name,
            dataset_name=self.dataset.name,
            config_name=self.device.config.name,
            batch_size=batch,
            index=np.arange(count, dtype=np.int64),
            epoch=np.full(count, epoch, dtype=np.int64),
            seq_len=seq_len,
            tgt_len=tgt_len,
            time_s=time_s,
            profile_id=profile_id,
            profiles=profiles,
            autotune_s=autotune_s,
            eval_s=self._eval_phase_time(epoch) if include_eval else 0.0,
        )

    def _run_epoch_reference(
        self, epoch: int = 0, include_eval: bool = True
    ) -> TrainingTrace:
        """The pre-columnar per-iteration epoch loop, kept verbatim.

        Ground truth for the bit-identity guarantee of
        :meth:`run_epoch_frame` and the baseline of
        ``benchmarks/bench_trace_columnar.py``.
        """
        plan = self.batching.plan_epoch(self.dataset, epoch=epoch, seed=self.seed)
        if not plan:
            raise ConfigurationError(
                f"{self.dataset.name}: dataset too small for one "
                f"batch of {self.batching.batch_size}"
            )
        trace = TrainingTrace(
            model_name=self.model.name,
            dataset_name=self.dataset.name,
            config_name=self.device.config.name,
            batch_size=self.batching.batch_size,
        )
        for index, inputs in enumerate(plan):
            result = self.executor.run(inputs)
            for shape in result.gemm_shapes:
                trace.autotune_s += self._autotuner.charge(*shape)
            trace.records.append(
                IterationRecord(
                    index=index,
                    epoch=epoch,
                    seq_len=inputs.seq_len,
                    tgt_len=inputs.tgt_len,
                    time_s=result.time_s * self._noise(epoch, index),
                    launches=result.launches,
                    counters=result.counters,
                    group_times=result.group_times,
                    kernel_names=result.kernel_names,
                )
            )
        if include_eval:
            trace.eval_s = self._eval_phase_time(epoch)
        return trace

    def measure_seq_len(self, seq_len: int, tgt_len: int | None = None) -> float:
        """Runtime of a single iteration at ``seq_len`` on this device.

        This is the "profile only the SeqPoints" primitive: after
        identification, each selected SL is executed once per candidate
        hardware configuration.
        """
        inputs = IterationInputs(
            batch=self.batching.batch_size, seq_len=seq_len, tgt_len=tgt_len
        )
        return self.executor.run(inputs).time_s
