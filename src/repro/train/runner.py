"""Training-run simulator: epochs, autotune phase, evaluation phase.

Drives the iteration executor over a batching plan to produce a
:class:`~repro.train.trace.TrainingTrace`.  Reproduces the two
non-training phases the paper discusses and excludes from its
representative runs: the framework *autotune* pass (charged once per
new GEMM shape — expensive in the first epoch, free afterwards) and
the end-of-epoch *evaluation* pass (forward-only on a held-out set,
empirically 2-3% of epoch time).

Optional multiplicative log-normal noise models run-to-run measurement
jitter on real hardware; it is off by default so tests are exact.
"""

from __future__ import annotations

from repro.data.batching import BatchingPolicy
from repro.data.dataset import SequenceDataset
from repro.errors import ConfigurationError
from repro.hw.device import GpuDevice
from repro.kernels.autotune import Autotuner
from repro.models.spec import IterationInputs, Model
from repro.train.iteration import DEFAULT_HOST_OVERHEAD_S, IterationExecutor
from repro.train.trace import IterationRecord, TrainingTrace
from repro.util.rng import derive_seed, make_rng

__all__ = ["TrainingRunSimulator"]


class TrainingRunSimulator:
    """Simulates training epochs of one model/dataset/device triple."""

    def __init__(
        self,
        model: Model,
        dataset: SequenceDataset,
        batching: BatchingPolicy,
        device: GpuDevice,
        eval_dataset: SequenceDataset | None = None,
        host_overhead_s: float = DEFAULT_HOST_OVERHEAD_S,
        noise_sigma: float = 0.0,
        seed: int = 0,
        noise_seed: int | None = None,
    ):
        if noise_sigma < 0:
            raise ConfigurationError("noise_sigma cannot be negative")
        self.model = model
        self.dataset = dataset
        self.batching = batching
        self.device = device
        self.eval_dataset = eval_dataset
        self.noise_sigma = noise_sigma
        self.seed = seed
        # Measurement jitter is a property of the physical run, not of
        # the data order: it gets its own seed so two runs of the same
        # epoch plan on different hardware have independent noise.
        self.noise_seed = seed if noise_seed is None else noise_seed
        self.executor = IterationExecutor(model, device, host_overhead_s)
        self._autotuner = Autotuner(device.config)

    def _noise(self, epoch: int, index: int) -> float:
        if self.noise_sigma == 0.0:
            return 1.0
        rng = make_rng(derive_seed(self.noise_seed, "noise", epoch, index))
        return float(rng.lognormal(mean=0.0, sigma=self.noise_sigma))

    def _eval_phase_time(self) -> float:
        if self.eval_dataset is None:
            return 0.0
        plan = self.batching.plan_epoch(
            self.eval_dataset, epoch=0, seed=self.seed, drop_last=False
        )
        return sum(
            self.executor.run_forward(inputs).time_s for inputs in plan
        )

    def run_training(
        self, epochs: int, include_eval: bool = True
    ) -> list[TrainingTrace]:
        """Simulate several epochs (paper Fig 2's training-run structure).

        The autotune phase is charged only where shapes first appear —
        almost entirely in epoch 0 — and every epoch gets its own
        evaluation pass, as real training loops do.
        """
        if epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {epochs}")
        return [
            self.run_epoch(epoch=epoch, include_eval=include_eval)
            for epoch in range(epochs)
        ]

    def run_epoch(
        self, epoch: int = 0, include_eval: bool = True
    ) -> TrainingTrace:
        """Simulate one epoch and return its trace."""
        plan = self.batching.plan_epoch(self.dataset, epoch=epoch, seed=self.seed)
        if not plan:
            raise ConfigurationError(
                f"{self.dataset.name}: dataset too small for one "
                f"batch of {self.batching.batch_size}"
            )
        trace = TrainingTrace(
            model_name=self.model.name,
            dataset_name=self.dataset.name,
            config_name=self.device.config.name,
            batch_size=self.batching.batch_size,
        )
        for index, inputs in enumerate(plan):
            result = self.executor.run(inputs)
            for shape in result.gemm_shapes:
                trace.autotune_s += self._autotuner.charge(*shape)
            trace.records.append(
                IterationRecord(
                    index=index,
                    epoch=epoch,
                    seq_len=inputs.seq_len,
                    tgt_len=inputs.tgt_len,
                    time_s=result.time_s * self._noise(epoch, index),
                    launches=result.launches,
                    counters=result.counters,
                    group_times=result.group_times,
                    kernel_names=result.kernel_names,
                )
            )
        if include_eval:
            trace.eval_s = self._eval_phase_time()
        return trace

    def measure_seq_len(self, seq_len: int, tgt_len: int | None = None) -> float:
        """Runtime of a single iteration at ``seq_len`` on this device.

        This is the "profile only the SeqPoints" primitive: after
        identification, each selected SL is executed once per candidate
        hardware configuration.
        """
        inputs = IterationInputs(
            batch=self.batching.batch_size, seq_len=seq_len, tgt_len=tgt_len
        )
        return self.executor.run(inputs).time_s
