"""Columnar trace core: the canonical in-memory form of a trace.

SeqPoint's own premise (Key Observation 4) is that an epoch is dominated
by a small set of unique ``(batch, seq_len, tgt_len)`` shapes whose
iterations are bit-identical before measurement noise.  A
:class:`TraceFrame` exploits that twice:

* the *per-iteration* data that genuinely varies (index, epoch,
  sequence lengths, noised runtime) lives in parallel numpy columns, so
  every analysis (per-SL statistics, binning, histograms, projections)
  is a vectorized column operation instead of an interpreted scan of
  record objects;
* the *shape-invariant* payload (launch count, hardware counters,
  kernel-group times, kernel names) is stored once per unique shape in
  an :class:`IterationProfile` pool, with an integer ``profile_id``
  column mapping iterations onto it.

:class:`~repro.train.trace.TrainingTrace` and
:class:`~repro.train.trace.IterationRecord` remain as thin row-oriented
views for API compatibility; they materialise from a frame on demand.

Frames serialise to the binary columnar ``repro.training-trace.v3``
container by default — an mmap-able ``.npt`` file whose cold load is a
handful of zero-copy dtype views plus an O(unique shapes) profile-pool
rebuild, no per-row parsing — with the compact columnar v2 JSON
(``save(version=2)``, diffable) and legacy v1 row JSON still loading
transparently.  All three round-trip bit-exactly: v3 stores the raw
float64 column bytes, and JSON uses shortest-round-trip float repr.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, TypeVar

import numpy as np

from repro.errors import TraceError
from repro.hw.counters import CounterSet
from repro.util.npt import ColumnStore, is_npt, write_columns
from repro.util.serialize import dump_json, read_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.train.trace import IterationRecord, TrainingTrace

__all__ = [
    "IterationProfile",
    "TraceFrame",
    "as_frame",
    "dedupe_shapes",
    "SCHEMA_V1",
    "SCHEMA_V2",
    "SCHEMA_V3",
]

SCHEMA_V1 = "repro.training-trace.v1"
SCHEMA_V2 = "repro.training-trace.v2"
SCHEMA_V3 = "repro.training-trace.v3"

#: Sentinel in the ``tgt_len`` column for "no target side" (single-ended
#: networks such as DS2).
NO_TGT = -1

_COUNTER_FIELDS = tuple(f.name for f in dataclass_fields(CounterSet))

_T = TypeVar("_T")


@dataclass(frozen=True)
class IterationProfile:
    """Shape-invariant payload shared by all iterations of one shape.

    Everything here is fully determined by the iteration's padded input
    shape (before run-to-run noise), which is why one profile can back
    arbitrarily many iterations.
    """

    launches: int
    counters: CounterSet
    group_times: dict[str, float]
    kernel_names: frozenset[str]

    def dedup_key(self) -> tuple:
        """Hashable identity used to pool equal profiles."""
        return (
            self.launches,
            self.counters,
            tuple(sorted(self.group_times.items())),
            self.kernel_names,
        )


class TraceFrame:
    """Numpy-backed columnar representation of a training trace.

    Parallel columns (one entry per iteration): ``index``, ``epoch``,
    ``seq_len``, ``tgt_len`` (``NO_TGT`` where absent), ``time_s``, and
    ``profile_id`` into the :attr:`profiles` pool.  Per-counter and
    per-kernel-group columns are derived lazily from the pool by fancy
    indexing.  Frames are treated as immutable; derived results may be
    memoised on them via :meth:`cached`.
    """

    __slots__ = (
        "model_name",
        "dataset_name",
        "config_name",
        "batch_size",
        "autotune_s",
        "eval_s",
        "index",
        "epoch",
        "seq_len",
        "tgt_len",
        "time_s",
        "profile_id",
        "_profiles",
        "storage",
        "_source_records",
        "_memo",
    )

    def __init__(
        self,
        model_name: str,
        dataset_name: str,
        config_name: str,
        batch_size: int,
        index: np.ndarray,
        epoch: np.ndarray,
        seq_len: np.ndarray,
        tgt_len: np.ndarray,
        time_s: np.ndarray,
        profile_id: np.ndarray,
        profiles: "tuple[IterationProfile, ...] | Callable[[], list[IterationProfile]]",
        autotune_s: float = 0.0,
        eval_s: float = 0.0,
        source_records: tuple | None = None,
        storage: ColumnStore | None = None,
    ):
        if batch_size <= 0:
            raise TraceError("batch_size must be positive")
        self.model_name = model_name
        self.dataset_name = dataset_name
        self.config_name = config_name
        self.batch_size = batch_size
        self.autotune_s = autotune_s
        self.eval_s = eval_s
        self.index = np.asarray(index, dtype=np.int64)
        self.epoch = np.asarray(epoch, dtype=np.int64)
        self.seq_len = np.asarray(seq_len, dtype=np.int64)
        self.tgt_len = np.asarray(tgt_len, dtype=np.int64)
        self.time_s = np.asarray(time_s, dtype=np.float64)
        self.profile_id = np.asarray(profile_id, dtype=np.int64)
        # A zero-arg callable defers the pool (v3 binary loads pass a
        # thunk over the container's CSR columns); it materialises on
        # first touch via the ``profiles`` property.
        self._profiles = profiles if callable(profiles) else tuple(profiles)
        #: The mmap-backed column container this frame views (v3 loads
        #: only); pins the mapping for the frame's lifetime and reports
        #: the real on-disk footprint to the cache's byte accounting.
        self.storage = storage
        self._source_records = source_records
        self._memo: dict[str, Any] = {}
        n = self.index.size
        for name in ("epoch", "seq_len", "tgt_len", "time_s", "profile_id"):
            if getattr(self, name).size != n:
                raise TraceError(
                    f"column {name!r} has {getattr(self, name).size} entries, "
                    f"expected {n}"
                )
        if n:
            if self.time_s.min() <= 0.0:
                bad = int(self.index[int(np.argmin(self.time_s))])
                raise TraceError(f"iteration {bad}: non-positive time")
            lo, hi = int(self.profile_id.min()), int(self.profile_id.max())
            pool = None if callable(self._profiles) else len(self._profiles)
            if lo < 0 or (pool is not None and hi >= pool):
                raise TraceError(
                    f"profile_id range [{lo}, {hi}] outside the "
                    f"{pool}-entry profile pool"
                )

    # -- construction -------------------------------------------------

    @classmethod
    def from_records(
        cls,
        model_name: str,
        dataset_name: str,
        config_name: str,
        batch_size: int,
        records: "list[IterationRecord] | tuple[IterationRecord, ...]",
        autotune_s: float = 0.0,
        eval_s: float = 0.0,
    ) -> "TraceFrame":
        """Columnarise a row-oriented record list (the compat path)."""
        records = tuple(records)
        pool: dict[tuple, int] = {}
        profiles: list[IterationProfile] = []
        profile_id = np.empty(len(records), dtype=np.int64)
        for position, record in enumerate(records):
            profile = IterationProfile(
                launches=record.launches,
                counters=record.counters,
                # The pool owns its dict: later mutation of the source
                # record's group_times must not corrupt the profile.
                group_times=dict(record.group_times),
                kernel_names=record.kernel_names,
            )
            key = profile.dedup_key()
            pid = pool.get(key)
            if pid is None:
                pid = pool[key] = len(profiles)
                profiles.append(profile)
            profile_id[position] = pid
        n = len(records)
        return cls(
            model_name=model_name,
            dataset_name=dataset_name,
            config_name=config_name,
            batch_size=batch_size,
            index=np.fromiter((r.index for r in records), np.int64, n),
            epoch=np.fromiter((r.epoch for r in records), np.int64, n),
            seq_len=np.fromiter((r.seq_len for r in records), np.int64, n),
            tgt_len=np.fromiter(
                (NO_TGT if r.tgt_len is None else r.tgt_len for r in records),
                np.int64,
                n,
            ),
            time_s=np.fromiter((r.time_s for r in records), np.float64, n),
            profile_id=profile_id,
            profiles=tuple(profiles),
            autotune_s=autotune_s,
            eval_s=eval_s,
            source_records=records,
        )

    def slice(self, start: int, stop: int) -> "TraceFrame":
        """The sub-frame of iterations ``[start, stop)``.

        Columns are numpy views into this frame and the profile pool is
        shared, so slicing is O(1); one-off phase times stay with the
        parent (a slice is a window on the iteration stream, not a
        smaller run).
        """
        if not 0 <= start < stop <= len(self):
            raise TraceError(
                f"slice [{start}, {stop}) outside the "
                f"{len(self)}-iteration frame"
            )
        return TraceFrame(
            model_name=self.model_name,
            dataset_name=self.dataset_name,
            config_name=self.config_name,
            batch_size=self.batch_size,
            index=self.index[start:stop],
            epoch=self.epoch[start:stop],
            seq_len=self.seq_len[start:stop],
            tgt_len=self.tgt_len[start:stop],
            time_s=self.time_s[start:stop],
            profile_id=self.profile_id[start:stop],
            profiles=self._profiles,
            source_records=(
                None
                if self._source_records is None
                else self._source_records[start:stop]
            ),
            storage=self.storage,
        )

    def with_phases(self, autotune_s: float, eval_s: float) -> "TraceFrame":
        """A frame sharing these columns with different phase totals."""
        return TraceFrame(
            model_name=self.model_name,
            dataset_name=self.dataset_name,
            config_name=self.config_name,
            batch_size=self.batch_size,
            index=self.index,
            epoch=self.epoch,
            seq_len=self.seq_len,
            tgt_len=self.tgt_len,
            time_s=self.time_s,
            profile_id=self.profile_id,
            profiles=self._profiles,
            autotune_s=autotune_s,
            eval_s=eval_s,
            source_records=self._source_records,
            storage=self.storage,
        )

    # -- basic shape --------------------------------------------------

    @property
    def profiles(self) -> tuple[IterationProfile, ...]:
        """The interned profile pool, materialising a deferred one."""
        pool = self._profiles
        if callable(pool):
            pool = self._profiles = tuple(pool())
        return pool

    def __len__(self) -> int:
        return int(self.index.size)

    def __repr__(self) -> str:
        return (
            f"TraceFrame({self.model_name!r}, {self.dataset_name!r}, "
            f"{self.config_name!r}, iterations={len(self)}, "
            f"profiles={len(self.profiles)})"
        )

    def cached(self, key: str, build: Callable[[], _T]) -> _T:
        """Memoise ``build()`` on this (immutable) frame under ``key``."""
        if key not in self._memo:
            self._memo[key] = build()
        return self._memo[key]

    # -- aggregate statistics (vectorized) ----------------------------

    @property
    def total_time_s(self) -> float:
        """Training-iteration time (the paper's projected statistic)."""
        return float(self.time_s.sum())

    @property
    def wall_time_s(self) -> float:
        """Everything a stopwatch would see, including one-off phases."""
        return self.total_time_s + self.autotune_s + self.eval_s

    @property
    def samples(self) -> int:
        return len(self) * self.batch_size

    @property
    def throughput(self) -> float:
        """Training throughput in samples/s (the speedup statistic)."""
        total = self.total_time_s
        if total <= 0:
            raise TraceError("empty trace has no throughput")
        return self.samples / total

    def unique_seq_lens(self) -> list[int]:
        return self.cached(
            "unique_seq_lens", lambda: np.unique(self.seq_len).tolist()
        )

    def iteration_histogram(self) -> dict[int, int]:
        """Iteration count per unique sequence length (Fig 7 per-batch)."""
        def build() -> dict[int, int]:
            values, counts = np.unique(self.seq_len, return_counts=True)
            return dict(zip(values.tolist(), counts.tolist()))

        return self.cached("iteration_histogram", build)

    def indices_for_seq_len(self, seq_len: int) -> np.ndarray:
        return np.flatnonzero(self.seq_len == seq_len)

    # -- derived columns ----------------------------------------------

    @property
    def launches(self) -> np.ndarray:
        """Per-iteration kernel-launch counts."""
        def build() -> np.ndarray:
            per_profile = np.fromiter(
                (p.launches for p in self.profiles),
                np.int64,
                len(self.profiles),
            )
            return per_profile[self.profile_id]

        return self.cached("launches", build)

    @property
    def counter_names(self) -> tuple[str, ...]:
        return _COUNTER_FIELDS

    def counter_column(self, name: str) -> np.ndarray:
        """Per-iteration values of one hardware counter."""
        if name not in _COUNTER_FIELDS:
            raise TraceError(f"unknown counter {name!r}")

        def build() -> np.ndarray:
            per_profile = np.fromiter(
                (getattr(p.counters, name) for p in self.profiles),
                np.float64,
                len(self.profiles),
            )
            return per_profile[self.profile_id]

        return self.cached(f"counter:{name}", build)

    def counter_totals(self) -> CounterSet:
        """Whole-trace counter sums as one :class:`CounterSet`."""
        return CounterSet(
            **{
                name: float(self.counter_column(name).sum())
                for name in _COUNTER_FIELDS
            }
        )

    @property
    def groups(self) -> tuple[str, ...]:
        """All kernel-group names observed, sorted."""
        def build() -> tuple[str, ...]:
            names: set[str] = set()
            for profile in self.profiles:
                names.update(profile.group_times)
            return tuple(sorted(names))

        return self.cached("groups", build)

    def group_time_column(self, group: str) -> np.ndarray:
        """Per-iteration device seconds spent in one kernel group."""
        def build() -> np.ndarray:
            per_profile = np.fromiter(
                (p.group_times.get(group, 0.0) for p in self.profiles),
                np.float64,
                len(self.profiles),
            )
            return per_profile[self.profile_id]

        return self.cached(f"group:{group}", build)

    # -- row views ----------------------------------------------------

    def tgt_len_at(self, i: int) -> int | None:
        value = int(self.tgt_len[i])
        return None if value == NO_TGT else value

    def record(self, i: int) -> "IterationRecord":
        """Materialise one row as an :class:`IterationRecord` view.

        When the frame was columnarised from existing records the
        original objects are returned, preserving identity.
        """
        if self._source_records is not None:
            return self._source_records[i]
        from repro.train.trace import IterationRecord

        profile = self.profiles[int(self.profile_id[i])]
        return IterationRecord(
            index=int(self.index[i]),
            epoch=int(self.epoch[i]),
            seq_len=int(self.seq_len[i]),
            tgt_len=self.tgt_len_at(i),
            time_s=float(self.time_s[i]),
            launches=profile.launches,
            counters=profile.counters,
            # Each materialised record owns its dict: a caller mutating
            # one record must not reach siblings or the profile pool.
            group_times=dict(profile.group_times),
            kernel_names=profile.kernel_names,
        )

    def build_records(self) -> "list[IterationRecord]":
        """Materialise every row (the full row-oriented view)."""
        if self._source_records is not None:
            return list(self._source_records)
        return [self.record(i) for i in range(len(self))]

    def to_trace(self) -> "TrainingTrace":
        """Wrap this frame in the row-oriented compatibility view."""
        from repro.train.trace import TrainingTrace

        return TrainingTrace.from_frame(self)

    # -- persistence --------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """The columnar v2 document (without the schema stamp)."""
        return {
            "model_name": self.model_name,
            "dataset_name": self.dataset_name,
            "config_name": self.config_name,
            "batch_size": self.batch_size,
            "autotune_s": self.autotune_s,
            "eval_s": self.eval_s,
            "iterations": {
                "index": self.index.tolist(),
                "epoch": self.epoch.tolist(),
                "seq_len": self.seq_len.tolist(),
                "tgt_len": [
                    None if value == NO_TGT else value
                    for value in self.tgt_len.tolist()
                ],
                "time_s": self.time_s.tolist(),
                "profile": self.profile_id.tolist(),
            },
            "profiles": [
                {
                    "launches": profile.launches,
                    "counters": profile.counters.as_dict(),
                    "group_times": profile.group_times,
                    "kernel_names": sorted(profile.kernel_names),
                }
                for profile in self.profiles
            ],
        }

    def save(self, path: str | Path, *, version: int = 3) -> None:
        """Persist this frame as a trace artefact.

        Version 3 (the default) writes the binary columnar ``.npt``
        container; version 2 writes the diffable columnar JSON.  Both
        load back bit-identically via :meth:`load`.
        """
        if version == 3:
            self._save_npt(path)
        elif version == 2:
            dump_json(self.to_payload(), path, SCHEMA_V2)
        else:
            raise TraceError(f"unknown trace format version {version!r}")

    def _save_npt(self, path: str | Path) -> None:
        """Write the v3 binary container (columns + CSR profile pool).

        The profile pool is interned: group and kernel names live once
        in string tables in the header, and each profile's entries are
        integer ids in ragged CSR arrays.  Entries are stored sorted by
        name so a rebuilt pool iterates in the same order as a v2 JSON
        load (whose dicts come back in sorted-key order).
        """
        group_names = sorted({g for p in self.profiles for g in p.group_times})
        kernel_names = sorted({k for p in self.profiles for k in p.kernel_names})
        group_index = {name: i for i, name in enumerate(group_names)}
        kernel_index = {name: i for i, name in enumerate(kernel_names)}

        pool = len(self.profiles)
        launches = np.fromiter((p.launches for p in self.profiles), np.int64, pool)
        counters = np.array(
            [
                [getattr(p.counters, field) for field in _COUNTER_FIELDS]
                for p in self.profiles
            ],
            dtype=np.float64,
        ).reshape(pool, len(_COUNTER_FIELDS))

        group_offsets = np.zeros(pool + 1, dtype=np.int64)
        group_ids: list[int] = []
        group_values: list[float] = []
        kernel_offsets = np.zeros(pool + 1, dtype=np.int64)
        kernel_ids: list[int] = []
        for i, profile in enumerate(self.profiles):
            for name in sorted(profile.group_times):
                group_ids.append(group_index[name])
                group_values.append(profile.group_times[name])
            group_offsets[i + 1] = len(group_ids)
            for name in sorted(profile.kernel_names):
                kernel_ids.append(kernel_index[name])
            kernel_offsets[i + 1] = len(kernel_ids)

        meta = {
            "model_name": self.model_name,
            "dataset_name": self.dataset_name,
            "config_name": self.config_name,
            "batch_size": self.batch_size,
            "autotune_s": self.autotune_s,
            "eval_s": self.eval_s,
            "counter_fields": list(_COUNTER_FIELDS),
            "group_names": group_names,
            "kernel_names": kernel_names,
        }
        write_columns(
            path,
            SCHEMA_V3,
            meta,
            [
                ("index", self.index),
                ("epoch", self.epoch),
                ("seq_len", self.seq_len),
                ("tgt_len", self.tgt_len),
                ("time_s", self.time_s),
                ("profile_id", self.profile_id),
                ("profile_launches", launches),
                ("profile_counters", counters),
                ("profile_group_offsets", group_offsets),
                ("profile_group_ids", np.asarray(group_ids, dtype=np.int64)),
                ("profile_group_values", np.asarray(group_values, dtype=np.float64)),
                ("profile_kernel_offsets", kernel_offsets),
                ("profile_kernel_ids", np.asarray(kernel_ids, dtype=np.int64)),
            ],
        )

    @classmethod
    def _from_npt(cls, store: ColumnStore) -> "TraceFrame":
        """Rebuild a frame over a v3 container's zero-copy views.

        The six iteration columns are dtype views straight into the
        mmap, and the profile pool is *deferred*: a cold load touches
        no per-row or per-profile Python objects at all.  The pool
        (O(unique shapes), not O(rows)) materialises from the CSR
        columns on first access.
        """
        meta = store.meta
        counter_fields = meta["counter_fields"]
        group_names = meta["group_names"]
        kernel_names = meta["kernel_names"]
        launches = store.column("profile_launches")
        profile_id = store.column("profile_id")
        if profile_id.size and int(profile_id.max()) >= launches.size:
            raise TraceError(
                f"profile_id range outside the {launches.size}-entry "
                "profile pool"
            )

        def materialise() -> "list[IterationProfile]":
            counters = store.column("profile_counters")
            group_offsets = store.column("profile_group_offsets")
            group_ids = store.column("profile_group_ids")
            group_values = store.column("profile_group_values")
            kernel_offsets = store.column("profile_kernel_offsets")
            kernel_ids = store.column("profile_kernel_ids")
            profiles = []
            for i in range(launches.size):
                counter_set = CounterSet(
                    **dict(zip(counter_fields, counters[i].tolist()))
                )
                lo, hi = int(group_offsets[i]), int(group_offsets[i + 1])
                group_times = {
                    group_names[gid]: value
                    for gid, value in zip(
                        group_ids[lo:hi].tolist(), group_values[lo:hi].tolist()
                    )
                }
                lo, hi = int(kernel_offsets[i]), int(kernel_offsets[i + 1])
                profiles.append(
                    IterationProfile(
                        launches=int(launches[i]),
                        counters=counter_set,
                        group_times=group_times,
                        kernel_names=frozenset(
                            kernel_names[kid]
                            for kid in kernel_ids[lo:hi].tolist()
                        ),
                    )
                )
            return profiles

        return cls(
            model_name=meta["model_name"],
            dataset_name=meta["dataset_name"],
            config_name=meta["config_name"],
            batch_size=meta["batch_size"],
            index=store.column("index"),
            epoch=store.column("epoch"),
            seq_len=store.column("seq_len"),
            tgt_len=store.column("tgt_len"),
            time_s=store.column("time_s"),
            profile_id=profile_id,
            profiles=materialise,
            autotune_s=meta["autotune_s"],
            eval_s=meta["eval_s"],
            storage=store,
        )

    @classmethod
    def from_payload(cls, document: dict[str, Any]) -> "TraceFrame":
        """Rebuild a frame from a v2 document."""
        columns = document["iterations"]
        profiles = tuple(
            IterationProfile(
                launches=row["launches"],
                counters=CounterSet(**row["counters"]),
                group_times=dict(row["group_times"]),
                kernel_names=frozenset(row["kernel_names"]),
            )
            for row in document["profiles"]
        )
        tgt = [
            NO_TGT if value is None else value for value in columns["tgt_len"]
        ]
        return cls(
            model_name=document["model_name"],
            dataset_name=document["dataset_name"],
            config_name=document["config_name"],
            batch_size=document["batch_size"],
            index=np.asarray(columns["index"], dtype=np.int64),
            epoch=np.asarray(columns["epoch"], dtype=np.int64),
            seq_len=np.asarray(columns["seq_len"], dtype=np.int64),
            tgt_len=np.asarray(tgt, dtype=np.int64),
            time_s=np.asarray(columns["time_s"], dtype=np.float64),
            profile_id=np.asarray(columns["profile"], dtype=np.int64),
            profiles=profiles,
            autotune_s=document["autotune_s"],
            eval_s=document["eval_s"],
        )

    @classmethod
    def _from_v1_document(cls, document: dict[str, Any]) -> "TraceFrame":
        """Columnarise a legacy row-oriented v1 document.

        Rows rebuild into :class:`IterationRecord` views and delegate to
        :meth:`from_records`, so v1 loads share one pooling path.
        """
        from repro.train.trace import IterationRecord

        records = [
            IterationRecord(
                index=row["index"],
                epoch=row["epoch"],
                seq_len=row["seq_len"],
                tgt_len=row["tgt_len"],
                time_s=row["time_s"],
                launches=row["launches"],
                counters=CounterSet(**row["counters"]),
                group_times=dict(row["group_times"]),
                kernel_names=frozenset(row["kernel_names"]),
            )
            for row in document["records"]
        ]
        return cls.from_records(
            model_name=document["model_name"],
            dataset_name=document["dataset_name"],
            config_name=document["config_name"],
            batch_size=document["batch_size"],
            records=records,
            autotune_s=document["autotune_s"],
            eval_s=document["eval_s"],
        )

    @classmethod
    def load(cls, path: str | Path) -> "TraceFrame":
        """Load a trace artefact of any supported schema version.

        Binary v3 containers mmap and view (no row parsing); v2/v1
        JSON parse as before.  All versions produce equal frames.
        """
        if is_npt(path):
            store = ColumnStore(path)
            if store.schema != SCHEMA_V3:
                raise TraceError(
                    f"{Path(path)}: unknown binary trace schema "
                    f"{store.schema!r}; expected {SCHEMA_V3!r}"
                )
            return cls._from_npt(store)
        document = read_json(path)
        schema = document.get("schema")
        if schema == SCHEMA_V2:
            return cls.from_payload(document)
        if schema == SCHEMA_V1:
            return cls._from_v1_document(document)
        raise TraceError(
            f"{Path(path)}: unknown trace schema {schema!r}; expected "
            f"{SCHEMA_V2!r} or {SCHEMA_V1!r}"
        )


def dedupe_shapes(
    seq_len: np.ndarray, tgt_len: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Unique ``(seq_len, tgt_len)`` shapes in first-appearance order.

    The shared primitive of shape-memoized simulation: returns
    ``(first_iterations, profile_id)`` where ``first_iterations[j]`` is
    the iteration index at which unique shape ``j`` first appears
    (ascending, i.e. epoch order — autotune charges must accrue in this
    order to stay bit-identical to the per-iteration path) and
    ``profile_id[i]`` maps iteration ``i`` onto its shape.
    """
    shapes = np.stack([seq_len, tgt_len], axis=1)
    _, first_index, inverse = np.unique(
        shapes, axis=0, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1)
    # np.unique sorts lexicographically; re-rank by first appearance.
    appearance = np.argsort(first_index, kind="stable")
    rank = np.empty(appearance.size, dtype=np.int64)
    rank[appearance] = np.arange(appearance.size)
    return first_index[appearance], rank[inverse]


def as_frame(trace: "TraceFrame | TrainingTrace") -> TraceFrame:
    """Coerce a trace-like object to its columnar frame."""
    if isinstance(trace, TraceFrame):
        return trace
    frame = getattr(trace, "frame", None)
    if callable(frame):
        return frame()
    raise TypeError(
        f"expected a TraceFrame or TrainingTrace, got {type(trace).__name__}"
    )
