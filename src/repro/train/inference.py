"""Inference-run simulation (paper §VII-E).

The paper notes its insight carries to inference: sequence length
dictates per-request work there too, so binning SLs also characterises
serving runs.  :class:`InferenceRunSimulator` replays a request stream
(forward passes only, typically at small batch) and emits the same
:class:`~repro.train.trace.TrainingTrace` structure, so the entire
SeqPoint pipeline — selection, baselines, projection — applies to
inference without modification.
"""

from __future__ import annotations

from repro.data.batching import BatchingPolicy
from repro.data.dataset import SequenceDataset
from repro.errors import ConfigurationError
from repro.hw.device import GpuDevice
from repro.models.spec import Model
from repro.train.iteration import IterationExecutor
from repro.train.trace import IterationRecord, TrainingTrace
from repro.util.rng import derive_seed, make_rng

__all__ = ["InferenceRunSimulator"]

#: Serving dispatch is lighter than a training step's input pipeline.
DEFAULT_SERVING_OVERHEAD_S = 2e-3


class InferenceRunSimulator:
    """Simulates forward-only request processing of one model."""

    def __init__(
        self,
        model: Model,
        dataset: SequenceDataset,
        batching: BatchingPolicy,
        device: GpuDevice,
        host_overhead_s: float = DEFAULT_SERVING_OVERHEAD_S,
        noise_sigma: float = 0.0,
        seed: int = 0,
    ):
        if noise_sigma < 0:
            raise ConfigurationError("noise_sigma cannot be negative")
        self.model = model
        self.dataset = dataset
        self.batching = batching
        self.device = device
        self.noise_sigma = noise_sigma
        self.seed = seed
        self.executor = IterationExecutor(model, device, host_overhead_s)

    def _noise(self, index: int) -> float:
        if self.noise_sigma == 0.0:
            return 1.0
        rng = make_rng(derive_seed(self.seed, "inference-noise", index))
        return float(rng.lognormal(mean=0.0, sigma=self.noise_sigma))

    def run_pass(self, epoch: int = 0) -> TrainingTrace:
        """One pass over the request set; returns an inference trace.

        Characterisation uses full batches (serving replicates a fixed
        batch size); when the request set is smaller than one batch the
        ragged remainder is kept so tiny sets still produce a trace.
        """
        plan = self.batching.plan_epoch(
            self.dataset, epoch=epoch, seed=self.seed, drop_last=True
        )
        if not plan:
            plan = self.batching.plan_epoch(
                self.dataset, epoch=epoch, seed=self.seed, drop_last=False
            )
        if not plan:
            raise ConfigurationError(f"{self.dataset.name}: no requests to serve")
        trace = TrainingTrace(
            model_name=f"{self.model.name}-inference",
            dataset_name=self.dataset.name,
            config_name=self.device.config.name,
            batch_size=self.batching.batch_size,
        )
        for index, inputs in enumerate(plan):
            result = self.executor.run_forward(inputs)
            trace.records.append(
                IterationRecord(
                    index=index,
                    epoch=epoch,
                    seq_len=inputs.seq_len,
                    tgt_len=inputs.tgt_len,
                    time_s=result.time_s * self._noise(index),
                    launches=result.launches,
                    counters=result.counters,
                    group_times=result.group_times,
                    kernel_names=result.kernel_names,
                )
            )
        return trace

    def measure_seq_len(self, seq_len: int, tgt_len: int | None = None) -> float:
        """Forward latency of one batch at ``seq_len`` on this device."""
        from repro.models.spec import IterationInputs

        inputs = IterationInputs(
            batch=self.batching.batch_size, seq_len=seq_len, tgt_len=tgt_len
        )
        return self.executor.run_forward(inputs).time_s
