"""Inference-run simulation (paper §VII-E).

The paper notes its insight carries to inference: sequence length
dictates per-request work there too, so binning SLs also characterises
serving runs.  :class:`InferenceRunSimulator` replays a request stream
(forward passes only, typically at small batch) and emits the same
:class:`~repro.train.trace.TrainingTrace` structure, so the entire
SeqPoint pipeline — selection, baselines, projection — applies to
inference without modification.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import BatchingPolicy
from repro.data.dataset import SequenceDataset
from repro.errors import ConfigurationError
from repro.hw.device import GpuDevice
from repro.models.spec import IterationInputs, Model
from repro.train.frame import TraceFrame
from repro.train.iteration import IterationExecutor
from repro.train.runner import memoized_shape_walk
from repro.train.trace import IterationRecord, TrainingTrace
from repro.util.rng import derive_seed, make_rng

__all__ = ["InferenceRunSimulator"]

#: Serving dispatch is lighter than a training step's input pipeline.
DEFAULT_SERVING_OVERHEAD_S = 2e-3


class InferenceRunSimulator:
    """Simulates forward-only request processing of one model."""

    def __init__(
        self,
        model: Model,
        dataset: SequenceDataset,
        batching: BatchingPolicy,
        device: GpuDevice,
        host_overhead_s: float = DEFAULT_SERVING_OVERHEAD_S,
        noise_sigma: float = 0.0,
        seed: int = 0,
        batched: bool = True,
    ):
        if noise_sigma < 0:
            raise ConfigurationError("noise_sigma cannot be negative")
        self.model = model
        self.dataset = dataset
        self.batching = batching
        self.device = device
        self.noise_sigma = noise_sigma
        self.seed = seed
        # ``batched=False`` keeps the scalar per-invocation reference
        # measurement path (bit-identical; for equivalence tests).
        self.executor = IterationExecutor(
            model, device, host_overhead_s, batched=batched
        )

    def _noise(self, index: int) -> float:
        if self.noise_sigma == 0.0:
            return 1.0
        rng = make_rng(derive_seed(self.seed, "inference-noise", index))
        return float(rng.lognormal(mean=0.0, sigma=self.noise_sigma))

    def run_pass(
        self, epoch: int = 0, *, columnar: bool = True
    ) -> TrainingTrace:
        """One pass over the request set; returns an inference trace.

        Characterisation uses full batches (serving replicates a fixed
        batch size); when the request set is smaller than one batch the
        ragged remainder is kept so tiny sets still produce a trace.

        Like :meth:`TrainingRunSimulator.run_epoch`, the default path
        walks kernels once per unique shape and broadcasts into a
        columnar frame; ``columnar=False`` keeps the bit-identical
        per-request reference loop.
        """
        if columnar:
            seq_len, tgt_len = self.batching.plan_epoch_columns(
                self.dataset, epoch=epoch, seed=self.seed
            )
            if seq_len.size:
                return TrainingTrace.from_frame(
                    self._run_pass_frame(epoch, seq_len, tgt_len)
                )
            # Request set smaller than one batch: fall through to the
            # ragged-remainder path below.
        plan = self.batching.plan_epoch(
            self.dataset, epoch=epoch, seed=self.seed, drop_last=True
        )
        if not plan:
            plan = self.batching.plan_epoch(
                self.dataset, epoch=epoch, seed=self.seed, drop_last=False
            )
        if not plan:
            raise ConfigurationError(f"{self.dataset.name}: no requests to serve")
        trace = TrainingTrace(
            model_name=f"{self.model.name}-inference",
            dataset_name=self.dataset.name,
            config_name=self.device.config.name,
            batch_size=self.batching.batch_size,
        )
        for index, inputs in enumerate(plan):
            result = self.executor.run_forward(inputs)
            trace.records.append(
                IterationRecord(
                    index=index,
                    epoch=epoch,
                    seq_len=inputs.seq_len,
                    tgt_len=inputs.tgt_len,
                    time_s=result.time_s * self._noise(index),
                    launches=result.launches,
                    counters=result.counters,
                    group_times=result.group_times,
                    kernel_names=result.kernel_names,
                )
            )
        return trace

    def _run_pass_frame(
        self, epoch: int, seq_len: np.ndarray, tgt_len: np.ndarray
    ) -> TraceFrame:
        """Shape-memoized columnar pass over full request batches."""
        count = int(seq_len.size)
        time_s, profile_id, profiles = memoized_shape_walk(
            seq_len, tgt_len, self.batching.batch_size,
            self.executor.run_forward,
        )
        if self.noise_sigma:
            time_s = time_s * np.fromiter(
                (self._noise(index) for index in range(count)),
                dtype=np.float64,
                count=count,
            )
        return TraceFrame(
            model_name=f"{self.model.name}-inference",
            dataset_name=self.dataset.name,
            config_name=self.device.config.name,
            batch_size=self.batching.batch_size,
            index=np.arange(count, dtype=np.int64),
            epoch=np.full(count, epoch, dtype=np.int64),
            seq_len=seq_len,
            tgt_len=tgt_len,
            time_s=time_s,
            profile_id=profile_id,
            profiles=tuple(profiles),
        )

    def measure_seq_len(self, seq_len: int, tgt_len: int | None = None) -> float:
        """Forward latency of one batch at ``seq_len`` on this device."""
        inputs = IterationInputs(
            batch=self.batching.batch_size, seq_len=seq_len, tgt_len=tgt_len
        )
        return self.executor.run_forward(inputs).time_s
