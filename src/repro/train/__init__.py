"""Training-run simulation: epochs of iterations on a simulated GPU."""

from repro.train.iteration import IterationExecutor, IterationResult
from repro.train.runner import TrainingRunSimulator
from repro.train.trace import IterationRecord, TrainingTrace

__all__ = [
    "IterationExecutor",
    "IterationResult",
    "TrainingRunSimulator",
    "IterationRecord",
    "TrainingTrace",
]
