"""Training-run simulation: epochs of iterations on a simulated GPU."""

from repro.train.frame import IterationProfile, TraceFrame, as_frame
from repro.train.inference import InferenceRunSimulator
from repro.train.iteration import IterationExecutor, IterationResult
from repro.train.runner import TrainingRunSimulator
from repro.train.trace import IterationRecord, TrainingTrace

__all__ = [
    "IterationExecutor",
    "IterationProfile",
    "IterationResult",
    "InferenceRunSimulator",
    "TraceFrame",
    "TrainingRunSimulator",
    "IterationRecord",
    "TrainingTrace",
    "as_frame",
]
