"""Training trace: the logged record of a (simulated) training epoch.

This is the artefact the SeqPoint methodology consumes — per-iteration
sequence lengths and runtimes (step 1 of the paper's Fig 10 flowchart)
plus the counters and kernel statistics the characterisation figures
need.  Traces serialise to JSON so expensive epochs are generated once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import TraceError
from repro.hw.counters import CounterSet
from repro.util.serialize import dump_json, load_json

__all__ = ["IterationRecord", "TrainingTrace"]

_SCHEMA = "repro.training-trace.v1"


@dataclass(frozen=True)
class IterationRecord:
    """One training iteration as logged by the runner."""

    index: int
    epoch: int
    seq_len: int
    tgt_len: int | None
    time_s: float
    launches: int
    counters: CounterSet
    group_times: dict[str, float]
    kernel_names: frozenset[str]

    def __post_init__(self) -> None:
        if self.time_s <= 0:
            raise TraceError(f"iteration {self.index}: non-positive time")


@dataclass
class TrainingTrace:
    """An epoch (or more) of iteration records plus phase accounting."""

    model_name: str
    dataset_name: str
    config_name: str
    batch_size: int
    records: list[IterationRecord] = field(default_factory=list)
    #: One-off autotune cost (paper §IV-C2; excluded from projections).
    autotune_s: float = 0.0
    #: End-of-epoch evaluation phase (paper §IV-C1, the ~2-3%).
    eval_s: float = 0.0

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise TraceError("batch_size must be positive")

    def __len__(self) -> int:
        return len(self.records)

    @property
    def total_time_s(self) -> float:
        """Training-iteration time (the paper's projected statistic)."""
        return sum(record.time_s for record in self.records)

    @property
    def wall_time_s(self) -> float:
        """Everything a stopwatch would see, including one-off phases."""
        return self.total_time_s + self.autotune_s + self.eval_s

    @property
    def samples(self) -> int:
        return len(self.records) * self.batch_size

    @property
    def throughput(self) -> float:
        """Training throughput in samples/s (the speedup statistic)."""
        total = self.total_time_s
        if total <= 0:
            raise TraceError("empty trace has no throughput")
        return self.samples / total

    def seq_lens(self) -> list[int]:
        return [record.seq_len for record in self.records]

    def unique_seq_lens(self) -> list[int]:
        return sorted({record.seq_len for record in self.records})

    def iteration_histogram(self) -> dict[int, int]:
        """Iteration count per unique sequence length (Fig 7 per-batch)."""
        histogram: dict[int, int] = {}
        for record in self.records:
            histogram[record.seq_len] = histogram.get(record.seq_len, 0) + 1
        return histogram

    def records_for_seq_len(self, seq_len: int) -> list[IterationRecord]:
        return [r for r in self.records if r.seq_len == seq_len]

    # -- persistence -------------------------------------------------

    def save(self, path: str | Path) -> None:
        payload = {
            "model_name": self.model_name,
            "dataset_name": self.dataset_name,
            "config_name": self.config_name,
            "batch_size": self.batch_size,
            "autotune_s": self.autotune_s,
            "eval_s": self.eval_s,
            "records": [
                {
                    "index": r.index,
                    "epoch": r.epoch,
                    "seq_len": r.seq_len,
                    "tgt_len": r.tgt_len,
                    "time_s": r.time_s,
                    "launches": r.launches,
                    "counters": r.counters.as_dict(),
                    "group_times": r.group_times,
                    "kernel_names": sorted(r.kernel_names),
                }
                for r in self.records
            ],
        }
        dump_json(payload, path, _SCHEMA)

    @classmethod
    def load(cls, path: str | Path) -> "TrainingTrace":
        document = load_json(path, _SCHEMA)
        trace = cls(
            model_name=document["model_name"],
            dataset_name=document["dataset_name"],
            config_name=document["config_name"],
            batch_size=document["batch_size"],
            autotune_s=document["autotune_s"],
            eval_s=document["eval_s"],
        )
        for row in document["records"]:
            trace.records.append(
                IterationRecord(
                    index=row["index"],
                    epoch=row["epoch"],
                    seq_len=row["seq_len"],
                    tgt_len=row["tgt_len"],
                    time_s=row["time_s"],
                    launches=row["launches"],
                    counters=CounterSet(**row["counters"]),
                    group_times=dict(row["group_times"]),
                    kernel_names=frozenset(row["kernel_names"]),
                )
            )
        return trace
