"""Training trace: the logged record of a (simulated) training epoch.

This is the artefact the SeqPoint methodology consumes — per-iteration
sequence lengths and runtimes (step 1 of the paper's Fig 10 flowchart)
plus the counters and kernel statistics the characterisation figures
need.

Since the columnar refactor the canonical storage is the numpy-backed
:class:`~repro.train.frame.TraceFrame`; :class:`TrainingTrace` is the
row-oriented compatibility view over it.  A trace constructed from
records columnarises on demand; a trace constructed from a frame
materialises :class:`IterationRecord` rows only when ``.records`` is
actually touched.  Mutations of the record list are version-tracked so
the cached frame is rebuilt exactly when it could have gone stale.

Traces serialise to the compact columnar ``repro.training-trace.v2``
JSON schema (v1 files load transparently), so expensive epochs are
generated once.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.errors import TraceError
from repro.hw.counters import CounterSet
from repro.train.frame import SCHEMA_V1, TraceFrame
from repro.util.serialize import dump_json

__all__ = ["IterationRecord", "TrainingTrace"]


@dataclass(frozen=True)
class IterationRecord:
    """One training iteration as logged by the runner."""

    index: int
    epoch: int
    seq_len: int
    tgt_len: int | None
    time_s: float
    launches: int
    counters: CounterSet
    group_times: dict[str, float]
    kernel_names: frozenset[str]

    def __post_init__(self) -> None:
        if self.time_s <= 0:
            raise TraceError(f"iteration {self.index}: non-positive time")


class _RecordList(list):
    """A record list that version-stamps every mutation.

    :meth:`TrainingTrace.frame` compares the stamp against the one its
    cached frame was built from, so appends/clears through the public
    ``records`` list invalidate the columnar cache without any copying.
    """

    __slots__ = ("version",)

    def __init__(self, items: Iterable = ()):
        super().__init__(items)
        self.version = 0

    def _bump(self) -> None:
        self.version += 1


def _mutator(name):
    base = getattr(list, name)

    def wrapped(self, *args, **kwargs):
        self._bump()
        return base(self, *args, **kwargs)

    wrapped.__name__ = name
    return wrapped


for _name in (
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "__setitem__", "__delitem__", "__iadd__", "__imul__",
):
    setattr(_RecordList, _name, _mutator(_name))


class TrainingTrace:
    """An epoch (or more) of iteration records plus phase accounting.

    Thin row-oriented view over a columnar :class:`TraceFrame`; all
    aggregate statistics delegate to vectorized column operations.
    """

    def __init__(
        self,
        model_name: str,
        dataset_name: str,
        config_name: str,
        batch_size: int,
        records: Iterable[IterationRecord] | None = None,
        autotune_s: float = 0.0,
        eval_s: float = 0.0,
    ):
        if batch_size <= 0:
            raise TraceError("batch_size must be positive")
        self.model_name = model_name
        self.dataset_name = dataset_name
        self.config_name = config_name
        self.batch_size = batch_size
        #: One-off autotune cost (paper §IV-C2; excluded from projections).
        self.autotune_s = autotune_s
        #: End-of-epoch evaluation phase (paper §IV-C1, the ~2-3%).
        self.eval_s = eval_s
        self._records: _RecordList | None = _RecordList(records or ())
        self._frame: TraceFrame | None = None
        self._frame_version = -1

    @classmethod
    def from_frame(cls, frame: TraceFrame) -> "TrainingTrace":
        """Wrap a columnar frame without materialising any records."""
        trace = cls(
            model_name=frame.model_name,
            dataset_name=frame.dataset_name,
            config_name=frame.config_name,
            batch_size=frame.batch_size,
            autotune_s=frame.autotune_s,
            eval_s=frame.eval_s,
        )
        trace._records = None
        trace._frame = frame
        return trace

    # -- the two representations --------------------------------------

    @property
    def records(self) -> list[IterationRecord]:
        """Row-oriented view; materialised from the frame on first use."""
        if self._records is None:
            self._records = _RecordList(self._frame.build_records())
            self._frame_version = self._records.version
        return self._records

    @records.setter
    def records(self, records: Iterable[IterationRecord]) -> None:
        self._records = _RecordList(records)
        self._frame = None
        self._frame_version = -1

    def frame(self) -> TraceFrame:
        """The canonical columnar form, rebuilt only after mutations."""
        if self._records is None:
            frame = self._frame
        else:
            if (
                self._frame is None
                or self._frame_version != self._records.version
            ):
                self._frame = TraceFrame.from_records(
                    model_name=self.model_name,
                    dataset_name=self.dataset_name,
                    config_name=self.config_name,
                    batch_size=self.batch_size,
                    records=self._records,
                    autotune_s=self.autotune_s,
                    eval_s=self.eval_s,
                )
                self._frame_version = self._records.version
            frame = self._frame
        if frame.autotune_s != self.autotune_s or frame.eval_s != self.eval_s:
            frame = frame.with_phases(self.autotune_s, self.eval_s)
            self._frame = frame
        return frame

    def __len__(self) -> int:
        if self._records is not None:
            return len(self._records)
        return len(self._frame)

    def __repr__(self) -> str:
        return (
            f"TrainingTrace({self.model_name!r}, {self.dataset_name!r}, "
            f"{self.config_name!r}, iterations={len(self)})"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality, as the former dataclass provided."""
        if not isinstance(other, TrainingTrace):
            return NotImplemented
        return (
            self.model_name == other.model_name
            and self.dataset_name == other.dataset_name
            and self.config_name == other.config_name
            and self.batch_size == other.batch_size
            and self.autotune_s == other.autotune_s
            and self.eval_s == other.eval_s
            and self.records == other.records
        )

    __hash__ = None  # mutable, like the former (unhashable) dataclass

    # -- aggregate statistics (delegated to the columnar core) --------

    @property
    def total_time_s(self) -> float:
        """Training-iteration time (the paper's projected statistic)."""
        return self.frame().total_time_s

    @property
    def wall_time_s(self) -> float:
        """Everything a stopwatch would see, including one-off phases."""
        return self.total_time_s + self.autotune_s + self.eval_s

    @property
    def samples(self) -> int:
        return len(self) * self.batch_size

    @property
    def throughput(self) -> float:
        """Training throughput in samples/s (the speedup statistic)."""
        total = self.total_time_s
        if total <= 0:
            raise TraceError("empty trace has no throughput")
        return self.samples / total

    def seq_lens(self) -> list[int]:
        return self.frame().seq_len.tolist()

    def unique_seq_lens(self) -> list[int]:
        return self.frame().unique_seq_lens()

    def iteration_histogram(self) -> dict[int, int]:
        """Iteration count per unique sequence length (Fig 7 per-batch)."""
        return self.frame().iteration_histogram()

    def records_for_seq_len(self, seq_len: int) -> list[IterationRecord]:
        frame = self.frame()
        return [frame.record(int(i)) for i in frame.indices_for_seq_len(seq_len)]

    # -- persistence -------------------------------------------------

    def save(self, path: str | Path, *, version: int = 3) -> None:
        """Persist the trace; ``version=3`` (binary columnar) is default.

        ``version=2`` writes the columnar JSON schema (diffable);
        ``version=1`` writes the legacy row-oriented schema for
        interoperability with pre-columnar consumers.
        """
        if version in (2, 3):
            self.frame().save(path, version=version)
        elif version == 1:
            payload = {
                "model_name": self.model_name,
                "dataset_name": self.dataset_name,
                "config_name": self.config_name,
                "batch_size": self.batch_size,
                "autotune_s": self.autotune_s,
                "eval_s": self.eval_s,
                "records": [
                    {
                        "index": r.index,
                        "epoch": r.epoch,
                        "seq_len": r.seq_len,
                        "tgt_len": r.tgt_len,
                        "time_s": r.time_s,
                        "launches": r.launches,
                        "counters": r.counters.as_dict(),
                        "group_times": r.group_times,
                        "kernel_names": sorted(r.kernel_names),
                    }
                    for r in self.records
                ],
            }
            dump_json(payload, path, SCHEMA_V1)
        else:
            raise TraceError(f"unknown trace format version {version!r}")

    @classmethod
    def load(cls, path: str | Path) -> "TrainingTrace":
        """Load a v3 (binary), v2 (columnar), or v1 (row) artefact."""
        return cls.from_frame(TraceFrame.load(path))
