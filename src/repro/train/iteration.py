"""Iteration execution: lower, time, and account one training iteration.

The executor memoises by iteration inputs: per Key Observation 4, two
iterations with the same padded lengths perform identical work, so a
whole epoch only pays lowering cost once per unique (seq_len, tgt_len)
pair — that is what makes full-epoch simulation cheap enough to treat
as ground truth.

Two measurement paths exist:

* the default **batched** path compiles each schedule into a columnar
  :class:`~repro.models.plan.SchedulePlan` (through the process-wide
  :data:`~repro.models.plan.PLAN_CACHE`, so equal shapes are lowered
  once per process, not once per executor) and times it with a single
  vectorized :meth:`~repro.hw.device.GpuDevice.run_batch` call;
* the **scalar** reference path (``batched=False``) walks the merged
  schedule invocation by invocation, exactly as before the columnar
  refactor.

Both produce bit-identical :class:`IterationResult`\\ s — the batched
reductions replay the scalar loop's left-to-right accumulation — which
tests/test_plan_equivalence.py asserts across models, shapes, hardware
configurations, and noise seeds.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.hw.counters import CounterColumns, CounterSet
from repro.hw.device import GpuDevice
from repro.hw.timing import WorkBatch
from repro.models.plan import PLAN_CACHE, SchedulePlan, compile_plan
from repro.models.schedule import KernelSchedule
from repro.models.spec import IterationInputs, Model
from repro.util.stats import sequential_sum

__all__ = ["IterationExecutor", "IterationResult"]

#: Host-side framework overhead per iteration: input pipeline, session
#: dispatch, optimizer bookkeeping.  Fixed per iteration and hardware-
#: independent, so it dilutes device-side speedups for short sequences —
#: the reason per-SL sensitivity curves (paper Figs 13/14) rise with SL.
#: 25 ms matches TF1.x-era step overheads on these networks.
DEFAULT_HOST_OVERHEAD_S = 25e-3


@dataclass(frozen=True)
class IterationResult:
    """Everything the trace records about one executed iteration."""

    time_s: float
    launches: int
    counters: CounterSet
    #: Kernel-group name -> device seconds (Fig 6 / Fig 8 distribution).
    group_times: dict[str, float]
    #: Distinct kernel variants launched (Fig 5 statistic).
    kernel_names: frozenset[str]
    #: GEMM problem shapes, for autotune accounting.
    gemm_shapes: tuple[tuple[int, int, int], ...]


class IterationExecutor:
    """Runs iterations of one model on one device."""

    def __init__(
        self,
        model: Model,
        device: GpuDevice,
        host_overhead_s: float = DEFAULT_HOST_OVERHEAD_S,
        batched: bool = True,
    ):
        if host_overhead_s < 0:
            raise ValueError("host_overhead_s cannot be negative")
        self.model = model
        self.device = device
        self.host_overhead_s = host_overhead_s
        self.batched = batched
        self._train_cache: dict[tuple[int, int, int | None], IterationResult] = {}
        self._fwd_cache: dict[tuple[int, int, int | None], IterationResult] = {}

    def _key(self, inputs: IterationInputs) -> tuple[int, int, int | None]:
        return (inputs.batch, inputs.seq_len, inputs.tgt_len)

    def _measure(self, schedule: KernelSchedule) -> IterationResult:
        """Scalar reference: per-invocation measurement and accumulation."""
        time_s = self.host_overhead_s
        launches = 0
        counters = CounterSet.zero()
        group_times: dict[str, float] = {}
        names: set[str] = set()
        for invocation, count in schedule.merged():
            measurement = self.device.run(invocation.work)
            time_s += measurement.time_s * count
            launches += count
            counters = counters + measurement.counters.scaled(count)
            group_times[invocation.group] = (
                group_times.get(invocation.group, 0.0)
                + measurement.time_s * count
            )
            names.add(invocation.name)
        return IterationResult(
            time_s=time_s,
            launches=launches,
            counters=counters,
            group_times=group_times,
            kernel_names=frozenset(names),
            gemm_shapes=tuple(schedule.gemm_shapes()),
        )

    def _reduce_plan(
        self,
        plan: SchedulePlan,
        time_s: np.ndarray,
        counters: CounterColumns,
    ) -> IterationResult:
        """Fold one plan's per-kernel measurements into a result.

        Every reduction is a left fold in merged-entry order (via
        :func:`~repro.util.stats.sequential_sum`), replaying the scalar
        loop's accumulation bit for bit.
        """
        contrib = time_s * plan.counts
        group_times: dict[str, float] = {}
        for gid, group in enumerate(plan.groups):
            group_times[group] = sequential_sum(contrib[plan.group_id == gid])
        return IterationResult(
            time_s=sequential_sum(contrib, initial=self.host_overhead_s),
            launches=int(plan.counts.sum()),
            counters=counters.scaled(plan.counts).sum_sequential(),
            group_times=group_times,
            kernel_names=frozenset(plan.names),
            gemm_shapes=plan.gemm_shapes,
        )

    def _measure_plan(self, plan: SchedulePlan) -> IterationResult:
        """Batched path: one device call, columnar reductions."""
        measurement = self.device.run_batch(plan.work)
        return self._reduce_plan(plan, measurement.time_s, measurement.counters)

    def _plan_for(self, inputs: IterationInputs, kind: str) -> SchedulePlan:
        """This shape's compiled plan, through the process-wide cache.

        Models exposing a structural :meth:`plan_fingerprint` also
        qualify for the cross-process plan store (when one is attached
        to the cache): the fingerprint extends the model identity with
        everything else lowering depends on — pass kind, padded shape,
        and the hardware configuration.
        """
        config = self.device.config
        key = (
            self.model.plan_key(),
            kind,
            inputs.batch,
            inputs.seq_len,
            inputs.tgt_len,
            config,
        )
        model_fingerprint = self.model.plan_fingerprint()
        fingerprint = None
        if model_fingerprint is not None:
            fingerprint = {
                "model": model_fingerprint,
                "kind": kind,
                "batch": inputs.batch,
                "seq_len": inputs.seq_len,
                "tgt_len": inputs.tgt_len,
                "config": dataclasses.asdict(config),
            }
        lower = (
            self.model.lower_iteration
            if kind == "train"
            else self.model.lower_forward
        )
        return PLAN_CACHE.get_or_compile(
            key,
            lambda: compile_plan(lower(inputs, config)),
            fingerprint=fingerprint,
        )

    def run(self, inputs: IterationInputs) -> IterationResult:
        """One full training iteration (forward + backward + update)."""
        key = self._key(inputs)
        if key not in self._train_cache:
            if self.batched:
                result = self._measure_plan(self._plan_for(inputs, "train"))
            else:
                result = self._measure(
                    self.model.lower_iteration(inputs, self.device.config)
                )
            self._train_cache[key] = result
        return self._train_cache[key]

    def run_forward(self, inputs: IterationInputs) -> IterationResult:
        """One forward-only (evaluation) pass."""
        key = self._key(inputs)
        if key not in self._fwd_cache:
            if self.batched:
                result = self._measure_plan(self._plan_for(inputs, "forward"))
            else:
                result = self._measure(
                    self.model.lower_forward(inputs, self.device.config)
                )
            self._fwd_cache[key] = result
        return self._fwd_cache[key]

    def run_forward_unique(
        self, inputs_seq: Sequence[IterationInputs]
    ) -> list[IterationResult]:
        """Forward results for many shapes, one device call for the lot.

        The serving fast path's entry point: every shape missing from
        the forward memo is lowered (through the plan cache), the
        missing plans' work columns are stacked with
        :meth:`~repro.hw.timing.WorkBatch.concat`, and one
        :meth:`~repro.hw.device.GpuDevice.run_batch` times them all.
        The timing engine is purely row-wise and per-plan reductions
        fold exactly the rows that plan contributed, so every cached
        result is bit-identical to a separate :meth:`run_forward` call —
        asserted in ``tests/test_plan_equivalence.py``.

        Shapes are processed in first-appearance order; the scalar
        reference path (``batched=False``) simply defers to
        :meth:`run_forward` per shape.
        """
        missing: list[tuple[tuple[int, int, int | None], IterationInputs]] = []
        queued: set[tuple[int, int, int | None]] = set()
        for inputs in inputs_seq:
            key = self._key(inputs)
            if key not in self._fwd_cache and key not in queued:
                queued.add(key)
                missing.append((key, inputs))
        if not self.batched:
            for _, inputs in missing:
                self.run_forward(inputs)
        elif len(missing) == 1:
            self.run_forward(missing[0][1])
        elif missing:
            plans = [self._plan_for(inputs, "forward") for _, inputs in missing]
            measurement = self.device.run_batch(
                WorkBatch.concat([plan.work for plan in plans])
            )
            offset = 0
            for (key, _), plan in zip(missing, plans):
                upper = offset + len(plan)
                self._fwd_cache[key] = self._reduce_plan(
                    plan,
                    measurement.time_s[offset:upper],
                    measurement.counters.rows(offset, upper),
                )
                offset = upper
        return [self._fwd_cache[self._key(inputs)] for inputs in inputs_seq]
