"""Iteration execution: lower, time, and account one training iteration.

The executor memoises by iteration inputs: per Key Observation 4, two
iterations with the same padded lengths perform identical work, so a
whole epoch only pays lowering cost once per unique (seq_len, tgt_len)
pair — that is what makes full-epoch simulation cheap enough to treat
as ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.counters import CounterSet
from repro.hw.device import GpuDevice
from repro.models.schedule import KernelSchedule
from repro.models.spec import IterationInputs, Model

__all__ = ["IterationExecutor", "IterationResult"]

#: Host-side framework overhead per iteration: input pipeline, session
#: dispatch, optimizer bookkeeping.  Fixed per iteration and hardware-
#: independent, so it dilutes device-side speedups for short sequences —
#: the reason per-SL sensitivity curves (paper Figs 13/14) rise with SL.
#: 25 ms matches TF1.x-era step overheads on these networks.
DEFAULT_HOST_OVERHEAD_S = 25e-3


@dataclass(frozen=True)
class IterationResult:
    """Everything the trace records about one executed iteration."""

    time_s: float
    launches: int
    counters: CounterSet
    #: Kernel-group name -> device seconds (Fig 6 / Fig 8 distribution).
    group_times: dict[str, float]
    #: Distinct kernel variants launched (Fig 5 statistic).
    kernel_names: frozenset[str]
    #: GEMM problem shapes, for autotune accounting.
    gemm_shapes: tuple[tuple[int, int, int], ...]


class IterationExecutor:
    """Runs iterations of one model on one device."""

    def __init__(
        self,
        model: Model,
        device: GpuDevice,
        host_overhead_s: float = DEFAULT_HOST_OVERHEAD_S,
    ):
        if host_overhead_s < 0:
            raise ValueError("host_overhead_s cannot be negative")
        self.model = model
        self.device = device
        self.host_overhead_s = host_overhead_s
        self._train_cache: dict[tuple[int, int, int | None], IterationResult] = {}
        self._fwd_cache: dict[tuple[int, int, int | None], IterationResult] = {}

    def _key(self, inputs: IterationInputs) -> tuple[int, int, int | None]:
        return (inputs.batch, inputs.seq_len, inputs.tgt_len)

    def _measure(self, schedule: KernelSchedule) -> IterationResult:
        time_s = self.host_overhead_s
        launches = 0
        counters = CounterSet.zero()
        group_times: dict[str, float] = {}
        names: set[str] = set()
        for invocation, count in schedule.merged():
            measurement = self.device.run(invocation.work)
            time_s += measurement.time_s * count
            launches += count
            counters = counters + measurement.counters.scaled(count)
            group_times[invocation.group] = (
                group_times.get(invocation.group, 0.0)
                + measurement.time_s * count
            )
            names.add(invocation.name)
        return IterationResult(
            time_s=time_s,
            launches=launches,
            counters=counters,
            group_times=group_times,
            kernel_names=frozenset(names),
            gemm_shapes=tuple(schedule.gemm_shapes()),
        )

    def run(self, inputs: IterationInputs) -> IterationResult:
        """One full training iteration (forward + backward + update)."""
        key = self._key(inputs)
        if key not in self._train_cache:
            schedule = self.model.lower_iteration(inputs, self.device.config)
            self._train_cache[key] = self._measure(schedule)
        return self._train_cache[key]

    def run_forward(self, inputs: IterationInputs) -> IterationResult:
        """One forward-only (evaluation) pass."""
        key = self._key(inputs)
        if key not in self._fwd_cache:
            schedule = self.model.lower_forward(inputs, self.device.config)
            self._fwd_cache[key] = self._measure(schedule)
        return self._fwd_cache[key]
