"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type to handle any library
failure while letting genuine bugs (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed with invalid or inconsistent parameters."""


class LoweringError(ReproError):
    """A model could not be lowered to a kernel sequence."""


class KernelSelectionError(ReproError):
    """No kernel variant in the registry can execute the requested shape."""


class TraceError(ReproError):
    """A training trace is missing data required by an analysis."""


class StorageError(ReproError):
    """A binary storage artefact is malformed, truncated, or mis-typed."""


class SelectionError(ReproError):
    """Representative-iteration selection failed (e.g. empty trace)."""


class ProjectionError(ReproError):
    """A statistic could not be projected from selected iterations."""
