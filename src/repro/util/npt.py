"""Binary columnar container: mmap-able numpy column blobs.

The ``.npt`` layout backs the v3 trace schema and the on-disk plan
store.  A file is::

    bytes 0..7    magic ``b"REPRONPT"``
    bytes 8..15   header length (unsigned little-endian 64-bit)
    header        UTF-8 JSON: ``{"schema", "meta", "columns": [...]}``
    padding       zeros up to the next 64-byte boundary
    data          raw column blobs, each 64-byte aligned

Each column descriptor records ``name``, ``dtype`` (a numpy dtype
string), ``shape``, ``offset`` (relative to the start of the data
section), and ``nbytes``.  A cold load is therefore one ``mmap`` plus a
dtype view per column — no row parsing, no copies — and concurrent
readers of one file share page cache instead of private parsed copies.
Blobs are written in C order, so every view is contiguous.

``meta`` carries the caller's small JSON payload (scalar fields, string
tables); anything large belongs in a column.
"""

from __future__ import annotations

import json
import mmap
import struct
from collections.abc import Sequence
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import StorageError

__all__ = ["MAGIC", "ColumnStore", "is_npt", "write_columns"]

MAGIC = b"REPRONPT"

#: Blob alignment: one cache line, and a multiple of every numpy
#: itemsize we store, so views never straddle element boundaries.
_ALIGN = 64

_PREFIX = struct.Struct("<Q")


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def write_columns(
    path: str | Path,
    schema: str,
    meta: dict[str, Any],
    columns: Sequence[tuple[str, np.ndarray]],
) -> None:
    """Write named arrays (plus ``meta``) as one ``.npt`` container.

    Not atomic: callers that publish into shared directories stage to a
    temp name and ``os.replace`` (the trace cache and plan store do).
    """
    arrays = [(name, np.ascontiguousarray(array)) for name, array in columns]
    descriptors = []
    offset = 0
    for name, array in arrays:
        offset = _aligned(offset)
        descriptors.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": int(array.nbytes),
            }
        )
        offset += int(array.nbytes)
    header = json.dumps(
        {"schema": schema, "meta": meta, "columns": descriptors},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    data_start = _aligned(len(MAGIC) + _PREFIX.size + len(header))

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("wb") as handle:
        handle.write(MAGIC)
        handle.write(_PREFIX.pack(len(header)))
        handle.write(header)
        position = len(MAGIC) + _PREFIX.size + len(header)
        handle.write(b"\x00" * (data_start - position))
        position = data_start
        for descriptor, (_, array) in zip(descriptors, arrays):
            blob_start = data_start + descriptor["offset"]
            handle.write(b"\x00" * (blob_start - position))
            handle.write(array.tobytes())
            position = blob_start + descriptor["nbytes"]


def is_npt(path: str | Path) -> bool:
    """Whether ``path`` starts with the ``.npt`` magic bytes."""
    try:
        with Path(path).open("rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


class ColumnStore:
    """A read-only mmap view over one ``.npt`` container.

    Columns come back as zero-copy :func:`numpy.frombuffer` views that
    pin the mapping through their ``.base`` chain, so a column (and any
    frame built over it) stays valid after the store goes out of scope
    — and, on POSIX, even after the backing file is unlinked.
    """

    __slots__ = ("path", "schema", "meta", "nbytes", "_mmap", "_columns", "_data_start")

    def __init__(self, path: str | Path):
        self.path = Path(path)
        with self.path.open("rb") as handle:
            try:
                self._mmap = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError:
                raise StorageError(f"{self.path}: empty file is not a column container") from None
        self.nbytes = len(self._mmap)
        prefix_end = len(MAGIC) + _PREFIX.size
        if self.nbytes < prefix_end or self._mmap[: len(MAGIC)] != MAGIC:
            raise StorageError(f"{self.path}: not a column container (bad magic)")
        (header_nbytes,) = _PREFIX.unpack_from(self._mmap, len(MAGIC))
        if prefix_end + header_nbytes > self.nbytes:
            raise StorageError(f"{self.path}: truncated header")
        try:
            header = json.loads(self._mmap[prefix_end : prefix_end + header_nbytes])
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StorageError(f"{self.path}: malformed header: {exc}") from None
        self.schema = header.get("schema")
        self.meta = header.get("meta", {})
        self._columns = {descriptor["name"]: descriptor for descriptor in header["columns"]}
        self._data_start = _aligned(prefix_end + header_nbytes)
        for descriptor in self._columns.values():
            end = self._data_start + descriptor["offset"] + descriptor["nbytes"]
            if end > self.nbytes:
                raise StorageError(
                    f"{self.path}: column {descriptor['name']!r} extends past end of file"
                )

    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    def column(self, name: str) -> np.ndarray:
        """The named column as a zero-copy, read-only view."""
        descriptor = self._columns.get(name)
        if descriptor is None:
            raise StorageError(f"{self.path}: no column {name!r}")
        dtype = np.dtype(descriptor["dtype"])
        shape = tuple(descriptor["shape"])
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        view = np.frombuffer(
            self._mmap,
            dtype=dtype,
            count=count,
            offset=self._data_start + descriptor["offset"],
        )
        return view.reshape(shape)

    def __repr__(self) -> str:
        return f"ColumnStore({str(self.path)!r}, schema={self.schema!r}, nbytes={self.nbytes})"
