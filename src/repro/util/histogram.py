"""Log-bucketed latency histograms, import-light.

:class:`LatencyHistogram` started life in :mod:`repro.serve.metrics`,
but importing anything under ``repro.serve`` executes the package
``__init__`` and with it the whole HTTP daemon.  Library code that only
wants a percentile summary — the traffic simulator's SLO snapshots, for
one — imports from here instead; :mod:`repro.serve.metrics` re-exports
these names unchanged, so service code keeps its spelling.

The histogram is a fixed set of logarithmic buckets (100 µs up to
~2 min) with exact count/sum accounting and interpolated percentile
estimates — cheap enough to update on every request under a lock,
compact enough to serialize into every ``/stats`` response.
:meth:`LatencyHistogram.observe_many` is the columnar twin of
:meth:`~LatencyHistogram.observe`: one ``np.digitize`` + ``bincount``
per chunk, with the running sum continued as a strict left fold so the
accumulated state stays bit-identical to observing value by value.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any

import numpy as np

__all__ = ["LatencyHistogram", "percentile"]

#: Bucket upper bounds in seconds: 1e-4 .. ~134s, doubling.
_BUCKET_BOUNDS = tuple(1e-4 * 2**i for i in range(21))
_BOUNDS_ARRAY = np.asarray(_BUCKET_BOUNDS, dtype=np.float64)


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted sample list (q in [0, 100])."""
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0 <= q <= 100:
        raise ValueError(f"q must lie in [0, 100], got {q}")
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * q // 100)) if q else 1
    return ordered[int(rank) - 1]


class LatencyHistogram:
    """Log-bucketed latency accumulator with percentile estimates."""

    __slots__ = ("_lock", "_counts", "count", "sum_s", "max_s")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # One overflow bucket past the last bound.
        self._counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.sum_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            seconds = 0.0
        index = bisect_left(_BUCKET_BOUNDS, seconds)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.sum_s += seconds
            if seconds > self.max_s:
                self.max_s = seconds

    def observe_many(self, seconds: np.ndarray) -> None:
        """Absorb a whole latency column at once.

        Bit-identical to looping :meth:`observe` over the column:
        ``digitize(..., right=True)`` is ``bisect_left`` row-wise, and
        the running sum continues as a strict left fold (the existing
        total rides as the cumsum's first element), so every piece of
        accumulated state matches the scalar loop's exactly.
        """
        values = np.asarray(seconds, dtype=np.float64).reshape(-1)
        if values.size == 0:
            return
        clamped = np.maximum(values, 0.0)
        buckets = np.bincount(
            np.digitize(clamped, _BOUNDS_ARRAY, right=True),
            minlength=len(self._counts),
        )
        with self._lock:
            for index in np.flatnonzero(buckets).tolist():
                self._counts[index] += int(buckets[index])
            self.count += int(values.size)
            self.sum_s = float(
                np.cumsum(np.concatenate(((self.sum_s,), clamped)))[-1]
            )
            peak = float(clamped.max())
            if peak > self.max_s:
                self.max_s = peak

    def _quantile_locked(self, q: float) -> float:
        """Upper bucket bound holding the q-quantile (caller holds lock)."""
        target = max(1, int(self.count * q + 0.999999))
        seen = 0
        for index, bucket in enumerate(self._counts):
            seen += bucket
            if seen >= target:
                if index < len(_BUCKET_BOUNDS):
                    return _BUCKET_BOUNDS[index]
                return self.max_s
        return self.max_s

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            if self.count == 0:
                return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
                        "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
            return {
                "count": self.count,
                "mean_ms": 1e3 * self.sum_s / self.count,
                "p50_ms": 1e3 * self._quantile_locked(0.50),
                "p95_ms": 1e3 * self._quantile_locked(0.95),
                "p99_ms": 1e3 * self._quantile_locked(0.99),
                "max_ms": 1e3 * self.max_s,
            }
