"""Deterministic random-number helpers.

All stochastic components of the library (synthetic corpora, batch
shuffling) draw from :class:`numpy.random.Generator` instances created
here.  Seeds are always explicit: the same seed yields the same corpus,
the same batch order, and therefore the same trace, bit for bit.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["make_rng", "derive_seed"]

_SEED_MODULUS = 2**63


def make_rng(seed: int) -> np.random.Generator:
    """Return a PCG64 generator seeded with ``seed``.

    A thin wrapper so the generator family is chosen in exactly one place.
    """
    if not isinstance(seed, int):
        raise TypeError(f"seed must be an int, got {type(seed).__name__}")
    return np.random.default_rng(seed)


def derive_seed(base: int, *labels: str | int) -> int:
    """Derive a child seed from ``base`` and a label path.

    Used to give independent streams to sub-components (e.g. the dataset
    generator and the batch shuffler) without the caller having to invent
    unrelated magic numbers.  The derivation is stable across runs and
    platforms because it hashes a canonical string rather than relying on
    Python's randomised ``hash``.
    """
    material = ":".join([str(base), *map(str, labels)])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_MODULUS
