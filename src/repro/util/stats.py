"""Small statistics helpers used across the library.

These mirror the arithmetic the paper performs: weighted sums for
extensive statistics (Equation 1), weighted averages for ratio statistics
(throughput, IPC), geometric means for error summaries, and percentage
errors between projections and measurements.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "weighted_sum",
    "weighted_average",
    "geomean",
    "mean",
    "median",
    "percent_error",
    "sequential_sum",
]


def sequential_sum(values: np.ndarray, initial: float = 0.0) -> float:
    """Strict left-to-right float64 sum: ``((initial + v0) + v1) + ...``.

    ``np.sum`` uses pairwise summation, which groups additions
    differently from an accumulator loop and so produces different
    low-order bits.  The batched simulation paths must reproduce the
    scalar reference's Python accumulation exactly, and ``np.cumsum``
    is a running (left-fold) accumulation, so its last element is the
    loop's result bit for bit.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return float(initial)
    return float(np.cumsum(np.concatenate(((initial,), values)))[-1])


def weighted_sum(values: Sequence[float], weights: Sequence[float]) -> float:
    """Return ``sum(w_i * v_i)`` — Equation 1 of the paper."""
    if len(values) != len(weights):
        raise ValueError(
            f"values and weights must have equal length "
            f"({len(values)} != {len(weights)})"
        )
    return float(sum(w * v for v, w in zip(values, weights)))


def weighted_average(values: Sequence[float], weights: Sequence[float]) -> float:
    """Return the weight-normalised sum, for ratio statistics.

    The paper notes that ratio statistics (throughput, IPC) must be
    normalised by the sum of all weights.
    """
    total_weight = float(sum(weights))
    if total_weight <= 0.0:
        raise ValueError("weights must sum to a positive value")
    return weighted_sum(values, weights) / total_weight


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on an empty input instead of returning NaN."""
    items = list(values)
    if not items:
        raise ValueError("mean of an empty sequence is undefined")
    return float(sum(items)) / len(items)


def median(values: Iterable[float]) -> float:
    """Median with the usual even-length midpoint convention."""
    items = sorted(values)
    if not items:
        raise ValueError("median of an empty sequence is undefined")
    mid = len(items) // 2
    if len(items) % 2:
        return float(items[mid])
    return (items[mid - 1] + items[mid]) / 2.0


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of non-negative values.

    Zeros are nudged to a tiny epsilon so a single perfect projection does
    not collapse a whole error summary to zero — matching how error
    geomeans are conventionally reported.
    """
    items = list(values)
    if not items:
        raise ValueError("geomean of an empty sequence is undefined")
    eps = 1e-12
    total = 0.0
    for value in items:
        if value < 0.0:
            raise ValueError(f"geomean requires non-negative values, got {value}")
        total += math.log(max(value, eps))
    return math.exp(total / len(items))


def percent_error(projected: float, actual: float) -> float:
    """Absolute percentage error of ``projected`` against ``actual``."""
    if actual == 0.0:
        raise ValueError("actual value is zero; percent error undefined")
    return abs(projected - actual) / abs(actual) * 100.0
