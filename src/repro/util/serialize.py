"""JSON (de)serialisation helpers for trace and result artefacts.

Traces can take minutes to regenerate for large corpora, so the training
simulator and the experiment harness both persist their outputs.  These
helpers centralise the conventions: UTF-8, sorted keys, and a
``schema`` field that is checked on load so stale artefacts fail loudly
instead of producing silently wrong analyses.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import TraceError

__all__ = ["dump_json", "load_json", "read_json"]


def dump_json(payload: dict[str, Any], path: str | Path, schema: str) -> None:
    """Write ``payload`` to ``path``, stamping it with ``schema``."""
    document = dict(payload)
    document["schema"] = schema
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True, indent=1)


def read_json(path: str | Path) -> dict[str, Any]:
    """Load ``path`` without checking its schema stamp.

    For loaders that accept several schema versions and dispatch on the
    ``schema`` field themselves (e.g. trace v1/v2).
    """
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def load_json(path: str | Path, schema: str) -> dict[str, Any]:
    """Load ``path`` and verify it carries the expected ``schema`` stamp."""
    source = Path(path)
    document = read_json(source)
    found = document.get("schema")
    if found != schema:
        raise TraceError(
            f"{source}: expected schema {schema!r}, found {found!r}"
        )
    return document
