"""Shared utilities: deterministic RNG, statistics, units, and rendering."""

from repro.util.rng import derive_seed, make_rng
from repro.util.stats import (
    geomean,
    mean,
    median,
    percent_error,
    weighted_average,
    weighted_sum,
)
from repro.util.tables import render_table
from repro.util.units import (
    GHZ,
    GIB,
    KIB,
    MHZ,
    MIB,
    format_bytes,
    format_duration,
    format_frequency,
)

__all__ = [
    "derive_seed",
    "make_rng",
    "geomean",
    "mean",
    "median",
    "percent_error",
    "weighted_average",
    "weighted_sum",
    "render_table",
    "GHZ",
    "GIB",
    "KIB",
    "MHZ",
    "MIB",
    "format_bytes",
    "format_duration",
    "format_frequency",
]
