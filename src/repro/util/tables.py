"""Plain-text table rendering for harness and benchmark output.

The evaluation harness prints the same rows the paper's tables and
figures report; this renderer keeps that output aligned and diff-able
without pulling in a formatting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    if not headers:
        raise ValueError("a table needs at least one column")
    str_rows = [[_cell(value) for value in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)
