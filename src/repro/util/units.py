"""Unit constants and human-readable formatting.

The hardware model works in base SI units internally (bytes, hertz,
seconds); these constants keep configuration sites readable and the
formatters keep harness output readable.
"""

from __future__ import annotations

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "MHZ",
    "GHZ",
    "format_bytes",
    "format_duration",
    "format_frequency",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

MHZ = 1_000_000
GHZ = 1_000 * MHZ


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary-prefix unit (e.g. ``4.0 MiB``)."""
    if num_bytes < 0:
        raise ValueError("byte counts cannot be negative")
    for unit, scale in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if num_bytes >= scale:
            return f"{num_bytes / scale:.1f} {unit}"
    return f"{num_bytes:.0f} B"


def format_duration(seconds: float) -> str:
    """Render a duration with an appropriate unit from ns to hours."""
    if seconds < 0:
        raise ValueError("durations cannot be negative")
    if seconds >= 3600:
        return f"{seconds / 3600:.2f} h"
    if seconds >= 60:
        return f"{seconds / 60:.2f} min"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.2f} us"
    return f"{seconds * 1e9:.0f} ns"


def format_frequency(hertz: float) -> str:
    """Render a clock frequency (e.g. ``1.60 GHz``, ``852 MHz``)."""
    if hertz < 0:
        raise ValueError("frequencies cannot be negative")
    if hertz >= GHZ:
        return f"{hertz / GHZ:.2f} GHz"
    if hertz >= MHZ:
        return f"{hertz / MHZ:.0f} MHz"
    return f"{hertz:.0f} Hz"
