"""Advisory inter-process file locks for the on-disk stores.

The trace cache (:mod:`repro.api.cache`) and the plan store
(:mod:`repro.models.plan`) coordinate concurrent worker processes the
same way: an exclusive ``fcntl`` lock on a per-key ``*.lock`` file held
for the duration of a miss, so racing processes produce exactly one
expensive computation and every loser observes the winner's artefact.
This module is that shared protocol.

On platforms without ``fcntl`` (or when no directory is configured) the
lock degrades to a no-op: in-process callers still serialise on their
own thread locks, only cross-process exclusion is lost.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path

try:  # POSIX advisory locks; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["file_lock"]


@contextmanager
def file_lock(directory: str | Path | None, name: str) -> Iterator[None]:
    """Hold an exclusive advisory lock ``{name}.lock`` under ``directory``.

    A no-op when ``directory`` is ``None`` or the platform lacks
    ``fcntl``; otherwise the directory is created on demand and the
    lock file persists (lock files are cheap and reusable — deleting
    them would race other lockers).
    """
    if directory is None or fcntl is None:
        yield
        return
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    lock_path = directory / f"{name}.lock"
    with lock_path.open("a") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)
