"""Quasi-stationary segmentation of an iteration stream.

The streaming drift guard (PR 5, after the online checkpoint tests of
Titsias et al.) *refuses* non-stationary streams: DS2's sorted SortaGrad
first epoch never converges because every per-SL running mean keeps
shifting.  This module *handles* such streams instead, by cutting the
epoch into quasi-stationary segments and selecting representatives per
segment:

* :class:`StreamSegmenter` — a sequential (CUSUM/Page-style)
  changepoint detector over fixed cadence windows of the stream.  Each
  window is scored against the open segment's accumulated per-SL
  composition and runtime means; evidence accumulates whenever the
  score exceeds the ``hazard`` rate and a changepoint fires once it
  crosses ``threshold``, placed at the boundary where the evidence run
  began.  Windows land on a fixed grid determined only by the frame
  contents and ``cadence``, so detected boundaries are invariant under
  re-chunking of the feed — the same property the identifier's cadence
  checks have.

* :class:`SegmentedSelector` — wraps any base selector: partition the
  (prefix) epoch at the detected changepoints, run the base selector
  per segment, and combine the per-segment representatives with
  segment-mass weights (Equation 1 per segment, summed).  A degenerate
  single-segment stream returns the base selector's outcome *object*
  unchanged, so stationary streams reproduce today's selections
  bit-identically.  With ``split_epochs``/``decay`` it becomes the
  drift-schedule variant (after PP-Seq's phase-mixture view): segment
  boundaries are additionally forced at epoch/traffic-phase changes in
  the ``epoch`` column, and older segments' projection mass decays
  geometrically toward the most recent phase.

Both are registered in :data:`repro.api.SELECTORS` as ``segmented`` and
``segmented-drift``, so they are reachable from specs, ``repro stream
--selector segmented --selector-arg base=seqpoint``, and traffic runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.projection import project_logged_time
from repro.core.selection import SelectedPoint, Selection
from repro.core.seqpoint import SeqPointResult
from repro.core.sl_stats import SlStatistics
from repro.errors import ConfigurationError
from repro.train.frame import TraceFrame, as_frame
from repro.util.stats import percent_error

__all__ = [
    "Segment",
    "SegmentSummary",
    "SegmentedResult",
    "SegmentedSelector",
    "StreamSegmenter",
    "segment_frame",
]


@dataclass(frozen=True)
class Segment:
    """One quasi-stationary run of iterations, ``[start, stop)``."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise ConfigurationError(
                f"segment [{self.start}, {self.stop}) is empty or negative"
            )

    @property
    def iterations(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class SegmentSummary:
    """One segment's selection, reduced to its accounting numbers."""

    start: int
    stop: int
    points: int
    #: Bins the base selector used on this segment; 0 when unbinned.
    k: int
    projected_total_s: float
    actual_total_s: float

    @property
    def iterations(self) -> int:
        return self.stop - self.start

    @property
    def mean_iteration_s(self) -> float:
        """Projected mean iteration time within the segment."""
        return self.projected_total_s / self.iterations

    def to_dict(self) -> dict[str, Any]:
        return {
            "start": self.start,
            "stop": self.stop,
            "iterations": self.iterations,
            "points": self.points,
            "k": self.k,
            "projected_total_s": self.projected_total_s,
            "actual_total_s": self.actual_total_s,
        }


@dataclass(frozen=True)
class SegmentedResult(SeqPointResult):
    """A :class:`SeqPointResult` assembled from per-segment selections.

    Subclassing keeps every existing consumer working unchanged (the
    engine and the streaming identifier branch on ``SeqPointResult``);
    ``segments`` adds the per-segment accounting, last entry = the open
    (most recent) segment.
    """

    segments: tuple[SegmentSummary, ...] = ()

    @property
    def open_segment(self) -> SegmentSummary:
        return self.segments[-1]


def window_composition(
    frame: TraceFrame, start: int, stop: int
) -> dict[int, tuple[int, float]]:
    """Per-SL ``(count, total_time_s)`` of ``frame[start:stop]``.

    The one window-statistic function both the online segmenter and the
    offline replay share — scoring always reduces the same raw column
    values the same way, which is what makes detected boundaries a pure
    function of (frame, cadence) and hence chunking-invariant.
    """
    seq = frame.seq_len[start:stop]
    values, inverse, counts = np.unique(
        seq, return_inverse=True, return_counts=True
    )
    totals = np.bincount(
        inverse.reshape(-1),
        weights=frame.time_s[start:stop],
        minlength=values.size,
    )
    return {
        int(sl): (int(count), float(total))
        for sl, count, total in zip(
            values.tolist(), counts.tolist(), totals.tolist()
        )
    }


def composition_score(
    reference: dict[int, tuple[int, float]],
    window: dict[int, tuple[int, float]],
    drift_rtol: float,
) -> float:
    """How non-stationary a window looks against its segment reference.

    Three additive ingredients, each in ``[0, 1]``-ish range:

    * **new-SL mass** — the fraction of the window's iterations whose
      SL the reference has never seen (the signature of a monotone
      SortaGrad stream);
    * **total-variation distance** between the window's and the
      reference's SL-mix compositions;
    * **mean drift** — window-mass-weighted relative drift of shared
      SLs' mean runtimes, scaled by ``drift_rtol`` and capped at 1.
    """
    window_count = sum(count for count, _ in window.values())
    reference_count = sum(count for count, _ in reference.values())
    new_mass = (
        sum(count for sl, (count, _) in window.items() if sl not in reference)
        / window_count
    )
    tv = 0.0
    for sl in set(reference) | set(window):
        win_frac = window.get(sl, (0, 0.0))[0] / window_count
        ref_frac = reference.get(sl, (0, 0.0))[0] / reference_count
        tv += abs(win_frac - ref_frac)
    tv *= 0.5
    drift = 0.0
    for sl, (count, total) in window.items():
        ref = reference.get(sl)
        if ref is None:
            continue
        ref_mean = ref[1] / ref[0]
        relative = abs(total / count / ref_mean - 1.0) / drift_rtol
        drift += (count / window_count) * min(1.0, relative)
    return new_mass + tv + drift


class StreamSegmenter:
    """Sequential changepoint detection over cadence windows.

    A Page/CUSUM-style test: every full ``cadence`` window of the
    stream is scored against the open segment's accumulated reference
    (:func:`composition_score`); evidence advances by ``score -
    hazard`` (clamped at zero), and a changepoint fires once evidence
    exceeds ``threshold`` — placed at the window boundary where the
    evidence run began, never cutting a segment shorter than
    ``min_segment`` iterations or leaving an open segment shorter than
    one window.  The first window of each segment seeds the reference
    and is never scored.

    Deterministic in the frame contents: feeding a longer prefix
    replays the identical window sequence, so already-fired
    changepoints never move or disappear.
    """

    def __init__(
        self,
        cadence: int = 64,
        hazard: float = 0.6,
        threshold: float = 1.0,
        drift_rtol: float = 0.1,
        min_segment: int | None = None,
    ):
        if not isinstance(cadence, int) or isinstance(cadence, bool):
            raise ConfigurationError(f"cadence must be an int, got {cadence!r}")
        if cadence < 1:
            raise ConfigurationError(f"cadence must be >= 1, got {cadence}")
        for name, value in (("hazard", hazard), ("threshold", threshold)):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ConfigurationError(
                    f"{name} must be a number, got {value!r}"
                )
            if not value > 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {value}"
                )
        if not isinstance(drift_rtol, (int, float)) or not drift_rtol > 0:
            raise ConfigurationError(
                f"drift_rtol must be positive, got {drift_rtol!r}"
            )
        if min_segment is not None and (
            not isinstance(min_segment, int)
            or isinstance(min_segment, bool)
            or min_segment < 1
        ):
            raise ConfigurationError(
                f"min_segment must be a positive int, got {min_segment!r}"
            )
        self.cadence = cadence
        self.hazard = float(hazard)
        self.threshold = float(threshold)
        self.drift_rtol = float(drift_rtol)
        self.min_segment = 2 * cadence if min_segment is None else min_segment
        self._watched = 0
        self._segment_start = 0
        self._evidence = 0.0
        self._run_start: int | None = None
        self._reference: dict[int, tuple[int, float]] = {}
        self._changepoints: list[int] = []

    @property
    def watched(self) -> int:
        """Iterations already scored (the last full window boundary)."""
        return self._watched

    @property
    def changepoints(self) -> tuple[int, ...]:
        """Closed-segment boundaries fired so far, ascending."""
        return tuple(self._changepoints)

    @property
    def open_segment_start(self) -> int:
        return self._segment_start

    def observe(self, frame: TraceFrame, upto: int | None = None) -> tuple[int, ...]:
        """Score all pending full windows of ``frame[:upto]``.

        Returns the changepoints fired by this call (usually zero or
        one).  Iterations past the last full window boundary stay
        unscored until enough arrive to complete a window — they belong
        to the open segment in the meantime.
        """
        upto = len(frame) if upto is None else upto
        if upto > len(frame):
            raise ConfigurationError(
                f"upto={upto} past the {len(frame)}-iteration frame"
            )
        fired = []
        while self._watched + self.cadence <= upto:
            changepoint = self._advance(frame)
            if changepoint is not None:
                fired.append(changepoint)
        return tuple(fired)

    def _advance(self, frame: TraceFrame) -> int | None:
        start, stop = self._watched, self._watched + self.cadence
        window = window_composition(frame, start, stop)
        self._watched = stop
        if not self._reference:
            self._reference = window
            return None
        score = composition_score(self._reference, window, self.drift_rtol)
        gain = score - self.hazard
        if self._evidence + gain > 0.0:
            if self._evidence == 0.0:
                self._run_start = start
            self._evidence += gain
        else:
            self._evidence = 0.0
            self._run_start = None
        if self._evidence > self.threshold:
            changepoint = self._run_start
            floor = self._segment_start + self.min_segment
            if changepoint < floor:
                # Snap up to the first window boundary that respects
                # min_segment; postpone entirely if that would leave
                # the open segment without a full window yet.
                changepoint = -(-floor // self.cadence) * self.cadence
            if changepoint <= stop - self.cadence:
                self._close(frame, changepoint, stop)
                return changepoint
        # No closure: the window joins the open segment's reference
        # (on a closure, _close already rebuilt it from the frame).
        self._merge(window)
        return None

    def _merge(self, window: dict[int, tuple[int, float]]) -> None:
        for sl, (count, total) in window.items():
            have = self._reference.get(sl)
            if have is None:
                self._reference[sl] = (count, total)
            else:
                self._reference[sl] = (have[0] + count, have[1] + total)

    def _close(self, frame: TraceFrame, changepoint: int, stop: int) -> None:
        self._changepoints.append(changepoint)
        self._segment_start = changepoint
        self._evidence = 0.0
        self._run_start = None
        # The new open segment's reference: everything between the
        # changepoint and the windows already scored.
        self._reference = window_composition(frame, changepoint, stop)


def segment_frame(
    frame: TraceFrame,
    cadence: int = 64,
    hazard: float = 0.6,
    threshold: float = 1.0,
    drift_rtol: float = 0.1,
    min_segment: int | None = None,
) -> tuple[Segment, ...]:
    """Partition a frame at detected changepoints (offline replay).

    Runs :class:`StreamSegmenter` over the whole frame and converts its
    boundaries into a covering partition; a trailing partial window
    joins the open (last) segment, exactly as it would online.
    """
    segmenter = StreamSegmenter(
        cadence=cadence,
        hazard=hazard,
        threshold=threshold,
        drift_rtol=drift_rtol,
        min_segment=min_segment,
    )
    segmenter.observe(frame)
    edges = (0,) + segmenter.changepoints + (len(frame),)
    return tuple(
        Segment(start, stop) for start, stop in zip(edges, edges[1:])
    )


def _epoch_runs(frame: TraceFrame) -> tuple[tuple[int, int], ...]:
    """Maximal runs of constant ``epoch`` column, in stream order."""
    epoch = frame.epoch
    cuts = np.flatnonzero(np.diff(epoch) != 0) + 1
    edges = [0, *cuts.tolist(), len(frame)]
    return tuple(zip(edges, edges[1:]))


class SegmentedSelector:
    """Wrap a base selector with changepoint-aware segmentation.

    ``select`` partitions the trace at detected changepoints (plus
    epoch/phase boundaries when ``split_epochs``), runs ``base`` on
    each segment's sub-frame, and returns a :class:`SegmentedResult`
    whose selection concatenates the per-segment representatives with
    their segment-mass weights.  A single-segment partition returns the
    base outcome object untouched — bit-identical to not wrapping.

    ``decay`` < 1 geometrically down-weights older segments (most
    recent segment keeps weight 1), renormalised so the combined
    projection mass still spans the whole trace — the drift-schedule
    variant's forecast of a drifting SL distribution.
    """

    def __init__(
        self,
        base: Any,
        cadence: int = 64,
        hazard: float = 0.6,
        threshold: float = 1.0,
        drift_rtol: float = 0.1,
        min_segment: int | None = None,
        split_epochs: bool = False,
        decay: float = 1.0,
    ):
        if not callable(getattr(base, "select", None)):
            raise ConfigurationError(
                f"base selector must expose select(trace), got {base!r}"
            )
        if not isinstance(decay, (int, float)) or isinstance(decay, bool):
            raise ConfigurationError(f"decay must be a number, got {decay!r}")
        if not 0.0 < decay <= 1.0:
            raise ConfigurationError(
                f"decay must be in (0, 1], got {decay}"
            )
        # Shares the segmenter's validation for the detection knobs.
        probe = StreamSegmenter(
            cadence=cadence,
            hazard=hazard,
            threshold=threshold,
            drift_rtol=drift_rtol,
            min_segment=min_segment,
        )
        self.base = base
        self.cadence = cadence
        self.hazard = probe.hazard
        self.threshold = probe.threshold
        self.drift_rtol = probe.drift_rtol
        self.min_segment = probe.min_segment
        self.split_epochs = bool(split_epochs)
        self.decay = float(decay)

    @property
    def method(self) -> str:
        base = getattr(self.base, "METHOD", type(self.base).__name__)
        variant = "segmented-drift" if self.split_epochs else "segmented"
        return f"{variant}[{base}]"

    def segment(self, frame: TraceFrame) -> tuple[Segment, ...]:
        """The partition ``select`` will use on this frame."""
        if not self.split_epochs:
            return self._detect(frame, offset=0)
        segments: list[Segment] = []
        for start, stop in _epoch_runs(frame):
            segments.extend(
                self._detect(frame.slice(start, stop), offset=start)
            )
        return tuple(segments)

    def _detect(self, frame: TraceFrame, offset: int) -> tuple[Segment, ...]:
        return tuple(
            Segment(offset + seg.start, offset + seg.stop)
            for seg in segment_frame(
                frame,
                cadence=self.cadence,
                hazard=self.hazard,
                threshold=self.threshold,
                drift_rtol=self.drift_rtol,
                min_segment=self.min_segment,
            )
        )

    def select(self, trace: Any) -> Any:
        frame = as_frame(trace)
        segments = self.segment(frame)
        if len(segments) == 1:
            # Degenerate quasi-stationary stream: stay out of the way
            # entirely so selections reproduce bit-for-bit.
            return self.base.select(frame)

        per_segment = []
        for segment in segments:
            sub = frame.slice(segment.start, segment.stop)
            outcome = self.base.select(sub)
            if isinstance(outcome, SeqPointResult):
                selection = outcome.selection
                k = outcome.k
                projected = outcome.projected_total_s
                actual = outcome.actual_total_s
            elif isinstance(outcome, Selection):
                selection = outcome
                k = 0
                projected = project_logged_time(outcome)
                actual = SlStatistics.from_trace(sub).total_time_s
            else:
                raise ConfigurationError(
                    f"base selector returned {type(outcome).__name__}, "
                    "expected a Selection or SeqPointResult"
                )
            per_segment.append((segment, selection, k, projected, actual))

        scales = self._scales(per_segment)
        points: list[SelectedPoint] = []
        summaries = []
        for (segment, selection, k, projected, actual), scale in zip(
            per_segment, scales
        ):
            if scale == 1.0:
                points.extend(selection.points)
            else:
                points.extend(
                    SelectedPoint(
                        record=point.record, weight=point.weight * scale
                    )
                    for point in selection.points
                )
            # Summaries keep the segment's own (unscaled) projection:
            # the open segment's mean must stay an honest estimate of
            # the recent iteration rate even under decay weighting.
            summaries.append(
                SegmentSummary(
                    start=segment.start,
                    stop=segment.stop,
                    points=len(selection),
                    k=k,
                    projected_total_s=projected,
                    actual_total_s=actual,
                )
            )
        combined = Selection(method=self.method, points=tuple(points))
        projected_total = project_logged_time(combined)
        actual_total = sum(actual for *_, actual in per_segment)
        return SegmentedResult(
            selection=combined,
            k=sum(k for _, _, k, _, _ in per_segment),
            identification_error_pct=percent_error(
                projected_total, actual_total
            ),
            projected_total_s=projected_total,
            actual_total_s=actual_total,
            segments=tuple(summaries),
        )

    def _scales(self, per_segment: list) -> list[float]:
        """Per-segment weight multipliers (all 1 unless decaying)."""
        count = len(per_segment)
        if self.decay == 1.0:
            return [1.0] * count
        raw = [self.decay ** (count - 1 - i) for i in range(count)]
        mass = sum(
            segment.iterations for segment, *_ in per_segment
        )
        decayed = sum(
            scale * segment.iterations
            for scale, (segment, *_) in zip(raw, per_segment)
        )
        # Renormalise so total projection mass still spans the trace.
        factor = mass / decayed
        return [scale * factor for scale in raw]
