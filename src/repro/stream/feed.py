"""Feed adapters: things that produce iteration chunks for a stream.

A *feed* is any iterable of chunks, where each chunk is either

* a :class:`FrameSlice` — a columnar window ``frame[start:stop)`` (the
  fast path for replayed traces), or
* an iterable of :class:`~repro.train.trace.IterationRecord` (the
  generic path for genuinely live producers).

:class:`TraceReplayFeed` replays a logged
:class:`~repro.train.trace.TrainingTrace` / :class:`TraceFrame` — or a
trace-JSON artefact of either schema version — as such a stream, so
every cached epoch can exercise the online identification path exactly
as a live training run would.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import TraceError
from repro.train.frame import TraceFrame, as_frame
from repro.train.trace import TrainingTrace

__all__ = ["FrameSlice", "TraceReplayFeed", "replay"]


@dataclass(frozen=True)
class FrameSlice:
    """One columnar chunk of a feed: ``frame[start:stop)``."""

    frame: TraceFrame
    start: int
    stop: int

    def __post_init__(self) -> None:
        if not 0 <= self.start <= self.stop <= len(self.frame):
            raise TraceError(
                f"slice [{self.start}, {self.stop}) outside the "
                f"{len(self.frame)}-iteration frame"
            )

    def __len__(self) -> int:
        return self.stop - self.start


class TraceReplayFeed:
    """Replay a logged trace as a stream of :class:`FrameSlice` chunks.

    ``chunk_size`` models the arrival granularity — 1 replays iteration
    by iteration; larger values mimic a producer that reports in
    batches.  The feed is re-iterable (each ``iter()`` starts over) and
    knows its epoch length, which live feeds generally would not.
    """

    def __init__(self, trace: TrainingTrace | TraceFrame, chunk_size: int = 1):
        if chunk_size <= 0:
            raise TraceError(f"chunk_size must be positive, got {chunk_size}")
        self.frame = as_frame(trace)
        if len(self.frame) == 0:
            raise TraceError("cannot replay an empty trace")
        self.chunk_size = chunk_size

    @classmethod
    def load(cls, path: str | Path, chunk_size: int = 1) -> "TraceReplayFeed":
        """Replay a trace-JSON artefact (v1 or v2 schema)."""
        return cls(TraceFrame.load(path), chunk_size=chunk_size)

    def __len__(self) -> int:
        """Epoch length in iterations (known only because this is a replay)."""
        return len(self.frame)

    def __iter__(self) -> Iterator[FrameSlice]:
        total = len(self.frame)
        for start in range(0, total, self.chunk_size):
            yield FrameSlice(
                frame=self.frame,
                start=start,
                stop=min(start + self.chunk_size, total),
            )


def replay(
    trace: TrainingTrace | TraceFrame, chunk_size: int = 1
) -> TraceReplayFeed:
    """Shorthand for :class:`TraceReplayFeed`."""
    return TraceReplayFeed(trace, chunk_size=chunk_size)
