"""Online (streaming) SeqPoint identification.

Everything the batch pipeline does after a *complete* logged epoch,
this package does on a *growing prefix* of one: iterations absorb into
an incremental per-SL accumulator
(:class:`~repro.stream.stats.StreamingSlStatistics`, bit-identical to
the batch group-by on the same prefix), a
:class:`~repro.stream.identifier.StreamingIdentifier` re-runs the
selector on a cadence, and the stream stops as soon as the selection
stabilises — typically well before the epoch ends, extending the
paper's profiling-cost-reduction argument to the logging phase itself.

Declarative entry points mirror the batch API: a
:class:`~repro.stream.spec.StreamSpec` JSON round-trips like
``AnalysisSpec``, :meth:`repro.api.engine.AnalysisEngine.run_streaming`
executes one, and ``repro stream`` is the same path from the shell.
:class:`~repro.stream.feed.TraceReplayFeed` replays cached epoch traces
(or trace-JSON artefacts) as simulated live feeds.
"""

from repro.stream.feed import FrameSlice, TraceReplayFeed, replay
from repro.stream.identifier import (
    ConvergenceCheck,
    IdentificationSession,
    StreamingIdentifier,
    StreamingRun,
    sl_mix_drift,
)
from repro.stream.segments import (
    Segment,
    SegmentSummary,
    SegmentedResult,
    SegmentedSelector,
    StreamSegmenter,
    segment_frame,
)
from repro.stream.spec import StreamSpec
from repro.stream.stats import StreamingSlStatistics

__all__ = [
    "ConvergenceCheck",
    "FrameSlice",
    "IdentificationSession",
    "Segment",
    "SegmentSummary",
    "SegmentedResult",
    "SegmentedSelector",
    "StreamSegmenter",
    "StreamSpec",
    "StreamingIdentifier",
    "StreamingRun",
    "StreamingSlStatistics",
    "TraceReplayFeed",
    "replay",
    "segment_frame",
    "sl_mix_drift",
]
