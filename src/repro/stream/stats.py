"""Incremental per-SL statistics over a growing iteration stream.

:class:`StreamingSlStatistics` is the online twin of
:class:`~repro.core.sl_stats.SlStatistics`: it absorbs iterations as
they arrive — one record at a time, a list of records, or a columnar
chunk of an existing :class:`~repro.train.frame.TraceFrame` — into
growable numpy columns plus per-SL running accumulators, and can at any
moment produce

* a :class:`~repro.train.frame.TraceFrame` of the prefix consumed so
  far (:meth:`frame`), and
* an :class:`~repro.core.sl_stats.SlStatistics` of that prefix
  (:meth:`statistics`) that is **bit-identical** to the batch group-by
  ``SlStatistics.from_trace(prefix_frame)``.

Bit-identity holds because the running totals accumulate in arrival
order — the exact addition sequence ``np.bincount`` performs over the
batch column — and the representative search runs the same vectorized
deviation + stable lexsort the batch path uses.  The equivalence is
asserted across chunkings in ``tests/test_stream_equivalence.py`` and
property-tested over random traces in ``tests/test_properties_stream.py``.

The produced frame carries the incrementally built statistics in its
memo, so selectors running on it (via ``SlStatistics.from_trace``)
reuse the streaming group-by instead of recomputing it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.errors import TraceError
from repro.core.sl_stats import SlStatistics
from repro.train.frame import NO_TGT, IterationProfile, TraceFrame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.train.trace import IterationRecord

__all__ = ["StreamingSlStatistics"]


class _Column:
    """A growable numpy column with amortised-doubling appends."""

    __slots__ = ("_buffer", "_size")

    def __init__(self, dtype, capacity: int = 64):
        self._buffer = np.empty(capacity, dtype=dtype)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        if needed > self._buffer.size:
            capacity = self._buffer.size
            while capacity < needed:
                capacity *= 2
            grown = np.empty(capacity, dtype=self._buffer.dtype)
            grown[: self._size] = self._buffer[: self._size]
            self._buffer = grown

    def append(self, value) -> None:
        self._reserve(1)
        self._buffer[self._size] = value
        self._size += 1

    def extend(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=self._buffer.dtype)
        self._reserve(values.size)
        self._buffer[self._size : self._size + values.size] = values
        self._size += values.size

    def view(self) -> np.ndarray:
        """The live prefix (a view — copy before handing it out)."""
        return self._buffer[: self._size]


class StreamingSlStatistics:
    """Online per-SL statistics of a growing trace prefix.

    Construct with the trace metadata (or :meth:`for_frame` to copy it
    from an existing frame), then :meth:`absorb` iterations as they
    arrive.  ``autotune_s``/``eval_s`` default to zero: one-off phases
    are not part of the iteration stream.
    """

    def __init__(
        self,
        model_name: str = "stream",
        dataset_name: str = "stream",
        config_name: str = "stream",
        batch_size: int = 1,
        autotune_s: float = 0.0,
        eval_s: float = 0.0,
    ):
        if batch_size <= 0:
            raise TraceError("batch_size must be positive")
        self.model_name = model_name
        self.dataset_name = dataset_name
        self.config_name = config_name
        self.batch_size = batch_size
        self.autotune_s = autotune_s
        self.eval_s = eval_s
        self._index = _Column(np.int64)
        self._epoch = _Column(np.int64)
        self._seq_len = _Column(np.int64)
        self._tgt_len = _Column(np.int64)
        self._time_s = _Column(np.float64)
        self._profile_id = _Column(np.int64)
        self._profiles: list[IterationProfile] = []
        self._pool: dict[tuple, int] = {}
        #: Per-SL running (count, total) in arrival order — the same
        #: addition sequence np.bincount performs on the batch column.
        self._counts: dict[int, int] = {}
        self._totals: dict[int, float] = {}
        self._frame_cache: tuple[int, TraceFrame] | None = None
        self._stats_cache: tuple[int, SlStatistics] | None = None

    @classmethod
    def for_frame(cls, frame: TraceFrame) -> "StreamingSlStatistics":
        """An empty accumulator carrying ``frame``'s trace metadata."""
        return cls(
            model_name=frame.model_name,
            dataset_name=frame.dataset_name,
            config_name=frame.config_name,
            batch_size=frame.batch_size,
            autotune_s=frame.autotune_s,
            eval_s=frame.eval_s,
        )

    # -- shape --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __repr__(self) -> str:
        return (
            f"StreamingSlStatistics({self.model_name!r}, "
            f"iterations={len(self)}, unique_sls={len(self._counts)})"
        )

    @property
    def iterations(self) -> int:
        return len(self)

    @property
    def unique_seq_lens(self) -> int:
        return len(self._counts)

    @property
    def total_time_s(self) -> float:
        return sum(self._totals[sl] for sl in sorted(self._totals))

    def mean_times(self) -> dict[int, float]:
        """Current mean runtime per unique SL (drift-guard input)."""
        return {
            sl: self._totals[sl] / self._counts[sl]
            for sl in sorted(self._counts)
        }

    def iteration_counts(self) -> dict[int, int]:
        """Current iteration count per unique SL (drift-guard input)."""
        return {sl: self._counts[sl] for sl in sorted(self._counts)}

    # -- absorption ---------------------------------------------------

    def _pool_profile(self, profile: IterationProfile) -> int:
        key = profile.dedup_key()
        pid = self._pool.get(key)
        if pid is None:
            pid = self._pool[key] = len(self._profiles)
            self._profiles.append(profile)
        return pid

    def _account(self, seq_len: int, time_s: float) -> None:
        if time_s <= 0.0:
            raise TraceError(f"iteration {len(self)}: non-positive time")
        self._counts[seq_len] = self._counts.get(seq_len, 0) + 1
        self._totals[seq_len] = self._totals.get(seq_len, 0.0) + time_s

    def absorb(self, record: "IterationRecord") -> None:
        """Absorb one iteration record."""
        self._account(record.seq_len, record.time_s)
        self._index.append(record.index)
        self._epoch.append(record.epoch)
        self._seq_len.append(record.seq_len)
        self._tgt_len.append(NO_TGT if record.tgt_len is None else record.tgt_len)
        self._time_s.append(record.time_s)
        self._profile_id.append(
            self._pool_profile(
                IterationProfile(
                    launches=record.launches,
                    counters=record.counters,
                    group_times=dict(record.group_times),
                    kernel_names=record.kernel_names,
                )
            )
        )

    def absorb_many(self, records: Iterable["IterationRecord"]) -> None:
        """Absorb an in-order batch of iteration records."""
        for record in records:
            self.absorb(record)

    def absorb_frame(
        self, frame: TraceFrame, start: int = 0, stop: int | None = None
    ) -> None:
        """Absorb ``frame[start:stop]`` as one columnar chunk.

        The fast path for replayed traces: columns append as slices and
        each distinct source profile maps through the pool once per
        chunk instead of once per iteration.
        """
        stop = len(frame) if stop is None else stop
        if not 0 <= start <= stop <= len(frame):
            raise TraceError(
                f"chunk [{start}, {stop}) outside the {len(frame)}-iteration frame"
            )
        if start == stop:
            return
        seq_chunk = frame.seq_len[start:stop]
        time_chunk = frame.time_s[start:stop]
        if np.any(time_chunk <= 0.0):
            raise TraceError(f"iteration {len(self)}: non-positive time")
        # Bulk-advance the running accumulators while preserving the
        # exact per-SL addition sequence: each SL's existing total rides
        # as a leading weight, and ``np.bincount`` folds weights
        # element by element in arrival order — so every total is the
        # same left fold the record-at-a-time loop produces, bit for
        # bit (``0.0 + old == old`` exactly for the seeded leading
        # weight).
        seq_lens, inverse = np.unique(seq_chunk, return_inverse=True)
        inverse = inverse.reshape(-1)
        bins = seq_lens.size
        old_totals = np.fromiter(
            (self._totals.get(sl, 0.0) for sl in seq_lens.tolist()),
            np.float64,
            bins,
        )
        new_totals = np.bincount(
            np.concatenate((np.arange(bins, dtype=np.int64), inverse)),
            weights=np.concatenate((old_totals, time_chunk)),
            minlength=bins,
        )
        new_counts = np.bincount(inverse, minlength=bins)
        for position, sl in enumerate(seq_lens.tolist()):
            self._counts[sl] = self._counts.get(sl, 0) + int(
                new_counts[position]
            )
            self._totals[sl] = float(new_totals[position])
        self._index.extend(frame.index[start:stop])
        self._epoch.extend(frame.epoch[start:stop])
        self._seq_len.extend(seq_chunk)
        self._tgt_len.extend(frame.tgt_len[start:stop])
        self._time_s.extend(time_chunk)
        source_ids = frame.profile_id[start:stop]
        unique_ids = np.unique(source_ids)
        mapped = np.fromiter(
            (
                self._pool_profile(frame.profiles[pid])
                for pid in unique_ids.tolist()
            ),
            np.int64,
            unique_ids.size,
        )
        lookup = np.zeros(int(unique_ids[-1]) + 1, dtype=np.int64)
        lookup[unique_ids] = mapped
        self._profile_id.extend(lookup[source_ids])

    # -- snapshots ----------------------------------------------------

    def frame(self) -> TraceFrame:
        """The consumed prefix as an immutable columnar frame.

        Rebuilt only when iterations were absorbed since the last call;
        the frame's memo carries the incrementally built per-SL
        statistics so downstream selectors share the streaming group-by.
        """
        if self._frame_cache is not None and self._frame_cache[0] == len(self):
            return self._frame_cache[1]
        if len(self) == 0:
            raise TraceError("no iterations absorbed yet")
        frame = TraceFrame(
            model_name=self.model_name,
            dataset_name=self.dataset_name,
            config_name=self.config_name,
            batch_size=self.batch_size,
            index=self._index.view().copy(),
            epoch=self._epoch.view().copy(),
            seq_len=self._seq_len.view().copy(),
            tgt_len=self._tgt_len.view().copy(),
            time_s=self._time_s.view().copy(),
            profile_id=self._profile_id.view().copy(),
            profiles=tuple(self._profiles),
            autotune_s=self.autotune_s,
            eval_s=self.eval_s,
        )
        self._frame_cache = (len(self), frame)
        return frame

    def statistics(self) -> SlStatistics:
        """Per-SL statistics of the prefix, from the running state.

        Counts and totals come straight from the accumulators; the
        representative search runs through the *shared* batch code path
        (:meth:`SlStatistics.from_grouped`), so the result is
        bit-identical to regrouping the prefix from scratch by
        construction.
        """
        if self._stats_cache is not None and self._stats_cache[0] == len(self):
            return self._stats_cache[1]
        frame = self.frame()
        seq_lens = np.fromiter(sorted(self._counts), np.int64, len(self._counts))
        counts = np.fromiter(
            (self._counts[sl] for sl in seq_lens.tolist()),
            np.int64,
            seq_lens.size,
        )
        totals = np.fromiter(
            (self._totals[sl] for sl in seq_lens.tolist()),
            np.float64,
            seq_lens.size,
        )
        # seq_lens is sorted-unique, so searchsorted reproduces the
        # inverse np.unique would return for the batch column; the
        # representative search itself is the shared batch code path.
        inverse = np.searchsorted(seq_lens, frame.seq_len)
        result = SlStatistics.from_grouped(
            frame, seq_lens, counts, totals, inverse
        )
        # Seed the frame's memo: SlStatistics.from_trace(frame) — what
        # every selector calls — now returns this object directly.
        frame.cached("sl_statistics", lambda: result)
        self._stats_cache = (len(self), result)
        return result
