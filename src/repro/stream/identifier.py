"""Online SeqPoint identification with early stopping.

:class:`StreamingIdentifier` wraps any selector (SeqPoint, k-means, or
a baseline — anything with ``select(frame)``) and drives it over a feed
of arriving iterations:

1. iterations absorb into a :class:`StreamingSlStatistics`;
2. every ``cadence`` iterations the selector re-runs on the prefix
   (reusing the incremental per-SL group-by);
3. convergence is declared once the selected ``(seq_len, tgt_len)`` set
   and the projected mean iteration time are stable across ``patience``
   consecutive checks (relative tolerance ``rtol``), at which point the
   rest of the stream is never consumed — the paper's profiling-cost
   argument, extended to not even needing the full logged epoch;
4. a changepoint-style guard (after the online checkpoint tests of
   Titsias et al.) resets the stability window whenever the per-SL mix
   drifts between checks — a seen SL's running mean moving by more than
   ``drift_rtol``, or appearing/vanishing SLs carrying more than
   ``drift_rtol`` of the recent mass (:func:`sl_mix_drift`) — so a
   distribution shift mid-stream restarts the convergence clock instead
   of freezing a stale selection;
5. when the selector is segment-aware (``segmented``/``segmented-drift``,
   :mod:`repro.stream.segments`), the guard hands off to the segmenter:
   a newly *closed* segment is the drift event (resetting the stability
   window), and stability is judged on the **open** segment's projected
   mean and the combined selection — so monotone streams the plain
   guard refuses can still converge, segment by segment.  Degenerate
   single-segment streams take the plain path above bit-identically.

Checks land on exact ``cadence`` boundaries regardless of the feed's
chunk granularity, so the sequence of convergence decisions is
invariant under re-chunking — asserted in
``tests/test_stream_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.projection import project_logged_time
from repro.core.selection import Selection
from repro.core.seqpoint import SeqPointResult
from repro.errors import ConfigurationError
from repro.stream.feed import FrameSlice
from repro.stream.segments import SegmentSummary, SegmentedResult
from repro.stream.stats import StreamingSlStatistics
from repro.util.stats import percent_error

__all__ = [
    "ConvergenceCheck",
    "IdentificationSession",
    "StreamingIdentifier",
    "StreamingRun",
    "sl_mix_drift",
]


@dataclass(frozen=True)
class ConvergenceCheck:
    """One selector re-run on the prefix, and what it decided."""

    iterations: int
    #: Selected ``(seq_len, tgt_len)`` pairs, sorted.
    selected: tuple[tuple[int, int | None], ...]
    projected_mean_iteration_s: float
    #: Consecutive checks (this one included) agreeing so far.
    stable_checks: int
    #: True when the drift guard reset the stability window here (for a
    #: segment-aware selector: a segment closed here).
    drift_reset: bool
    k: int | None
    #: Closed segments a segment-aware selector committed so far; 0 for
    #: plain selectors and degenerate single-segment streams.
    segments_closed: int = 0
    #: Projected mean iteration time of the open segment — the value
    #: stability is judged on when the stream is segmented.
    open_segment_mean_s: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "iterations": self.iterations,
            "selected": [list(pair) for pair in self.selected],
            "projected_mean_iteration_s": self.projected_mean_iteration_s,
            "stable_checks": self.stable_checks,
            "drift_reset": self.drift_reset,
            "k": self.k,
            "segments_closed": self.segments_closed,
            "open_segment_mean_s": self.open_segment_mean_s,
        }


@dataclass(frozen=True)
class StreamingRun:
    """Everything one streaming identification produced."""

    converged: bool
    iterations_consumed: int
    checks: tuple[ConvergenceCheck, ...]
    selection: Selection
    k: int | None
    #: Equation 1 on the consumed prefix vs the prefix's actual time.
    identification_error_pct: float
    projected_prefix_total_s: float
    prefix_total_s: float
    #: The accumulator, for callers that keep absorbing or inspecting.
    stats: StreamingSlStatistics = field(repr=False, compare=False)
    #: Per-segment accounting when the selector was segment-aware and
    #: detected changepoints; empty otherwise (plain selectors and
    #: degenerate single-segment streams).
    segments: tuple[SegmentSummary, ...] = ()

    @property
    def method(self) -> str:
        return self.selection.method

    def __len__(self) -> int:
        return len(self.selection)

    def project_epoch_time(self, epoch_iterations: int) -> float:
        """Extrapolate the prefix projection to a full epoch's length.

        A segmented prefix is drift-aware: only the *open* (most
        recent) segment's projected mean prices the unseen tail, so a
        monotone stream's early cheap iterations do not drag the
        forecast down.  With a single segment this reduces exactly to
        the classic whole-prefix linear extrapolation.
        """
        if epoch_iterations <= 0:
            raise ConfigurationError(
                f"epoch_iterations must be positive, got {epoch_iterations}"
            )
        if self.segments:
            tail = epoch_iterations - self.iterations_consumed
            return (
                self.projected_prefix_total_s
                + tail * self.segments[-1].mean_iteration_s
            )
        return (
            self.projected_prefix_total_s
            / self.iterations_consumed
            * epoch_iterations
        )


def _points_agree(
    current: tuple[tuple[int, int | None], ...],
    previous: tuple[tuple[int, int | None], ...],
    sl_rtol: float,
) -> bool:
    """Tolerant stability test on two sorted selected-point sets.

    Binned selectors legitimately flap between *adjacent* in-bin
    representatives (SL 140 vs 147) without the selection structure
    changing, so two sets agree when they have the same cardinality and
    each pair of corresponding lengths is within ``sl_rtol``
    relatively.  ``sl_rtol=0`` degenerates to exact set equality.
    """
    if len(current) != len(previous):
        return False
    for (now_sl, now_tgt), (then_sl, then_tgt) in zip(current, previous):
        if abs(now_sl - then_sl) > sl_rtol * then_sl:
            return False
        if (now_tgt is None) != (then_tgt is None):
            return False
        if now_tgt is not None and abs(now_tgt - then_tgt) > sl_rtol * then_tgt:
            return False
    return True


def sl_mix_drift(
    previous_means: dict[int, float],
    previous_counts: dict[int, int],
    previous_iterations: int,
    means: dict[int, float],
    counts: dict[int, int],
    iterations: int,
    drift_rtol: float,
) -> bool:
    """Did the per-SL distribution drift between two checks?

    Three signals, compared over the *union* of previous and current
    SLs (an SL set restricted to ``previous_means`` would be blind to
    the appearing-SL signature of a monotone SortaGrad stream):

    * a shared SL's running mean moved by more than ``drift_rtol``
      relatively (a zero previous mean treats any change as drift);
    * *appearing* SLs account for more than ``drift_rtol`` of the
      iterations that arrived since the previous check;
    * *vanishing* SLs accounted for more than ``drift_rtol`` of the
      previously consumed iterations (impossible for a cumulative
      accumulator, but sessions accept resumed or rebuilt statistics).
    """
    for seq_len, previous_mean in previous_means.items():
        current = means.get(seq_len)
        if current is None:
            continue  # vanished: judged by mass below
        if previous_mean == 0.0:
            if current != previous_mean:
                return True
            continue
        if abs(current - previous_mean) > drift_rtol * previous_mean:
            return True
    arrived = iterations - previous_iterations
    if arrived > 0:
        appearing = sum(
            count
            for seq_len, count in counts.items()
            if seq_len not in previous_means
        )
        if appearing > drift_rtol * arrived:
            return True
    if previous_iterations > 0:
        vanished = sum(
            count
            for seq_len, count in previous_counts.items()
            if seq_len not in means
        )
        if vanished > drift_rtol * previous_iterations:
            return True
    return False


def _unwrap(outcome: Any) -> tuple[Selection, int | None, float]:
    """Normalise a selector outcome to (selection, k, projected total)."""
    if isinstance(outcome, SeqPointResult):
        return outcome.selection, outcome.k, outcome.projected_total_s
    if not isinstance(outcome, Selection):
        raise ConfigurationError(
            f"selector returned {type(outcome).__name__}, expected a "
            "Selection or SeqPointResult"
        )
    return outcome, None, project_logged_time(outcome)


class StreamingIdentifier:
    """Drive a selector over an iteration stream until it stabilises."""

    def __init__(
        self,
        selector: Any,
        cadence: int = 64,
        patience: int = 3,
        rtol: float = 0.005,
        drift_rtol: float = 0.02,
        sl_rtol: float = 0.1,
        min_iterations: int = 0,
    ):
        if not callable(getattr(selector, "select", None)):
            raise ConfigurationError(
                f"selector must expose select(trace), got {selector!r}"
            )
        if cadence < 1:
            raise ConfigurationError(f"cadence must be >= 1, got {cadence}")
        if patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        if not rtol > 0:
            raise ConfigurationError(f"rtol must be positive, got {rtol}")
        if not drift_rtol > 0:
            raise ConfigurationError(
                f"drift_rtol must be positive, got {drift_rtol}"
            )
        if sl_rtol < 0:
            raise ConfigurationError(
                f"sl_rtol cannot be negative, got {sl_rtol}"
            )
        if min_iterations < 0:
            raise ConfigurationError(
                f"min_iterations cannot be negative, got {min_iterations}"
            )
        self.selector = selector
        self.cadence = cadence
        self.patience = patience
        self.rtol = rtol
        self.drift_rtol = drift_rtol
        self.sl_rtol = sl_rtol
        self.min_iterations = min_iterations

    # -- the convergence loop -----------------------------------------

    def run(
        self,
        feed: Iterable[Any],
        stats: StreamingSlStatistics | None = None,
    ) -> StreamingRun:
        """Consume ``feed`` until convergence (or exhaustion).

        ``feed`` yields :class:`~repro.stream.feed.FrameSlice` chunks
        or iterables of records; chunks are split internally so checks
        land on exact cadence boundaries.  Pass ``stats`` to resume an
        accumulator that already absorbed earlier arrivals.
        """
        session = self.begin(stats)
        for chunk in feed:
            if session.absorb(chunk):
                break
        return session.finish()

    def begin(
        self, stats: StreamingSlStatistics | None = None
    ) -> "IdentificationSession":
        """Open an incremental session for arrivals pushed by the caller.

        Where :meth:`run` pulls an entire feed, a session is fed chunk
        by chunk (:meth:`IdentificationSession.absorb`) — the shape a
        long-running service needs when producers POST arrivals at
        their own pace — and :meth:`IdentificationSession.finish`
        closes it with the exact accounting ``run`` would produce on
        the same arrival sequence.
        """
        return IdentificationSession(self, stats)


class IdentificationSession:
    """Mutable state of one streaming identification, fed explicitly.

    Produced by :meth:`StreamingIdentifier.begin`.  ``absorb`` returns
    ``True`` once the selection has converged (further chunks are
    ignored by convention, not enforcement); ``finish`` runs the final
    off-boundary check and packages a :class:`StreamingRun`.  Driving a
    session chunk-for-chunk is bit-identical to :meth:`StreamingIdentifier.run`
    over the concatenation of the same chunks.
    """

    def __init__(self, identifier: StreamingIdentifier, stats):
        self.identifier = identifier
        self.stats = stats if stats is not None else StreamingSlStatistics()
        self.checks: list[ConvergenceCheck] = []
        self.last_check_at = 0
        self.stable_run = 0
        self.previous: ConvergenceCheck | None = None
        self.previous_means: dict[int, float] = {}
        self.previous_counts: dict[int, int] = {}
        self.outcome = None
        self.converged = False

    @property
    def iterations_consumed(self) -> int:
        return len(self.stats)

    def absorb(self, chunk: Any) -> bool:
        """Absorb one chunk (a :class:`FrameSlice` or record iterable).

        Returns ``True`` once convergence has been declared — on this
        chunk or a previous one.
        """
        if self.converged:
            return True
        if isinstance(chunk, FrameSlice):
            return self.absorb_slice(chunk)
        return self.absorb_records(chunk)

    def _next_boundary(self) -> int:
        """The next iteration count at which a check may fire.

        The smallest cadence multiple strictly past the current size
        that also satisfies the ``min_iterations`` warm-up — matching
        ``_maybe_check``'s predicate exactly, so slice splitting and
        the per-record path check at identical positions (a check CAN
        land at ``min_iterations`` itself when it is a multiple).
        """
        cadence = self.identifier.cadence
        boundary = (len(self.stats) // cadence + 1) * cadence
        floor = max(self.identifier.min_iterations, 1)
        if boundary < floor:
            boundary = -(-floor // cadence) * cadence
        return boundary

    def absorb_slice(self, chunk: FrameSlice) -> bool:
        """Absorb a columnar chunk, checking at each cadence boundary."""
        start = chunk.start
        while start < chunk.stop:
            stop = min(chunk.stop, start + self._next_boundary() - len(self.stats))
            self.stats.absorb_frame(chunk.frame, start, stop)
            start = stop
            if self._maybe_check():
                return True
        return False

    def absorb_records(self, records) -> bool:
        """Absorb a record chunk, checking at each cadence boundary."""
        for record in records:
            self.stats.absorb(record)
            if self._maybe_check():
                return True
        return False

    def _maybe_check(self) -> bool:
        consumed = len(self.stats)
        if consumed < max(self.identifier.min_iterations, 1):
            return False
        if consumed % self.identifier.cadence != 0:
            return False
        return self._check()

    def _check(self) -> bool:
        identifier = self.identifier
        consumed = len(self.stats)
        self.last_check_at = consumed
        frame = self.stats.frame()
        self.stats.statistics()  # seed the frame's group-by memo
        self.outcome = identifier.selector.select(frame)
        selection, k, projected = _unwrap(self.outcome)
        selected = tuple(
            sorted({(point.seq_len, point.tgt_len) for point in selection.points})
        )
        mean_s = projected / consumed

        # A segment-aware selector that committed changepoints reports
        # them; everything else (plain selectors, degenerate
        # single-segment streams) stays on the classic path.
        segments = (
            self.outcome.segments
            if isinstance(self.outcome, SegmentedResult)
            else ()
        )
        segments_closed = max(len(segments) - 1, 0)
        open_mean_s = segments[-1].mean_iteration_s if segments else None
        # Stability is judged on the open segment's projected mean when
        # the stream is segmented, on the whole-prefix mean otherwise.
        stability_mean_s = mean_s if open_mean_s is None else open_mean_s

        means = self.stats.mean_times()
        counts = self.stats.iteration_counts()
        drift_reset = False
        if self.previous is not None:
            if segments_closed or self.previous.segments_closed:
                # Hand off to the segmenter: a newly closed segment IS
                # the drift event; the per-SL guard would keep firing
                # forever on the very streams segmentation handles.
                drift_reset = segments_closed != self.previous.segments_closed
            else:
                drift_reset = sl_mix_drift(
                    self.previous_means,
                    self.previous_counts,
                    self.previous.iterations,
                    means,
                    counts,
                    consumed,
                    identifier.drift_rtol,
                )
            previous_mean_s = (
                self.previous.projected_mean_iteration_s
                if self.previous.open_segment_mean_s is None
                else self.previous.open_segment_mean_s
            )
            stable = (
                not drift_reset
                and _points_agree(
                    selected, self.previous.selected, identifier.sl_rtol
                )
                and abs(stability_mean_s - previous_mean_s)
                <= identifier.rtol * previous_mean_s
            )
            if drift_reset:
                # Only post-reset agreements count toward patience: the
                # drifted check itself is not evidence of stability.
                self.stable_run = 0
            else:
                self.stable_run = self.stable_run + 1 if stable else 1
        else:
            self.stable_run = 1
        self.previous_means = means
        self.previous_counts = counts

        check = ConvergenceCheck(
            iterations=consumed,
            selected=selected,
            projected_mean_iteration_s=mean_s,
            stable_checks=self.stable_run,
            drift_reset=drift_reset,
            k=k,
            segments_closed=segments_closed,
            open_segment_mean_s=open_mean_s,
        )
        self.checks.append(check)
        self.previous = check
        self.converged = self.stable_run >= identifier.patience
        return self.converged

    def finish(self) -> StreamingRun:
        consumed = len(self.stats)
        if consumed == 0:
            raise ConfigurationError("the feed produced no iterations")
        # A final check when the stream ended between boundaries, so a
        # short or exhausted feed still yields an up-to-date selection —
        # but exhaustion never *newly* declares convergence: the stream
        # merely ended, it did not demonstrate `patience` agreeing
        # boundary checks.  (A session that already converged never
        # reaches this branch: converged sessions stop absorbing, so
        # their last boundary check is still current.)
        if self.outcome is None or self.last_check_at != consumed:
            self._check()
            self.converged = False
        # Mirror the batch engine's accounting exactly (bit for bit): a
        # SeqPointResult carries its own numbers (actual = the per-SL
        # total sum); plain selections score against the frame total.
        if isinstance(self.outcome, SeqPointResult):
            selection, k = self.outcome.selection, self.outcome.k
            projected = self.outcome.projected_total_s
            actual = self.outcome.actual_total_s
            error = self.outcome.identification_error_pct
        else:
            selection, k = self.outcome, None
            projected = project_logged_time(selection)
            actual = self.stats.frame().total_time_s
            error = percent_error(projected, actual)
        return StreamingRun(
            converged=self.converged,
            iterations_consumed=consumed,
            checks=tuple(self.checks),
            selection=selection,
            k=k,
            identification_error_pct=error,
            projected_prefix_total_s=projected,
            prefix_total_s=actual,
            stats=self.stats,
            segments=(
                self.outcome.segments
                if isinstance(self.outcome, SegmentedResult)
                else ()
            ),
        )
