"""Declarative streaming requests: frozen, validated, JSON round-trip.

A :class:`StreamSpec` nests the scenario description — a full
:class:`~repro.api.spec.AnalysisSpec` — under the streaming knobs
(check cadence, convergence patience and tolerance, drift guard, feed
chunk size), so one JSON document describes an online identification
end to end, exactly as ``AnalysisSpec``/``SweepSpec`` do for their
workflows.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

from repro.api.spec import AnalysisSpec, SpecBase
from repro.errors import ConfigurationError

__all__ = ["StreamSpec"]


@dataclass(frozen=True)
class StreamSpec(SpecBase):
    """One online identification, declaratively.

    ``analysis`` names the scenario and selector; the remaining fields
    parameterise the convergence loop of
    :class:`~repro.stream.identifier.StreamingIdentifier` and the
    replay granularity of the simulated feed.
    """

    analysis: AnalysisSpec
    #: Iterations between selector re-runs.
    cadence: int = 64
    #: Consecutive agreeing checks required to declare convergence.
    patience: int = 3
    #: Relative tolerance on the projected mean iteration time.
    rtol: float = 0.005
    #: Relative per-SL mean-runtime drift that resets the window.
    drift_rtol: float = 0.02
    #: Pointwise relative tolerance when comparing selected SL sets
    #: across checks (0 = exact set equality).
    sl_rtol: float = 0.1
    #: Arrival granularity of the replayed feed.
    chunk_size: int = 1
    #: Iterations to consume before the first check.
    min_iterations: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.analysis, Mapping):
            object.__setattr__(
                self, "analysis", AnalysisSpec.from_dict(self.analysis)
            )
        if not isinstance(self.analysis, AnalysisSpec):
            raise ConfigurationError(
                f"analysis must be an AnalysisSpec (or its dict form), "
                f"got {self.analysis!r}"
            )
        for name in ("cadence", "patience", "chunk_size", "min_iterations"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigurationError(
                    f"{name} must be an int, got {value!r}"
                )
        if self.cadence < 1:
            raise ConfigurationError(f"cadence must be >= 1, got {self.cadence}")
        if self.patience < 1:
            raise ConfigurationError(
                f"patience must be >= 1, got {self.patience}"
            )
        if self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.min_iterations < 0:
            raise ConfigurationError(
                f"min_iterations cannot be negative, got {self.min_iterations}"
            )
        try:
            object.__setattr__(self, "rtol", float(self.rtol))
            object.__setattr__(self, "drift_rtol", float(self.drift_rtol))
            object.__setattr__(self, "sl_rtol", float(self.sl_rtol))
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"rtol/drift_rtol/sl_rtol must be numeric, got {self.rtol!r}/"
                f"{self.drift_rtol!r}/{self.sl_rtol!r}"
            ) from None
        if not self.rtol > 0:
            raise ConfigurationError(f"rtol must be positive, got {self.rtol}")
        if not self.drift_rtol > 0:
            raise ConfigurationError(
                f"drift_rtol must be positive, got {self.drift_rtol}"
            )
        if self.sl_rtol < 0:
            raise ConfigurationError(
                f"sl_rtol cannot be negative, got {self.sl_rtol}"
            )

    def build_identifier(self) -> Any:
        """Instantiate the convergence loop this spec describes."""
        from repro.stream.identifier import StreamingIdentifier

        return StreamingIdentifier(
            selector=self.analysis.build_selector(),
            cadence=self.cadence,
            patience=self.patience,
            rtol=self.rtol,
            drift_rtol=self.drift_rtol,
            sl_rtol=self.sl_rtol,
            min_iterations=self.min_iterations,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "analysis": self.analysis.to_dict(),
            "cadence": self.cadence,
            "patience": self.patience,
            "rtol": self.rtol,
            "drift_rtol": self.drift_rtol,
            "sl_rtol": self.sl_rtol,
            "chunk_size": self.chunk_size,
            "min_iterations": self.min_iterations,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StreamSpec":
        data = cls._validate_payload(payload)
        if "analysis" not in data:
            raise ConfigurationError("StreamSpec needs an 'analysis' object")
        return cls(**data)
