"""Declarative front door to the SeqPoint reproduction.

Describe an analysis once, as data; the engine does the wiring::

    from repro.api import AnalysisEngine, AnalysisSpec, ProjectionSpec

    spec = AnalysisSpec(network="gnmt", scale=0.1)
    result = AnalysisEngine().run(spec, ProjectionSpec(targets=(1, 3)))
    print(result.to_dict())

Components are addressed by name through string-keyed registries
(:data:`MODELS`, :data:`DATASETS`, :data:`BATCHING`,
:data:`SELECTORS`); specs round-trip through JSON; identification
epochs are shared through a content-addressed :class:`TraceCache`.
"""

from repro.api.cache import TraceCache
from repro.api.engine import (
    AnalysisEngine,
    AnalysisResult,
    ConfigProjection,
    ResolvedAnalysis,
    SelectedPointSummary,
    default_engine,
)
from repro.api.registry import BATCHING, DATASETS, MODELS, SELECTORS, Registry
from repro.api.spec import AnalysisSpec, ProjectionSpec

__all__ = [
    "AnalysisEngine",
    "AnalysisResult",
    "AnalysisSpec",
    "ProjectionSpec",
    "ConfigProjection",
    "ResolvedAnalysis",
    "SelectedPointSummary",
    "TraceCache",
    "Registry",
    "MODELS",
    "DATASETS",
    "BATCHING",
    "SELECTORS",
    "default_engine",
]
