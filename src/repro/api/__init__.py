"""Declarative front door to the SeqPoint reproduction.

Describe an analysis once, as data; the engine does the wiring::

    from repro.api import AnalysisEngine, AnalysisSpec, ProjectionSpec

    spec = AnalysisSpec(network="gnmt", scale=0.1)
    result = AnalysisEngine().run(spec, ProjectionSpec(targets=(1, 3)))
    print(result.to_dict())

Components are addressed by name through string-keyed registries
(:data:`MODELS`, :data:`DATASETS`, :data:`BATCHING`,
:data:`SELECTORS`); specs round-trip through JSON; identification
epochs are shared through a content-addressed :class:`TraceCache`.

Grids of analyses are a first-class citizen: a :class:`SweepSpec`
describes the whole grid, and :func:`run_sweep` (or
:meth:`AnalysisEngine.run_sweep`) executes it — process-parallel by
default, with every unique epoch simulated exactly once into a shared
on-disk cache::

    from repro.api import SweepSpec, run_sweep

    sweep = SweepSpec(networks=("gnmt", "ds2"), scales=(0.1,), seeds=(0, 1))
    run = run_sweep(sweep, workers=4)
    for result in run.results:
        print(result.spec.network, result.identification_error_pct)
"""

from repro.api.cache import TraceCache
from repro.api.engine import (
    AnalysisEngine,
    AnalysisResult,
    ConfigProjection,
    ResolvedAnalysis,
    SelectedPointSummary,
    StreamingAnalysisResult,
    TrafficAnalysisResult,
    TrafficProjection,
    default_engine,
    trace_key,
)
from repro.api.parallel import SweepPlan, SweepRun, SweepSpec, plan_sweep, run_sweep
from repro.api.registry import BATCHING, DATASETS, MODELS, SELECTORS, Registry
from repro.api.spec import AnalysisSpec, ProjectionSpec, SpecBase

__all__ = [
    "AnalysisEngine",
    "AnalysisResult",
    "AnalysisSpec",
    "ProjectionSpec",
    "ConfigProjection",
    "ResolvedAnalysis",
    "SelectedPointSummary",
    "StreamingAnalysisResult",
    "SpecBase",
    "SweepPlan",
    "SweepRun",
    "SweepSpec",
    "TraceCache",
    "TrafficAnalysisResult",
    "TrafficProjection",
    "Registry",
    "MODELS",
    "DATASETS",
    "BATCHING",
    "SELECTORS",
    "default_engine",
    "plan_sweep",
    "run_sweep",
    "trace_key",
]
