"""Process-parallel sweep engine: plan a grid, simulate once, fan out.

SeqPoint's headline experiments are *sweeps* — many analysis points
varying the network, corpus scale, identification config, data-order
seed, and selector (the paper's target-count and hardware-speedup
axes).  :class:`SweepSpec` describes such a grid declaratively (and
JSON round-trips, like :class:`~repro.api.spec.AnalysisSpec`);
:func:`plan_sweep` expands it and deduplicates the underlying
simulation work; :func:`run_sweep` executes the plan serially, on a
thread pool, or — the headline mode — on a
:class:`~concurrent.futures.ProcessPoolExecutor` so the numpy-heavy
selection and projection work escapes the GIL.

The process protocol is deliberately narrow: workers receive only
serialized specs (``to_dict`` payloads) and share simulated epochs
through the content-addressed on-disk
:class:`~repro.api.cache.TraceCache`, whose per-key file locks
guarantee one simulation per unique trace even when sweeps race.  The
planner schedules each unique trace key exactly once *before* the
per-point analyses fan out, so no two points ever wait on the same
epoch.  Results are bit-identical to looping
:meth:`AnalysisEngine.run` serially over the expanded grid (asserted
in ``tests/test_api_parallel.py``); ``benchmarks/bench_parallel_sweep.py``
measures the wall-clock win.

Below the trace cache, each worker process additionally shares the
process-wide compiled-plan cache (:data:`repro.models.plan.PLAN_CACHE`)
and the per-config measurement stores (:mod:`repro.hw.device`), so a
worker that simulates several grid points lowers and times each unique
``(model, shape, config)`` exactly once no matter how many points
touch it.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
from collections.abc import Mapping
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.api.cache import TraceCache
from repro.api.engine import NOISE_SIGMA, AnalysisEngine, AnalysisResult, trace_key
from repro.api.spec import (
    DEFAULT_BATCH_SIZE,
    AnalysisSpec,
    ProjectionSpec,
    SpecBase,
    _freeze_kwargs,
)
from repro.errors import ConfigurationError
from repro.models.plan import PLAN_CACHE, PlanStore

__all__ = ["SweepSpec", "SweepPlan", "SweepRun", "plan_sweep", "run_sweep", "SWEEP_MODES"]

#: Execution modes :func:`run_sweep` accepts.
SWEEP_MODES = ("serial", "thread", "process")


def _axis(name: str, value: Any, convert) -> tuple:
    """Normalise one grid axis: scalar or sequence → deduped tuple."""
    if (
        isinstance(value, (str, bytes, Mapping))
        or not hasattr(value, "__iter__")
    ):
        # A Mapping is a scalar here: the dict form of one selector
        # entry, not a sequence of its keys.
        value = (value,)
    try:
        items = tuple(convert(item) for item in value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a sequence of values, got {value!r}") from None
    if not items:
        raise ConfigurationError(f"{name} cannot be empty")
    try:
        return tuple(dict.fromkeys(items))  # dedupe, first appearance wins
    except TypeError:
        # Selector kwargs may carry unhashable (list-valued) JSON; fall
        # back to a scan so they dedupe instead of crashing.
        deduped: list = []
        for item in items:
            if item not in deduped:
                deduped.append(item)
        return tuple(deduped)


def _normalise_selector(entry: Any) -> tuple[str, tuple[tuple[str, Any], ...]]:
    """One selector axis entry → ``(name, frozen kwargs)``.

    Accepts a bare registry name, a ``{"selector": ..., "kwargs": ...}``
    mapping (the JSON form), or an already-normalised pair.
    """
    if isinstance(entry, str):
        return entry, ()
    if isinstance(entry, Mapping):
        unknown = sorted(set(entry) - {"selector", "kwargs"})
        if unknown:
            raise ConfigurationError(
                f"unknown selector entry fields: {', '.join(unknown)}; "
                "expected 'selector' and optionally 'kwargs'"
            )
        name = entry.get("selector")
        if not isinstance(name, str):
            raise ConfigurationError(f"selector entries need a string 'selector', got {name!r}")
        return name, _freeze_kwargs(entry.get("kwargs", ()))
    try:
        name, kwargs = entry
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"selector entries must be names, mappings, or (name, kwargs) pairs, got {entry!r}"
        ) from None
    if not isinstance(name, str):
        raise ConfigurationError(f"selector entries need a string name, got {name!r}")
    return name, _freeze_kwargs(kwargs)


@dataclass(frozen=True)
class SweepSpec(SpecBase):
    """A grid of analyses, declaratively.

    The expansion order is documented and stable — networks, then
    scales, then batch sizes, then identification configs, then seeds,
    then selectors, slowest axis first — so results line up with
    :meth:`expand` positionally.  ``targets`` names the configurations
    every point projects onto (``None``: each point's own
    identification config, the paper's identification-error check).
    """

    networks: tuple[str, ...]
    scales: tuple[float, ...] = (1.0,)
    batch_sizes: tuple[int, ...] = (DEFAULT_BATCH_SIZE,)
    configs: tuple[int, ...] = (1,)
    seeds: tuple[int, ...] = (0,)
    selectors: tuple[Any, ...] = ("seqpoint",)
    targets: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "networks", _axis("networks", self.networks, str))
        object.__setattr__(self, "scales", _axis("scales", self.scales, float))
        object.__setattr__(self, "batch_sizes", _axis("batch_sizes", self.batch_sizes, int))
        object.__setattr__(self, "configs", _axis("configs", self.configs, int))
        object.__setattr__(self, "seeds", _axis("seeds", self.seeds, int))
        object.__setattr__(
            self, "selectors", _axis("selectors", self.selectors, _normalise_selector)
        )
        if self.targets is not None:
            object.__setattr__(
                self, "targets", ProjectionSpec(targets=self.targets).targets
            )
        # Expand once: validates every point now (not mid-sweep) and
        # caches the tuple so planners don't pay the product again.
        object.__setattr__(self, "_points", self._expand())

    def projection(self) -> ProjectionSpec | None:
        return None if self.targets is None else ProjectionSpec(targets=self.targets)

    def expand(self) -> tuple[AnalysisSpec, ...]:
        """Every analysis point of the grid, in documented order."""
        return self._points

    def _expand(self) -> tuple[AnalysisSpec, ...]:
        points = []
        for network in self.networks:
            for scale in self.scales:
                for batch_size in self.batch_sizes:
                    for config in self.configs:
                        for seed in self.seeds:
                            for selector, kwargs in self.selectors:
                                points.append(
                                    AnalysisSpec(
                                        network=network,
                                        batch_size=batch_size,
                                        config=config,
                                        scale=scale,
                                        seed=seed,
                                        selector=selector,
                                        selector_kwargs=kwargs,
                                    )
                                )
        return tuple(points)

    def __len__(self) -> int:
        size = len(self.networks) * len(self.scales) * len(self.batch_sizes)
        return size * len(self.configs) * len(self.seeds) * len(self.selectors)

    def to_dict(self) -> dict[str, Any]:
        return {
            "networks": list(self.networks),
            "scales": list(self.scales),
            "batch_sizes": list(self.batch_sizes),
            "configs": list(self.configs),
            "seeds": list(self.seeds),
            "selectors": [
                {"selector": name, "kwargs": dict(kwargs)} for name, kwargs in self.selectors
            ],
            "targets": None if self.targets is None else list(self.targets),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        return super().from_dict(payload)  # type: ignore[return-value]


@dataclass(frozen=True)
class SweepPlan:
    """An expanded sweep with its deduplicated simulation schedule.

    ``simulations`` holds one spec per unique trace key — covering each
    point's identification config *and* every projection target — in
    first-appearance order.  Executing them before the per-point
    analyses means no analysis ever blocks on another point's epoch.
    """

    points: tuple[AnalysisSpec, ...]
    projection: ProjectionSpec | None
    simulations: tuple[AnalysisSpec, ...]
    trace_keys: tuple[str, ...]

    @property
    def unique_traces(self) -> int:
        return len(self.trace_keys)


def plan_sweep(sweep: SweepSpec, noise_sigma: float = NOISE_SIGMA) -> SweepPlan:
    """Expand ``sweep`` and dedupe the trace simulations it needs."""
    points = sweep.expand()
    projection = sweep.projection()
    schedule: dict[str, AnalysisSpec] = {}
    for point in points:
        configs = (point.config,)
        if projection is not None:
            configs = tuple(dict.fromkeys((point.config, *projection.targets)))
        for config in configs:
            simulation = replace(point, config=config)
            key = trace_key(simulation, noise_sigma)
            if key not in schedule:
                schedule[key] = simulation
    return SweepPlan(
        points=points,
        projection=projection,
        simulations=tuple(schedule.values()),
        trace_keys=tuple(schedule),
    )


@dataclass(frozen=True)
class SweepRun:
    """A sweep's results plus how they were produced."""

    sweep: SweepSpec
    projection: ProjectionSpec | None
    results: tuple[AnalysisResult, ...] = field(repr=False)
    mode: str = "serial"
    workers: int = 1
    trace_keys: tuple[str, ...] = ()

    @property
    def unique_traces(self) -> int:
        return len(self.trace_keys)

    def __len__(self) -> int:
        return len(self.results)

    def to_dict(self) -> dict[str, Any]:
        return {
            "sweep": self.sweep.to_dict(),
            "projection": None if self.projection is None else self.projection.to_dict(),
            "mode": self.mode,
            "workers": self.workers,
            "unique_traces": self.unique_traces,
            "results": [result.to_dict() for result in self.results],
        }


# -- process-pool protocol --------------------------------------------
#
# Workers are handed nothing but serialized payloads; each builds one
# engine (in the pool initializer) over the shared cache directory and
# reuses it for every task, so models, runners, and the warm kernel
# substrate amortise across the worker's share of the sweep.

_WORKER_ENGINE: AnalysisEngine | None = None


def _worker_init(
    cache_dir: str, noise_sigma: float, plan_store_dir: str | None = None
) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = AnalysisEngine(cache=TraceCache(cache_dir), noise_sigma=noise_sigma)
    if plan_store_dir is not None:
        # Every worker in the pool shares one on-disk plan store, so
        # each unique lowering happens once machine-wide, not once per
        # spawned interpreter.
        PLAN_CACHE.attach_store(PlanStore(plan_store_dir))


def _worker_simulate(payload: dict[str, Any]) -> str:
    """Simulate one unique trace into the shared disk cache."""
    spec = AnalysisSpec.from_dict(payload)
    _WORKER_ENGINE.trace_for(spec)
    return _WORKER_ENGINE.trace_key(spec)


def _worker_analyze(task: tuple[dict[str, Any], dict[str, Any] | None]) -> AnalysisResult:
    """Run one analysis point; its traces are disk hits by now."""
    spec_payload, projection_payload = task
    spec = AnalysisSpec.from_dict(spec_payload)
    projection = (
        None if projection_payload is None else ProjectionSpec.from_dict(projection_payload)
    )
    return _WORKER_ENGINE.run(spec, projection)


def _run_process(
    plan: SweepPlan,
    directory: Path,
    workers: int,
    noise_sigma: float,
    plan_store_dir: str | None = None,
) -> tuple[AnalysisResult, ...]:
    context = multiprocessing.get_context("spawn")
    projection_payload = None if plan.projection is None else plan.projection.to_dict()
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=_worker_init,
        initargs=(str(directory), noise_sigma, plan_store_dir),
    ) as pool:
        # Phase 1: every unique epoch exactly once, spread over the pool.
        list(pool.map(_worker_simulate, [spec.to_dict() for spec in plan.simulations]))
        # Phase 2: per-point analysis; results come back in input order.
        return tuple(
            pool.map(
                _worker_analyze,
                [(point.to_dict(), projection_payload) for point in plan.points],
            )
        )


def run_sweep(
    sweep: SweepSpec,
    *,
    engine: AnalysisEngine | None = None,
    mode: str = "process",
    workers: int | None = None,
    cache_dir: str | Path | None = None,
    plan_store_dir: str | Path | None = None,
) -> SweepRun:
    """Execute a sweep; results in :meth:`SweepSpec.expand` order.

    ``mode`` picks the executor: ``"process"`` (the default) fans
    analyses out to worker processes communicating through a shared
    on-disk trace cache; ``"thread"`` uses the engine's thread pool;
    ``"serial"`` loops in-process.  All three produce bit-identical
    results.

    ``engine`` supplies the cache and noise model for the serial and
    thread modes (a fresh engine over ``cache_dir`` otherwise); in
    process mode the engine's *disk* directory is shared with workers,
    and a memory-only engine falls back to ``cache_dir`` or a
    per-sweep temporary directory.

    Process workers are spawned interpreters that re-import the
    package, so they only see components registered at import time;
    sweeps over models/selectors registered dynamically at runtime
    must use ``mode="thread"`` or ``"serial"``.

    ``plan_store_dir``, when given, names a shared on-disk
    :class:`~repro.models.plan.PlanStore`: every worker (or, in
    serial/thread modes, the in-process plan cache for the duration of
    the sweep) resolves plan-cache misses through it, so each unique
    lowering happens once per machine rather than once per process.
    """
    if mode not in SWEEP_MODES:
        raise ConfigurationError(
            f"unknown sweep mode {mode!r}; expected one of: {', '.join(SWEEP_MODES)}"
        )
    if mode == "serial":
        workers = 1  # recorded in the run: exactly one executor ran
    elif workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ConfigurationError(f"workers must be positive, got {workers}")
    noise_sigma = engine.noise_sigma if engine is not None else NOISE_SIGMA
    plan = plan_sweep(sweep, noise_sigma)

    if mode == "process":
        directory = engine.cache.directory if engine is not None else None
        if directory is None and cache_dir is not None:
            directory = Path(cache_dir)
        staging = None
        if directory is None:
            staging = tempfile.TemporaryDirectory(prefix="repro-sweep-")
            directory = Path(staging.name)
        try:
            results = _run_process(
                plan,
                directory,
                workers,
                noise_sigma,
                None if plan_store_dir is None else str(plan_store_dir),
            )
        finally:
            if staging is not None:
                staging.cleanup()
    else:
        if engine is None:
            engine = AnalysisEngine(cache=TraceCache(cache_dir), noise_sigma=noise_sigma)
        # Scope the store to this sweep: restore whatever was attached
        # before (tests and nested callers rely on this not leaking).
        previous = (
            PLAN_CACHE.attach_store(PlanStore(plan_store_dir))
            if plan_store_dir is not None
            else None
        )
        try:
            if mode == "thread":
                pool_size = min(workers, len(plan.simulations)) or 1
                with ThreadPoolExecutor(max_workers=pool_size) as pool:
                    list(pool.map(engine.trace_for, plan.simulations))
                results = tuple(
                    engine.run_many(list(plan.points), plan.projection, max_workers=workers)
                )
            else:
                for simulation in plan.simulations:
                    engine.trace_for(simulation)
                results = tuple(engine.run(point, plan.projection) for point in plan.points)
        finally:
            if plan_store_dir is not None:
                PLAN_CACHE.attach_store(previous)

    return SweepRun(
        sweep=sweep,
        projection=plan.projection,
        results=results,
        mode=mode,
        workers=workers,
        trace_keys=plan.trace_keys,
    )
