"""Content-addressed trace cache: memory-first, optionally on disk.

Simulating an identification epoch is the expensive step of every
analysis; everything downstream (selection, projection, sweeps over
selectors or thresholds) is orders of magnitude cheaper.  The cache
keys each trace by a stable hash of the spec fields that determine the
simulation (:meth:`AnalysisSpec.trace_fingerprint`), so any two
requests that would simulate the same epoch share one trace — within a
process through the in-memory map, and across processes through an
optional on-disk store of the trace's JSON artefact.

Cached traces are frame-backed views: in memory they carry their
columnar :class:`~repro.train.frame.TraceFrame` (shared by every
analysis that hits the entry, including the memoised per-SL grouping),
and on disk they persist as the compact columnar
``repro.training-trace.v2`` schema.  Cache directories written before
the columnar refactor (v1 artefacts) load transparently.

Hit/miss counters make the reuse measurable (see
``benchmarks/bench_api_cache.py``); per-key locks make concurrent
``get_or_compute`` calls for the same key simulate once, which is what
lets :meth:`AnalysisEngine.run_many` deduplicate shared work.

Long-running services (:mod:`repro.serve`) keep one cache alive across
many requests, so the in-memory tier is bounded: construct with
``max_bytes`` and/or ``max_entries`` and the cache accounts every
resident trace's columnar footprint, admits new entries, and evicts
least-recently-used ones until it is back under budget.  Eviction only
drops the *memory* residency — the on-disk artefact (when a directory
is configured) remains the backing store, so an evicted key reloads as
a disk hit instead of re-simulating.  All counters (hits, misses,
evictions, resident bytes) mutate under one lock, so concurrent
sessions hammering a shared cache report exact numbers.

Disk-backed caches additionally coordinate *across processes*: writes
are atomic (temp file + rename, so readers never observe a partial
artefact) and ``get_or_compute`` holds a per-key advisory file lock for
the duration of a miss, so two worker processes racing on one key
produce exactly one simulation — the loser blocks, then loads the
winner's artefact as a disk hit.  That protocol is what lets the
process-parallel sweep executor (:mod:`repro.api.parallel`) fan workers
out over one shared cache directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from collections.abc import Callable, Iterator, Mapping
from contextlib import contextmanager
from pathlib import Path
from typing import Any

try:  # POSIX advisory locks; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.train.trace import TrainingTrace

__all__ = ["TraceCache", "trace_nbytes"]

#: Flat per-profile estimate: pooled profiles carry a CounterSet, a
#: group-times dict, and a kernel-name set — small next to the columns.
_PROFILE_NBYTES = 512


def trace_nbytes(trace: TrainingTrace) -> int:
    """Approximate in-memory footprint of a trace's columnar frame."""
    frame = trace.frame()
    columns = (
        frame.index, frame.epoch, frame.seq_len,
        frame.tgt_len, frame.time_s, frame.profile_id,
    )
    return sum(int(column.nbytes) for column in columns) + (
        _PROFILE_NBYTES * len(frame.profiles)
    )


class TraceCache:
    """Keyed store of :class:`TrainingTrace` artefacts.

    ``max_bytes``/``max_entries`` bound the in-memory tier (LRU
    eviction, counted in ``evictions``); ``None`` means unbounded, the
    historical behaviour.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        max_bytes: int | None = None,
        max_entries: int | None = None,
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if max_entries is not None and max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.directory = Path(directory) if directory is not None else None
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        #: key -> (trace, nbytes), least-recently-used first.
        self._memory: OrderedDict[str, tuple[TrainingTrace, int]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes = 0
        self._lock = threading.Lock()
        self._key_locks: dict[str, threading.Lock] = {}

    @staticmethod
    def key_for(fingerprint: Mapping[str, Any]) -> str:
        """Stable content hash of a fingerprint mapping."""
        canonical = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"{key}.json"

    def _admit(self, key: str, trace: TrainingTrace) -> None:
        """Insert ``key`` as most-recent and evict back under budget.

        Caller holds ``self._lock``.  Eviction walks LRU-first and may,
        when a single trace exceeds ``max_bytes`` on its own, refuse the
        new entry itself — admission control for pathological inputs.
        """
        size = trace_nbytes(trace)
        previous = self._memory.pop(key, None)
        if previous is not None:
            self.bytes -= previous[1]
        self._memory[key] = (trace, size)
        self.bytes += size
        while self._memory and (
            (self.max_bytes is not None and self.bytes > self.max_bytes)
            or (self.max_entries is not None and len(self._memory) > self.max_entries)
        ):
            _, (_, evicted_size) = self._memory.popitem(last=False)
            self.bytes -= evicted_size
            self.evictions += 1

    def get(self, key: str) -> TrainingTrace | None:
        """Look ``key`` up (memory, then disk), counting the outcome."""
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return entry[0]
        path = self._path(key)
        if path is not None and path.exists():
            trace = TrainingTrace.load(path)
            with self._lock:
                self._admit(key, trace)
                self.hits += 1
            return trace
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, trace: TrainingTrace) -> None:
        with self._lock:
            self._admit(key, trace)
        path = self._path(key)
        if path is not None:
            # Write-then-rename so a concurrent reader either sees the
            # previous artefact or the complete new one, never a prefix.
            staging = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            trace.save(staging)
            os.replace(staging, path)

    @contextmanager
    def _file_lock(self, key: str) -> Iterator[None]:
        """Exclusive inter-process lock for ``key`` (disk caches only)."""
        if self.directory is None or fcntl is None:
            yield
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        lock_path = self.directory / f"{key}.lock"
        with lock_path.open("a") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def get_or_compute(
        self, key: str, compute: Callable[[], TrainingTrace]
    ) -> TrainingTrace:
        """Return the cached trace, computing and storing it on a miss.

        Concurrent callers with the same key serialise on a per-key
        lock — threads on an in-process lock, processes (for disk-backed
        caches) on an advisory file lock — so the expensive simulation
        runs exactly once; every other caller observes a hit.
        """
        with self._lock:
            # Memory hits skip the locks entirely: entries are immutable
            # once stored and writes land by atomic rename, so the fast
            # path can never observe a partial artefact.
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return entry[0]
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock, self._file_lock(key):
            trace = self.get(key)
            if trace is None:
                trace = compute()
                self.put(key, trace)
            return trace

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._memory),
                "evictions": self.evictions,
                "bytes": self.bytes,
            }

    def clear(self) -> None:
        """Drop in-memory entries and counters (disk files are kept)."""
        with self._lock:
            self._memory.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        path = self._path(key) if isinstance(key, str) else None
        return path is not None and path.exists()
