"""Content-addressed trace cache: memory-first, optionally on disk.

Simulating an identification epoch is the expensive step of every
analysis; everything downstream (selection, projection, sweeps over
selectors or thresholds) is orders of magnitude cheaper.  The cache
keys each trace by a stable hash of the spec fields that determine the
simulation (:meth:`AnalysisSpec.trace_fingerprint`), so any two
requests that would simulate the same epoch share one trace — within a
process through the in-memory map, and across processes through an
optional on-disk store of the trace's JSON artefact.

Cached traces are frame-backed views: in memory they carry their
columnar :class:`~repro.train.frame.TraceFrame` (shared by every
analysis that hits the entry, including the memoised per-SL grouping),
and on disk they persist as binary columnar ``.npt`` containers whose
cold load is an mmap plus dtype views — concurrent sweep workers and
serve sessions reading one entry share page cache instead of each
parsing a private copy, and byte accounting uses the real file size.
Cache directories written before the binary format (v2/v1 JSON
artefacts) load transparently; new writes are always binary.

Hit/miss counters make the reuse measurable (see
``benchmarks/bench_api_cache.py``); per-key locks make concurrent
``get_or_compute`` calls for the same key simulate once, which is what
lets :meth:`AnalysisEngine.run_many` deduplicate shared work.

Long-running services (:mod:`repro.serve`) keep one cache alive across
many requests, so the in-memory tier is bounded: construct with
``max_bytes`` and/or ``max_entries`` and the cache accounts every
resident trace's columnar footprint, admits new entries, and evicts
least-recently-used ones until it is back under budget.  Eviction only
drops the *memory* residency — the on-disk artefact (when a directory
is configured) remains the backing store, so an evicted key reloads as
a disk hit instead of re-simulating.  All counters (hits, misses,
evictions, resident bytes) mutate under one lock, so concurrent
sessions hammering a shared cache report exact numbers.

Disk-backed caches additionally coordinate *across processes*: writes
are atomic (temp file + rename, so readers never observe a partial
artefact) and ``get_or_compute`` holds a per-key advisory file lock for
the duration of a miss, so two worker processes racing on one key
produce exactly one simulation — the loser blocks, then loads the
winner's artefact as a disk hit.  That protocol is what lets the
process-parallel sweep executor (:mod:`repro.api.parallel`) fan workers
out over one shared cache directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from collections.abc import Callable, Iterator, Mapping
from contextlib import contextmanager
from pathlib import Path
from typing import Any

from repro.train.trace import TrainingTrace
from repro.util.filelock import file_lock

__all__ = ["TraceCache", "trace_nbytes"]

#: Flat per-profile estimate: pooled profiles carry a CounterSet, a
#: group-times dict, and a kernel-name set — small next to the columns.
_PROFILE_NBYTES = 512


def trace_nbytes(trace: TrainingTrace) -> int:
    """Footprint of a trace's columnar frame, in bytes.

    Frames backed by a binary container report the container's real
    on-disk size (the columns are views into that mapping, so the
    mapping *is* the footprint).  Purely in-memory frames fall back to
    summing column buffers plus a flat per-profile estimate.
    """
    frame = trace.frame()
    storage = frame.storage
    if storage is not None:
        return int(storage.nbytes)
    columns = (
        frame.index, frame.epoch, frame.seq_len,
        frame.tgt_len, frame.time_s, frame.profile_id,
    )
    return sum(int(column.nbytes) for column in columns) + (
        _PROFILE_NBYTES * len(frame.profiles)
    )


class TraceCache:
    """Keyed store of :class:`TrainingTrace` artefacts.

    ``max_bytes``/``max_entries`` bound the in-memory tier (LRU
    eviction, counted in ``evictions``); ``None`` means unbounded, the
    historical behaviour.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        max_bytes: int | None = None,
        max_entries: int | None = None,
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if max_entries is not None and max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.directory = Path(directory) if directory is not None else None
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        #: key -> (trace, nbytes), least-recently-used first.
        self._memory: OrderedDict[str, tuple[TrainingTrace, int]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes = 0
        self._lock = threading.Lock()
        self._key_locks: dict[str, threading.Lock] = {}
        #: format -> {"count", "seconds", "max_s"} for cold disk loads.
        self._loads: dict[str, dict[str, float]] = {}

    @staticmethod
    def key_for(fingerprint: Mapping[str, Any]) -> str:
        """Stable content hash of a fingerprint mapping."""
        canonical = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path | None:
        """Legacy JSON artefact path (read-only compatibility tier)."""
        if self.directory is None:
            return None
        return self.directory / f"{key}.json"

    def _npt_path(self, key: str) -> Path | None:
        """Binary columnar artefact path (the write format)."""
        if self.directory is None:
            return None
        return self.directory / f"{key}.npt"

    def _admit(self, key: str, trace: TrainingTrace, size: int | None = None) -> None:
        """Insert ``key`` as most-recent and evict back under budget.

        Caller holds ``self._lock``.  Eviction walks LRU-first and may,
        when a single trace exceeds ``max_bytes`` on its own, refuse the
        new entry itself — admission control for pathological inputs.
        """
        if size is None:
            size = trace_nbytes(trace)
        previous = self._memory.pop(key, None)
        if previous is not None:
            self.bytes -= previous[1]
        self._memory[key] = (trace, size)
        self.bytes += size
        while self._memory and (
            (self.max_bytes is not None and self.bytes > self.max_bytes)
            or (self.max_entries is not None and len(self._memory) > self.max_entries)
        ):
            _, (_, evicted_size) = self._memory.popitem(last=False)
            self.bytes -= evicted_size
            self.evictions += 1

    def _record_load(self, fmt: str, seconds: float) -> None:
        """Account one cold disk load (caller holds ``self._lock``)."""
        entry = self._loads.setdefault(
            fmt, {"count": 0, "seconds": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        entry["seconds"] += seconds
        entry["max_s"] = max(entry["max_s"], seconds)

    def get(self, key: str) -> TrainingTrace | None:
        """Look ``key`` up (memory, then disk), counting the outcome.

        The disk tier prefers the binary ``.npt`` artefact (mmap +
        views) and falls back to legacy JSON; cold-load latency is
        recorded per format for :meth:`storage_stats`.
        """
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return entry[0]
        for path, fmt in ((self._npt_path(key), "binary"), (self._path(key), "json")):
            if path is not None and path.exists():
                started = time.perf_counter()
                trace = TrainingTrace.load(path)
                elapsed = time.perf_counter() - started
                with self._lock:
                    self._admit(key, trace)
                    self._record_load(fmt, elapsed)
                    self.hits += 1
                return trace
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, trace: TrainingTrace) -> None:
        path = self._npt_path(key)
        size = None
        if path is not None:
            # Write-then-rename so a concurrent reader either sees the
            # previous artefact or the complete new one, never a prefix.
            staging = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            trace.save(staging)
            # Honest byte accounting: charge the real artefact size.
            size = staging.stat().st_size
            os.replace(staging, path)
        with self._lock:
            self._admit(key, trace, size)

    @contextmanager
    def _file_lock(self, key: str) -> Iterator[None]:
        """Exclusive inter-process lock for ``key`` (disk caches only)."""
        with file_lock(self.directory, key):
            yield

    def get_or_compute(
        self, key: str, compute: Callable[[], TrainingTrace]
    ) -> TrainingTrace:
        """Return the cached trace, computing and storing it on a miss.

        Concurrent callers with the same key serialise on a per-key
        lock — threads on an in-process lock, processes (for disk-backed
        caches) on an advisory file lock — so the expensive simulation
        runs exactly once; every other caller observes a hit.
        """
        with self._lock:
            # Memory hits skip the locks entirely: entries are immutable
            # once stored and writes land by atomic rename, so the fast
            # path can never observe a partial artefact.
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return entry[0]
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock, self._file_lock(key):
            trace = self.get(key)
            if trace is None:
                trace = compute()
                self.put(key, trace)
            return trace

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._memory),
                "evictions": self.evictions,
                "bytes": self.bytes,
            }

    def storage_stats(self) -> dict[str, Any]:
        """Disk-tier observability: entry counts and cold-load latency.

        Separate from :meth:`stats` (whose exact shape is API) — this
        reports per-format on-disk entry counts and the cold-load
        counters accumulated by :meth:`get`.
        """
        disk_entries = {"json": 0, "binary": 0}
        if self.directory is not None and self.directory.is_dir():
            disk_entries["json"] = sum(1 for _ in self.directory.glob("*.json"))
            disk_entries["binary"] = sum(1 for _ in self.directory.glob("*.npt"))
        with self._lock:
            cold_loads = {fmt: dict(entry) for fmt, entry in self._loads.items()}
        return {
            "directory": None if self.directory is None else str(self.directory),
            "disk_entries": disk_entries,
            "cold_loads": cold_loads,
        }

    def clear(self) -> None:
        """Drop in-memory entries and counters (disk files are kept)."""
        with self._lock:
            self._memory.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.bytes = 0
            self._loads = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        if not isinstance(key, str):
            return False
        for path in (self._npt_path(key), self._path(key)):
            if path is not None and path.exists():
                return True
        return False
