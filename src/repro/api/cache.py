"""Content-addressed trace cache: memory-first, optionally on disk.

Simulating an identification epoch is the expensive step of every
analysis; everything downstream (selection, projection, sweeps over
selectors or thresholds) is orders of magnitude cheaper.  The cache
keys each trace by a stable hash of the spec fields that determine the
simulation (:meth:`AnalysisSpec.trace_fingerprint`), so any two
requests that would simulate the same epoch share one trace — within a
process through the in-memory map, and across processes through an
optional on-disk store of the trace's JSON artefact.

Cached traces are frame-backed views: in memory they carry their
columnar :class:`~repro.train.frame.TraceFrame` (shared by every
analysis that hits the entry, including the memoised per-SL grouping),
and on disk they persist as the compact columnar
``repro.training-trace.v2`` schema.  Cache directories written before
the columnar refactor (v1 artefacts) load transparently.

Hit/miss counters make the reuse measurable (see
``benchmarks/bench_api_cache.py``); per-key locks make concurrent
``get_or_compute`` calls for the same key simulate once, which is what
lets :meth:`AnalysisEngine.run_many` deduplicate shared work.

Disk-backed caches additionally coordinate *across processes*: writes
are atomic (temp file + rename, so readers never observe a partial
artefact) and ``get_or_compute`` holds a per-key advisory file lock for
the duration of a miss, so two worker processes racing on one key
produce exactly one simulation — the loser blocks, then loads the
winner's artefact as a disk hit.  That protocol is what lets the
process-parallel sweep executor (:mod:`repro.api.parallel`) fan workers
out over one shared cache directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections.abc import Callable, Iterator, Mapping
from contextlib import contextmanager
from pathlib import Path
from typing import Any

try:  # POSIX advisory locks; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.train.trace import TrainingTrace

__all__ = ["TraceCache"]


class TraceCache:
    """Keyed store of :class:`TrainingTrace` artefacts."""

    def __init__(self, directory: str | Path | None = None):
        self.directory = Path(directory) if directory is not None else None
        self._memory: dict[str, TrainingTrace] = {}
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._key_locks: dict[str, threading.Lock] = {}

    @staticmethod
    def key_for(fingerprint: Mapping[str, Any]) -> str:
        """Stable content hash of a fingerprint mapping."""
        canonical = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"{key}.json"

    def get(self, key: str) -> TrainingTrace | None:
        """Look ``key`` up (memory, then disk), counting the outcome."""
        with self._lock:
            trace = self._memory.get(key)
        if trace is not None:
            with self._lock:
                self.hits += 1
            return trace
        path = self._path(key)
        if path is not None and path.exists():
            trace = TrainingTrace.load(path)
            with self._lock:
                self._memory[key] = trace
                self.hits += 1
            return trace
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, trace: TrainingTrace) -> None:
        with self._lock:
            self._memory[key] = trace
        path = self._path(key)
        if path is not None:
            # Write-then-rename so a concurrent reader either sees the
            # previous artefact or the complete new one, never a prefix.
            staging = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            trace.save(staging)
            os.replace(staging, path)

    @contextmanager
    def _file_lock(self, key: str) -> Iterator[None]:
        """Exclusive inter-process lock for ``key`` (disk caches only)."""
        if self.directory is None or fcntl is None:
            yield
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        lock_path = self.directory / f"{key}.lock"
        with lock_path.open("a") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def get_or_compute(
        self, key: str, compute: Callable[[], TrainingTrace]
    ) -> TrainingTrace:
        """Return the cached trace, computing and storing it on a miss.

        Concurrent callers with the same key serialise on a per-key
        lock — threads on an in-process lock, processes (for disk-backed
        caches) on an advisory file lock — so the expensive simulation
        runs exactly once; every other caller observes a hit.
        """
        with self._lock:
            # Memory hits skip the locks entirely: entries are immutable
            # once stored and writes land by atomic rename, so the fast
            # path can never observe a partial artefact.
            trace = self._memory.get(key)
            if trace is not None:
                self.hits += 1
                return trace
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock, self._file_lock(key):
            trace = self.get(key)
            if trace is None:
                trace = compute()
                self.put(key, trace)
            return trace

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._memory),
            }

    def clear(self) -> None:
        """Drop in-memory entries and counters (disk files are kept)."""
        with self._lock:
            self._memory.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        path = self._path(key) if isinstance(key, str) else None
        return path is not None and path.exists()
