"""The analysis engine: spec in, selection + projections out.

:class:`AnalysisEngine` is the one resolution path from a declarative
:class:`~repro.api.spec.AnalysisSpec` to simulated results.  It builds
the model, corpus, and batching pipeline through the registries, runs
the identification epoch through the :class:`TraceCache`, applies the
named selector, and projects epoch time/throughput onto any requested
Table II configurations.  ``repro.experiments.setups`` delegates here,
so the experiment harness, the CLI, and programmatic callers all share
one cache and produce identical numbers for identical requests.

``run_many`` fans a batch of specs out over a thread pool; the cache's
per-key locking deduplicates shared simulations, so e.g. a sweep of
five selectors over one scenario costs one epoch, not five.  For grids
large enough that the GIL is the bottleneck, ``run_sweep`` hands a
declarative :class:`~repro.api.parallel.SweepSpec` to the
process-parallel executor in :mod:`repro.api.parallel`.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field as dataclass_field, replace
from threading import Lock
from typing import Any

from repro.api.cache import TraceCache
from repro.api.registry import BATCHING, DATASETS, MODELS, build_batching
from repro.api.spec import AnalysisSpec, ProjectionSpec
from repro.core.projection import (
    project_epoch_time,
    project_logged_time,
    project_throughput,
    uplift_pct,
)
from repro.core.selection import Selection
from repro.core.seqpoint import SeqPointResult
from repro.data.batching import BatchingPolicy
from repro.errors import ConfigurationError
from repro.data.dataset import SequenceDataset
from repro.hw.config import paper_config
from repro.hw.device import GpuDevice
from repro.models.spec import Model
from repro.train.frame import TraceFrame
from repro.train.runner import TrainingRunSimulator
from repro.train.trace import TrainingTrace
from repro.util.stats import percent_error

__all__ = [
    "AnalysisEngine",
    "AnalysisResult",
    "ConfigProjection",
    "SelectedPointSummary",
    "StreamingAnalysisResult",
    "TrafficAnalysisResult",
    "TrafficProjection",
    "ResolvedAnalysis",
    "default_engine",
    "trace_key",
    "EVAL_FRACTION",
    "NOISE_SIGMA",
]

#: Held-out split for the evaluation phase (paper §IV-C1, ~2-3%).
EVAL_FRACTION = 0.02
#: Seed of the train/eval split — fixed so every config sees one corpus.
SPLIT_SEED = 7
#: Run-to-run measurement jitter of real hardware (log-normal sigma).
#: Deterministic per (config, iteration), so analyses stay exactly
#: reproducible while error magnitudes stay honest.
NOISE_SIGMA = 0.02


def trace_key(spec: AnalysisSpec, noise_sigma: float = NOISE_SIGMA) -> str:
    """Content-address of the identification trace a spec implies.

    Module-level so planners (:mod:`repro.api.parallel`) can dedupe
    simulation work without instantiating an engine; the engine method
    delegates here with its own noise model.
    """
    fingerprint = dict(spec.trace_fingerprint())
    fingerprint["noise_sigma"] = noise_sigma
    return TraceCache.key_for(fingerprint)


@dataclass(frozen=True)
class ResolvedAnalysis:
    """A scenario's named parts, resolved to concrete objects.

    Shared by every spec with the same (network, dataset, batching,
    batch_size, scale) — config, seed, and selector do not change what
    resolution produces.
    """

    model: Model
    train_data: SequenceDataset
    eval_data: SequenceDataset
    batching: BatchingPolicy


@dataclass(frozen=True)
class SelectedPointSummary:
    """One selected iteration, reduced to its serializable essentials."""

    seq_len: int
    tgt_len: int | None
    weight: float
    time_s: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq_len": self.seq_len,
            "tgt_len": self.tgt_len,
            "weight": self.weight,
            "time_s": self.time_s,
        }


@dataclass(frozen=True)
class ConfigProjection:
    """Projected vs actual behaviour on one Table II configuration."""

    config: int
    config_name: str
    projected_time_s: float
    actual_time_s: float
    error_pct: float
    projected_throughput: float
    actual_throughput: float
    #: Throughput uplift relative to the spec's identification config.
    projected_uplift_pct: float
    actual_uplift_pct: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "config": self.config,
            "config_name": self.config_name,
            "projected_time_s": self.projected_time_s,
            "actual_time_s": self.actual_time_s,
            "error_pct": self.error_pct,
            "projected_throughput": self.projected_throughput,
            "actual_throughput": self.actual_throughput,
            "projected_uplift_pct": self.projected_uplift_pct,
            "actual_uplift_pct": self.actual_uplift_pct,
        }


@dataclass(frozen=True)
class AnalysisResult:
    """Everything one analysis produced, JSON-serializable throughout.

    ``selection`` keeps the full :class:`Selection` for programmatic
    reuse (further projections, export); ``to_dict`` emits the
    summarised ``points`` instead so results serialise compactly.
    """

    spec: AnalysisSpec
    selection: Selection
    points: tuple[SelectedPointSummary, ...]
    iterations: int
    unique_seq_lens: int
    #: Bins used by SeqPoint; ``None`` for selectors without binning.
    k: int | None
    identification_error_pct: float
    projected_total_s: float
    actual_total_s: float
    projections: tuple[ConfigProjection, ...]

    @property
    def method(self) -> str:
        return self.selection.method

    def __len__(self) -> int:
        return len(self.points)

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "method": self.method,
            "points": [point.to_dict() for point in self.points],
            "iterations": self.iterations,
            "unique_seq_lens": self.unique_seq_lens,
            "iterations_to_profile": self.selection.iterations_to_profile,
            "k": self.k,
            "identification_error_pct": self.identification_error_pct,
            "projected_total_s": self.projected_total_s,
            "actual_total_s": self.actual_total_s,
            "projections": [p.to_dict() for p in self.projections],
        }


@dataclass(frozen=True)
class StreamingAnalysisResult:
    """One online identification, with its full-epoch ground truth.

    The streaming path consumed ``iterations_consumed`` of the
    ``epoch_iterations``-long logged epoch; ``projected_epoch_time_s``
    extrapolates the converged prefix projection to the full epoch and
    ``projection_error_pct`` scores it against the epoch's actual
    time — the number the paper's threshold ``e`` bounds for the batch
    pipeline.  ``matches_batch_selection`` reports whether the early
    stop selected the same ``(seq_len, tgt_len)`` set the batch
    analysis of the complete epoch picks.
    """

    spec: "Any"  # StreamSpec (typed loosely to keep the import lazy)
    converged: bool
    iterations_consumed: int
    epoch_iterations: int
    checks: tuple["Any", ...]
    points: tuple[SelectedPointSummary, ...]
    k: int | None
    identification_error_pct: float
    projected_epoch_time_s: float
    actual_total_s: float
    projection_error_pct: float
    matches_batch_selection: bool
    batch_identification_error_pct: float
    selection: Selection = dataclass_field(repr=False)

    @property
    def method(self) -> str:
        return self.selection.method

    @property
    def fraction_consumed(self) -> float:
        return self.iterations_consumed / self.epoch_iterations

    def __len__(self) -> int:
        return len(self.points)

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "method": self.method,
            "converged": self.converged,
            "iterations_consumed": self.iterations_consumed,
            "epoch_iterations": self.epoch_iterations,
            "fraction_consumed": self.fraction_consumed,
            "checks": [check.to_dict() for check in self.checks],
            "points": [point.to_dict() for point in self.points],
            "k": self.k,
            "identification_error_pct": self.identification_error_pct,
            "projected_epoch_time_s": self.projected_epoch_time_s,
            "actual_total_s": self.actual_total_s,
            "projection_error_pct": self.projection_error_pct,
            "matches_batch_selection": self.matches_batch_selection,
            "batch_identification_error_pct": (
                self.batch_identification_error_pct
            ),
        }


@dataclass(frozen=True)
class TrafficProjection:
    """Projected vs actual serving time on one Table II configuration.

    The batch composition is fixed by the base run (the dynamic
    batcher sees arrivals, not device speed), so a target config
    re-times the *same* batches; the projection prices only the
    selected (batch, SL) cells on the target device.
    """

    config: int
    config_name: str
    projected_serving_s: float
    actual_serving_s: float
    error_pct: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "config": self.config,
            "config_name": self.config_name,
            "projected_serving_s": self.projected_serving_s,
            "actual_serving_s": self.actual_serving_s,
            "error_pct": self.error_pct,
        }


@dataclass(frozen=True)
class TrafficAnalysisResult:
    """One traffic-driven serving run, identified and projected.

    ``actual_total_s`` is the run's total device (serving compute)
    time; ``makespan_s`` adds the queueing story (when the last batch
    finished).  ``latency``/``queue_wait`` are SLO-style histogram
    snapshots over per-request end-to-end latency and device-queue
    wait.  The streaming block reports how the online identifier fared
    against the live batch stream — including how often the drift
    guard reset on mixture shifts.
    """

    spec: "Any"  # TrafficSpec (typed loosely to keep the import lazy)
    requests: int
    batches: int
    unique_seq_lens: int
    points: tuple[SelectedPointSummary, ...]
    k: int | None
    identification_error_pct: float
    projected_total_s: float
    actual_total_s: float
    makespan_s: float
    latency: dict[str, Any]
    queue_wait: dict[str, Any]
    converged: bool
    iterations_consumed: int
    checks: tuple["Any", ...]
    drift_resets: int
    streaming_projection_error_pct: float
    matches_batch_selection: bool
    projections: tuple[TrafficProjection, ...]
    selection: Selection = dataclass_field(repr=False)

    @property
    def method(self) -> str:
        return self.selection.method

    def __len__(self) -> int:
        return len(self.points)

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "method": self.method,
            "requests": self.requests,
            "batches": self.batches,
            "unique_seq_lens": self.unique_seq_lens,
            "points": [point.to_dict() for point in self.points],
            "k": self.k,
            "identification_error_pct": self.identification_error_pct,
            "projected_total_s": self.projected_total_s,
            "actual_total_s": self.actual_total_s,
            "makespan_s": self.makespan_s,
            "latency": self.latency,
            "queue_wait": self.queue_wait,
            "converged": self.converged,
            "iterations_consumed": self.iterations_consumed,
            "checks": [check.to_dict() for check in self.checks],
            "drift_resets": self.drift_resets,
            "streaming_projection_error_pct": (
                self.streaming_projection_error_pct
            ),
            "matches_batch_selection": self.matches_batch_selection,
            "projections": [p.to_dict() for p in self.projections],
        }


class AnalysisEngine:
    """Resolves and executes :class:`AnalysisSpec` requests."""

    def __init__(
        self,
        cache: TraceCache | None = None,
        noise_sigma: float = NOISE_SIGMA,
    ):
        self.cache = cache if cache is not None else TraceCache()
        self.noise_sigma = noise_sigma
        self._resolved: dict[tuple, ResolvedAnalysis] = {}
        self._runners: dict[tuple, TrainingRunSimulator] = {}
        self._state_lock = Lock()

    # -- resolution ---------------------------------------------------

    def resolve(self, spec: AnalysisSpec) -> ResolvedAnalysis:
        """Build (and memoise) the spec's model, data, and pipeline."""
        key = (
            spec.network, spec.dataset, spec.batching,
            spec.batch_size, spec.scale,
        )
        with self._state_lock:
            resolved = self._resolved.get(key)
            if resolved is None:
                corpus = DATASETS.create(spec.dataset, scale=spec.scale)
                train, evaluation = corpus.split(EVAL_FRACTION, seed=SPLIT_SEED)
                resolved = ResolvedAnalysis(
                    model=MODELS.create(spec.network),
                    train_data=train,
                    eval_data=evaluation,
                    batching=build_batching(
                        spec.batching, spec.batch_size, dataset=spec.dataset
                    ),
                )
                self._resolved[key] = resolved
            return resolved

    def runner_for(self, spec: AnalysisSpec) -> TrainingRunSimulator:
        """Training simulator for the spec's scenario and config."""
        resolved = self.resolve(spec)
        key = (
            spec.network, spec.dataset, spec.batching,
            spec.batch_size, spec.scale, spec.config, spec.seed,
        )
        with self._state_lock:
            runner = self._runners.get(key)
            if runner is None:
                runner = TrainingRunSimulator(
                    model=resolved.model,
                    dataset=resolved.train_data,
                    batching=resolved.batching,
                    device=GpuDevice(paper_config(spec.config)),
                    eval_dataset=resolved.eval_data,
                    noise_sigma=self.noise_sigma,
                    # One dataset and one batching plan; each config is
                    # a separate physical run with its own jitter.
                    seed=spec.seed,
                    noise_seed=spec.config,
                )
                self._runners[key] = runner
            return runner

    def trace_key(self, spec: AnalysisSpec) -> str:
        """Cache key of the spec's identification trace."""
        return trace_key(spec, self.noise_sigma)

    def trace_for(self, spec: AnalysisSpec) -> TrainingTrace:
        """The spec's simulated identification epoch, through the cache.

        The returned trace is a thin view over a columnar
        :class:`TraceFrame`; no per-iteration records are materialised
        unless a caller explicitly touches ``.records``.
        """
        return self.cache.get_or_compute(
            self.trace_key(spec),
            lambda: self.runner_for(spec).run_epoch(include_eval=True),
        )

    def frame_for(self, spec: AnalysisSpec) -> TraceFrame:
        """The identification epoch's columnar frame (cached)."""
        return self.trace_for(spec).frame()

    # -- execution ----------------------------------------------------

    def _select(
        self, spec: AnalysisSpec, trace: TrainingTrace
    ) -> tuple[Selection, int | None, float, float]:
        """Apply the spec's selector; uniform numbers for any method.

        Selectors receive the columnar frame, so a sweep of selectors
        over one scenario shares a single vectorized per-SL grouping.
        """
        outcome = spec.build_selector().select(trace.frame())
        if isinstance(outcome, SeqPointResult):
            return (
                outcome.selection,
                outcome.k,
                outcome.identification_error_pct,
                outcome.projected_total_s,
            )
        projected = project_logged_time(outcome)
        error = percent_error(projected, trace.total_time_s)
        return outcome, None, error, projected

    def _project(
        self,
        spec: AnalysisSpec,
        selection: Selection,
        targets: tuple[int, ...],
    ) -> tuple[ConfigProjection, ...]:
        base_projected_tp = project_throughput(selection, self.runner_for(spec))
        base_actual_tp = self.trace_for(spec).throughput

        projections = []
        for target in targets:
            target_spec = replace(spec, config=target)
            target_runner = self.runner_for(target_spec)
            target_trace = self.trace_for(target_spec)
            projected_s = project_epoch_time(selection, target_runner)
            projected_tp = project_throughput(selection, target_runner)
            actual_tp = target_trace.throughput
            projections.append(
                ConfigProjection(
                    config=target,
                    config_name=paper_config(target).name,
                    projected_time_s=projected_s,
                    actual_time_s=target_trace.total_time_s,
                    error_pct=percent_error(
                        projected_s, target_trace.total_time_s
                    ),
                    projected_throughput=projected_tp,
                    actual_throughput=actual_tp,
                    projected_uplift_pct=uplift_pct(
                        base_projected_tp, projected_tp
                    ),
                    actual_uplift_pct=uplift_pct(base_actual_tp, actual_tp),
                )
            )
        return tuple(projections)

    def run(
        self,
        spec: AnalysisSpec,
        projection: ProjectionSpec | None = None,
    ) -> AnalysisResult:
        """Simulate, select, and project one analysis request.

        Without a ``projection`` the result projects onto the spec's
        own identification config (the paper's identification-error
        check); pass ``ProjectionSpec()`` for all five Table II configs.
        """
        trace = self.trace_for(spec)
        selection, k, error, projected = self._select(spec, trace)
        targets = (
            projection.targets if projection is not None else (spec.config,)
        )
        return AnalysisResult(
            spec=spec,
            selection=selection,
            points=tuple(
                SelectedPointSummary(
                    seq_len=point.seq_len,
                    tgt_len=point.tgt_len,
                    weight=point.weight,
                    time_s=point.record.time_s,
                )
                for point in selection.points
            ),
            iterations=len(trace),
            unique_seq_lens=len(trace.unique_seq_lens()),
            k=k,
            identification_error_pct=error,
            projected_total_s=projected,
            actual_total_s=trace.total_time_s,
            projections=self._project(spec, selection, targets),
        )

    def run_many(
        self,
        specs: list[AnalysisSpec] | tuple[AnalysisSpec, ...],
        projection: ProjectionSpec | None = None,
        max_workers: int | None = None,
    ) -> list[AnalysisResult]:
        """Run a batch of specs concurrently; results in input order.

        Shared work deduplicates through the trace cache: specs that
        differ only in selector reuse one identification epoch.
        """
        specs = list(specs)
        if not specs:
            return []
        if max_workers is None:
            max_workers = min(len(specs), os.cpu_count() or 4)
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(lambda s: self.run(s, projection), specs))

    def plan_cache_stats(self) -> dict[str, int]:
        """Hit/miss/entry counters of the process-wide plan cache.

        Every runner this engine builds compiles kernel schedules
        through :data:`repro.models.plan.PLAN_CACHE`, so identical
        shapes (across configs' shared scenarios, across seeds, and
        across sweep points within one process) are lowered exactly
        once.  Exposed for observability and cache-behaviour tests.
        """
        from repro.models.plan import PLAN_CACHE

        return PLAN_CACHE.stats()

    def run_streaming(self, stream: "Any") -> StreamingAnalysisResult:
        """Execute a :class:`~repro.stream.spec.StreamSpec` online.

        The scenario's cached epoch trace replays as a simulated live
        feed (chunked per the spec); the identifier consumes it until
        the selection stabilises, then the converged prefix projection
        is scored against the full epoch and against the batch analysis
        of the same spec (which shares the cached trace, so the ground
        truth costs no extra simulation).
        """
        from repro.stream.feed import TraceReplayFeed
        from repro.stream.spec import StreamSpec
        from repro.stream.stats import StreamingSlStatistics

        if not isinstance(stream, StreamSpec):
            raise ConfigurationError(
                f"run_streaming expects a StreamSpec, got {type(stream).__name__}"
            )
        frame = self.frame_for(stream.analysis)
        feed = TraceReplayFeed(frame, chunk_size=stream.chunk_size)
        run = stream.build_identifier().run(
            feed, stats=StreamingSlStatistics.for_frame(frame)
        )
        projected_epoch = run.project_epoch_time(len(frame))
        batch = self.run(stream.analysis)
        selected = {(p.seq_len, p.tgt_len) for p in run.selection.points}
        batch_selected = {(p.seq_len, p.tgt_len) for p in batch.points}
        return StreamingAnalysisResult(
            spec=stream,
            converged=run.converged,
            iterations_consumed=run.iterations_consumed,
            epoch_iterations=len(frame),
            checks=run.checks,
            points=tuple(
                SelectedPointSummary(
                    seq_len=point.seq_len,
                    tgt_len=point.tgt_len,
                    weight=point.weight,
                    time_s=point.record.time_s,
                )
                for point in run.selection.points
            ),
            k=run.k,
            identification_error_pct=run.identification_error_pct,
            projected_epoch_time_s=projected_epoch,
            actual_total_s=frame.total_time_s,
            projection_error_pct=percent_error(
                projected_epoch, frame.total_time_s
            ),
            matches_batch_selection=selected == batch_selected,
            batch_identification_error_pct=batch.identification_error_pct,
            selection=run.selection,
        )

    def run_traffic(
        self, traffic: "Any", *, plan_store_dir: "str | None" = None
    ) -> TrafficAnalysisResult:
        """Execute a :class:`~repro.traffic.spec.TrafficSpec`.

        A seeded arrival process paces requests bootstrap-resampled
        from the scenario's training corpus (per the spec's mixture
        schedule); the dynamic batcher forms device batches; the
        serving loop times them through the batched pipeline.  The
        resulting frame is identified with the spec's selector, the
        live batch stream is replayed through the streaming identifier
        (formation-instant chunks, drift guard active), and serving
        time is projected onto any target configurations by re-timing
        the *same* batch composition there.

        ``plan_store_dir`` attaches a cross-process
        :class:`~repro.models.plan.PlanStore` for the duration of the
        run (as sweep/serve already do), so repeated traffic
        simulations share lowered plans machine-wide.

        ``arrival="offline"`` degenerates to the classic §VII-E
        inference pass: the evaluation split is served as one epoch of
        :class:`~repro.train.inference.InferenceRunSimulator` batches
        (``experiments/inference.py`` routes here, bit-identically).
        """
        from repro.models.plan import PLAN_CACHE, PlanStore
        from repro.traffic.spec import TrafficSpec

        if not isinstance(traffic, TrafficSpec):
            raise ConfigurationError(
                f"run_traffic expects a TrafficSpec, got {type(traffic).__name__}"
            )
        previous = (
            PLAN_CACHE.attach_store(PlanStore(plan_store_dir))
            if plan_store_dir is not None
            else None
        )
        try:
            return self._run_traffic(traffic)
        finally:
            if plan_store_dir is not None:
                PLAN_CACHE.attach_store(previous)

    def _run_traffic(self, traffic: "Any") -> TrafficAnalysisResult:
        from repro.core.projection import project_total
        from repro.stream.feed import TraceReplayFeed
        from repro.stream.stats import StreamingSlStatistics
        from repro.traffic.batcher import form_batches
        from repro.traffic.feed import TrafficFeed
        from repro.traffic.simulator import TrafficSimulator, latency_snapshot
        from repro.traffic.workload import sample_requests
        from repro.train.inference import InferenceRunSimulator

        spec = traffic.analysis
        resolved = self.resolve(spec)
        policy = (
            resolved.batching
            if traffic.pad_multiple is None
            else BATCHING.create(
                spec.batching, spec.batch_size,
                pad_multiple=traffic.pad_multiple,
            )
        )
        targets = () if traffic.targets is None else traffic.targets

        if traffic.arrival == "offline":
            def simulator(config: int) -> InferenceRunSimulator:
                return InferenceRunSimulator(
                    resolved.model,
                    resolved.eval_data,
                    policy,
                    GpuDevice(paper_config(config)),
                    seed=spec.seed,
                )

            base = simulator(spec.config)
            trace = base.run_pass()
            frame = trace.frame()
            selection, k, error, projected = self._select(spec, trace)
            projections = []
            for target in targets:
                other = simulator(target)
                actual = other.run_pass().total_time_s
                projected_target = project_total(
                    selection,
                    lambda point: other.measure_seq_len(
                        point.seq_len, point.tgt_len
                    ),
                )
                projections.append(
                    TrafficProjection(
                        config=target,
                        config_name=paper_config(target).name,
                        projected_serving_s=projected_target,
                        actual_serving_s=actual,
                        error_pct=percent_error(projected_target, actual),
                    )
                )
            requests_served = frame.samples
            feed: "Any" = TraceReplayFeed(frame, chunk_size=1)
            latency = latency_snapshot(frame.time_s)
            queue_wait = latency_snapshot(
                frame.time_s * 0.0  # no queueing in a replayed batch
            )
            makespan = frame.total_time_s
        else:
            workload = sample_requests(
                resolved.train_data, traffic.phases, traffic.requests,
                spec.seed,
            )
            arrival_s = traffic.build_arrivals().times(
                len(workload), spec.seed
            )
            batches = form_batches(
                arrival_s, workload.seq_len, workload.tgt_len, policy,
                traffic.max_wait_s,
            )
            base_sim = TrafficSimulator(
                resolved.model, spec.dataset, policy,
                GpuDevice(paper_config(spec.config)),
            )
            served = base_sim.serve(workload, arrival_s, batches)
            frame = served.frame
            selection, k, error, projected = self._select(
                spec, frame.to_trace()
            )
            base_cost = project_total(
                selection,
                lambda point: base_sim.measure_seq_len(
                    point.seq_len, point.tgt_len
                ),
            )
            projections = []
            for target in targets:
                target_sim = TrafficSimulator(
                    resolved.model, spec.dataset, policy,
                    GpuDevice(paper_config(target)),
                )
                actual = target_sim.serve(
                    workload, arrival_s, batches
                ).frame.total_time_s
                # Speedup-style projection (paper Figs 15/16): price
                # the selected cells on both devices and scale the
                # *measured* base serving time by the cost ratio, so
                # ragged flush batches cancel instead of being priced
                # as full ones.
                target_cost = project_total(
                    selection,
                    lambda point: target_sim.measure_seq_len(
                        point.seq_len, point.tgt_len
                    ),
                )
                projected_target = (
                    frame.total_time_s * target_cost / base_cost
                )
                projections.append(
                    TrafficProjection(
                        config=target,
                        config_name=paper_config(target).name,
                        projected_serving_s=projected_target,
                        actual_serving_s=actual,
                        error_pct=percent_error(projected_target, actual),
                    )
                )
            requests_served = len(workload)
            feed = TrafficFeed(served)
            latency = served.latency_percentiles()
            queue_wait = served.queue_wait_percentiles()
            makespan = served.makespan_s

        run = traffic.build_identifier().run(
            feed, stats=StreamingSlStatistics.for_frame(frame)
        )
        projected_serving = run.project_epoch_time(len(frame))
        selected = {(p.seq_len, p.tgt_len) for p in run.selection.points}
        batch_selected = {(p.seq_len, p.tgt_len) for p in selection.points}
        return TrafficAnalysisResult(
            spec=traffic,
            requests=requests_served,
            batches=len(frame),
            unique_seq_lens=len(frame.unique_seq_lens()),
            points=tuple(
                SelectedPointSummary(
                    seq_len=point.seq_len,
                    tgt_len=point.tgt_len,
                    weight=point.weight,
                    time_s=point.record.time_s,
                )
                for point in selection.points
            ),
            k=k,
            identification_error_pct=error,
            projected_total_s=projected,
            actual_total_s=frame.total_time_s,
            makespan_s=makespan,
            latency=latency,
            queue_wait=queue_wait,
            converged=run.converged,
            iterations_consumed=run.iterations_consumed,
            checks=run.checks,
            drift_resets=sum(
                1 for check in run.checks if check.drift_reset
            ),
            streaming_projection_error_pct=percent_error(
                projected_serving, frame.total_time_s
            ),
            matches_batch_selection=selected == batch_selected,
            projections=tuple(projections),
            selection=selection,
        )

    def run_sweep(
        self,
        sweep: "Any",
        *,
        mode: str = "process",
        workers: int | None = None,
        cache_dir: "str | None" = None,
        plan_store_dir: "str | None" = None,
    ) -> "Any":
        """Execute a :class:`~repro.api.parallel.SweepSpec` grid.

        Process mode shares this engine's on-disk cache directory with
        the workers (falling back to ``cache_dir`` or a per-sweep
        temporary directory for memory-only caches); serial and thread
        modes run on this engine directly.  ``plan_store_dir`` shares
        compiled lowerings machine-wide.  See
        :func:`repro.api.parallel.run_sweep`.
        """
        from repro.api.parallel import run_sweep

        return run_sweep(
            sweep,
            engine=self,
            mode=mode,
            workers=workers,
            cache_dir=cache_dir,
            plan_store_dir=plan_store_dir,
        )


_DEFAULT_ENGINE: AnalysisEngine | None = None
_DEFAULT_LOCK = Lock()


def default_engine() -> AnalysisEngine:
    """The process-wide engine the CLI and experiments harness share."""
    global _DEFAULT_ENGINE
    with _DEFAULT_LOCK:
        if _DEFAULT_ENGINE is None:
            _DEFAULT_ENGINE = AnalysisEngine()
        return _DEFAULT_ENGINE
