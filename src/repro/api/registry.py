"""String-keyed component registries behind the declarative API.

An :class:`AnalysisSpec` names its parts — a model, a dataset, a
batching policy, a selector — and these registries resolve the names to
factories.  Everything the library ships is pre-registered; downstream
code can add entries with the same ``register`` decorator to make new
components addressable from specs, the CLI, and serialized requests:

    from repro.api import MODELS

    @MODELS.register("my-rnn")
    def build_my_rnn():
        return ...

Factory conventions (what the engine calls them with):

* **models** — no arguments; returns a :class:`~repro.models.spec.Model`.
* **datasets** — ``(scale)``; returns a
  :class:`~repro.data.dataset.SequenceDataset` whose population is the
  paper-sized corpus shrunk proportionally (floored at 256 samples so
  tiny scales still make a few batches).
* **batching** — ``(batch_size, pad_multiple=1)``; returns a
  :class:`~repro.data.batching.BatchingPolicy`.
* **selectors** — keyword arguments only; returns an object with a
  ``select(trace)`` method.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any, TypeVar

from repro.core.baselines import (
    FrequentSelector,
    MedianSelector,
    PriorSelector,
    WorstSelector,
)
from repro.core.kmeans import KMeansSelector
from repro.core.seqpoint import SeqPointSelector
from repro.data.batching import (
    PooledBucketing,
    ShuffledBatching,
    SortaGradBatching,
    SortedBatching,
)
from repro.data.iwslt import IWSLT_SENTENCES, build_iwslt
from repro.data.librispeech import LIBRISPEECH_UTTERANCES, build_librispeech
from repro.errors import ConfigurationError
from repro.models.cnn import build_cnn
from repro.models.convs2s import build_convs2s
from repro.models.ds2 import build_ds2
from repro.models.gnmt import build_gnmt
from repro.models.transformer import build_transformer

__all__ = [
    "Registry",
    "MODELS",
    "DATASETS",
    "BATCHING",
    "SELECTORS",
    "default_dataset",
    "default_batching",
    "dataset_pad_multiple",
    "build_batching",
]

F = TypeVar("F", bound=Callable[..., Any])

#: Smallest synthesized corpus at any scale — a handful of batches.
MIN_CORPUS_SAMPLES = 256


class Registry:
    """A named string → factory mapping with discoverable entries."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, Callable[..., Any]] = {}

    def register(self, name: str) -> Callable[[F], F]:
        """Decorator: register ``factory`` under ``name``."""

        def decorate(factory: F) -> F:
            if name in self._entries:
                raise ConfigurationError(
                    f"{self.kind} {name!r} is already registered"
                )
            self._entries[name] = factory
            return factory

        return decorate

    def available(self) -> tuple[str, ...]:
        """All registered names, sorted (for listings and errors)."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, name: str) -> Callable[..., Any]:
        """The factory registered under ``name``."""
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; "
                f"available: {', '.join(self.available())}"
            ) from None

    def create(self, name: str, /, *args: Any, **kwargs: Any) -> Any:
        """Resolve ``name`` and invoke its factory."""
        return self.get(name)(*args, **kwargs)


MODELS = Registry("model")
DATASETS = Registry("dataset")
BATCHING = Registry("batching policy")
SELECTORS = Registry("selector")


# -- models -----------------------------------------------------------

MODELS.register("gnmt")(build_gnmt)
MODELS.register("ds2")(build_ds2)
MODELS.register("transformer")(build_transformer)
MODELS.register("convs2s")(build_convs2s)
MODELS.register("cnn")(build_cnn)


# -- datasets ---------------------------------------------------------

def _scaled(population: int, scale: float) -> int:
    return max(MIN_CORPUS_SAMPLES, int(population * scale))


@DATASETS.register("iwslt")
def _iwslt(scale: float = 1.0):
    return build_iwslt(sentences=_scaled(IWSLT_SENTENCES, scale))


@DATASETS.register("librispeech")
def _librispeech(scale: float = 1.0):
    return build_librispeech(utterances=_scaled(LIBRISPEECH_UTTERANCES, scale))


#: Frame-based (speech) pipelines pad the time axis to a multiple of
#: four for kernel alignment (paper §V-A); token pipelines do not.
_DATASET_PAD_MULTIPLE = {"librispeech": 4}

#: The corpus each network trains on in the paper (§VI-B); networks the
#: paper does not pair with data default to the token corpus.
_DEFAULT_DATASET = {
    "gnmt": "iwslt",
    "ds2": "librispeech",
    "transformer": "iwslt",
    "convs2s": "iwslt",
    "cnn": "iwslt",
}

#: The input pipeline each network's reference implementation uses:
#: pooled bucketing for NMT-style models, SortaGrad for DS2 (§VI-D).
_DEFAULT_BATCHING = {
    "gnmt": "pooled",
    "ds2": "sortagrad",
    "transformer": "pooled",
    "convs2s": "pooled",
    "cnn": "shuffled",
}


def default_dataset(network: str) -> str:
    """The registered dataset a network trains on by default.

    Registered models the paper does not pair with a corpus (downstream
    ``MODELS.register`` entries) have no default; requests for them
    must name a dataset explicitly.
    """
    MODELS.get(network)  # error with the available listing if unknown
    name = _DEFAULT_DATASET.get(network)
    if name is None:
        raise ConfigurationError(
            f"model {network!r} has no default dataset; pass one explicitly "
            f"(available: {', '.join(DATASETS.available())})"
        )
    return name


def default_batching(network: str) -> str:
    """The registered batching policy a network uses by default."""
    MODELS.get(network)
    name = _DEFAULT_BATCHING.get(network)
    if name is None:
        raise ConfigurationError(
            f"model {network!r} has no default batching policy; pass one "
            f"explicitly (available: {', '.join(BATCHING.available())})"
        )
    return name


def dataset_pad_multiple(dataset: str) -> int:
    """Sequence-length padding granularity a dataset's pipeline needs."""
    DATASETS.get(dataset)
    return _DATASET_PAD_MULTIPLE.get(dataset, 1)


def build_batching(name: str, batch_size: int, dataset: str | None = None):
    """Build a batching policy, honouring the dataset's pad multiple."""
    pad = dataset_pad_multiple(dataset) if dataset is not None else 1
    return BATCHING.create(name, batch_size, pad_multiple=pad)


# -- batching policies ------------------------------------------------

@BATCHING.register("pooled")
def _pooled(batch_size: int, pad_multiple: int = 1):
    return PooledBucketing(batch_size, pad_multiple=pad_multiple)


@BATCHING.register("sorted")
def _sorted(batch_size: int, pad_multiple: int = 1):
    return SortedBatching(batch_size, pad_multiple=pad_multiple)


@BATCHING.register("shuffled")
def _shuffled(batch_size: int, pad_multiple: int = 1):
    return ShuffledBatching(batch_size, pad_multiple=pad_multiple)


@BATCHING.register("sortagrad")
def _sortagrad(batch_size: int, pad_multiple: int = 1):
    return SortaGradBatching(batch_size, pad_multiple=pad_multiple)


# -- selectors --------------------------------------------------------

SELECTORS.register("seqpoint")(SeqPointSelector)
SELECTORS.register("frequent")(FrequentSelector)
SELECTORS.register("median")(MedianSelector)
SELECTORS.register("worst")(WorstSelector)
SELECTORS.register("prior")(PriorSelector)


@SELECTORS.register("kmeans")
def _kmeans(k: int = 5, seed: int = 0):
    return KMeansSelector(k=k, seed=seed)


@SELECTORS.register("segmented")
def _segmented(
    base: str = "seqpoint",
    cadence: int = 64,
    hazard: float = 0.6,
    threshold: float = 1.0,
    drift_rtol: float = 0.1,
    min_segment: int | None = None,
    **base_kwargs: Any,
):
    """Changepoint-aware wrapper: any registered selector per segment."""
    # Imported lazily: repro.stream pulls the spec layer in, which
    # would otherwise cycle back into this module at import time.
    from repro.stream.segments import SegmentedSelector

    return SegmentedSelector(
        SELECTORS.create(base, **base_kwargs),
        cadence=cadence,
        hazard=hazard,
        threshold=threshold,
        drift_rtol=drift_rtol,
        min_segment=min_segment,
    )


@SELECTORS.register("segmented-drift")
def _segmented_drift(
    base: str = "seqpoint",
    cadence: int = 64,
    hazard: float = 0.6,
    threshold: float = 1.0,
    drift_rtol: float = 0.1,
    min_segment: int | None = None,
    decay: float = 0.5,
    **base_kwargs: Any,
):
    """Drift-schedule variant: epoch/phase splits + geometric recency."""
    from repro.stream.segments import SegmentedSelector

    return SegmentedSelector(
        SELECTORS.create(base, **base_kwargs),
        cadence=cadence,
        hazard=hazard,
        threshold=threshold,
        drift_rtol=drift_rtol,
        min_segment=min_segment,
        split_epochs=True,
        decay=decay,
    )
