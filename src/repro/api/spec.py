"""Declarative analysis requests: frozen, validated, JSON round-trip.

An :class:`AnalysisSpec` is the serializable description of one
SeqPoint analysis — which network, on which corpus and input pipeline,
identified on which Table II configuration, with which selector.  A
:class:`ProjectionSpec` names the configurations to project onto.  Both
validate eagerly (unknown names, bad ranges) so a malformed request
fails at construction, not minutes into a simulation, and both
round-trip through ``to_dict``/``from_dict`` so requests can live in
JSON files, HTTP payloads, or experiment manifests.

Every spec in the family (:class:`AnalysisSpec`, :class:`ProjectionSpec`,
``SweepSpec``, ``StreamSpec``, ``TrafficSpec``) derives from
:class:`SpecBase`, which supplies the versioned JSON envelope
(``to_json``/``from_json``) and the strict payload validation shared by
``from_dict``: non-mapping payloads, unknown fields, and wrong-typed
fields all fail as one-line :class:`~repro.errors.ConfigurationError`\\ s.
``to_dict`` stays envelope-free so existing saved specs and the serve
wire format keep working verbatim.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field, fields
from typing import Any

from repro.api import registry
from repro.errors import ConfigurationError, ReproError
from repro.hw.config import paper_config

__all__ = ["AnalysisSpec", "ProjectionSpec", "SpecBase", "DEFAULT_BATCH_SIZE"]

#: The paper's fixed mini-batch size (§VI-B).
DEFAULT_BATCH_SIZE = 64

#: Bumped whenever simulation semantics change, so stale on-disk traces
#: can never satisfy a newer spec.
TRACE_SCHEMA_VERSION = 1


def _freeze_kwargs(value: Any) -> tuple[tuple[str, Any], ...]:
    """Normalise selector kwargs to a sorted, hashable tuple of pairs."""
    if isinstance(value, Mapping):
        items = value.items()
    else:
        try:
            items = [(k, v) for k, v in value]
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"selector_kwargs must be a mapping, got {value!r}"
            ) from None
    frozen = []
    for key, item in sorted(items):
        if not isinstance(key, str):
            raise ConfigurationError(
                f"selector_kwargs keys must be strings, got {key!r}"
            )
        frozen.append((key, item))
    return tuple(frozen)


class SpecBase:
    """Shared contract for the declarative spec family.

    Subclasses are frozen dataclasses; this mixin adds the versioned
    JSON envelope and the strict ``from_dict`` payload validation.  The
    envelope lives only in ``to_json``/``from_json`` — ``to_dict``
    output is deliberately unversioned so historical spec JSON and the
    serve wire format round-trip bit-identically.
    """

    #: Envelope version emitted by ``to_json`` and accepted (optionally)
    #: by ``from_dict``/``from_json``.
    SPEC_VERSION = 1

    def to_dict(self) -> dict[str, Any]:  # pragma: no cover - overridden
        raise NotImplementedError

    @classmethod
    def _validate_payload(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Strip the optional envelope and reject malformed payloads."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"{cls.__name__} payload must be a mapping, "
                f"got {type(payload).__name__}"
            )
        data = dict(payload)
        version = data.pop("v", cls.SPEC_VERSION)
        if version != cls.SPEC_VERSION:
            raise ConfigurationError(
                f"{cls.__name__} version {version!r} is not supported; "
                f"this build speaks version {cls.SPEC_VERSION}"
            )
        known = {f.name for f in fields(cls)}  # type: ignore[arg-type]
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown {cls.__name__} fields: {', '.join(unknown)}; "
                f"expected a subset of: {', '.join(sorted(known))}"
            )
        return data

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SpecBase":
        data = cls._validate_payload(payload)
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigurationError(f"{cls.__name__}: {exc}") from None

    def to_json(self) -> str:
        """Serialise with the ``{"v": N, ...}`` envelope, one line."""
        return json.dumps({"v": self.SPEC_VERSION, **self.to_dict()})

    @classmethod
    def from_json(cls, text: str) -> "SpecBase":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{cls.__name__} JSON is malformed: {exc}"
            ) from None
        return cls.from_dict(payload)


@dataclass(frozen=True)
class AnalysisSpec(SpecBase):
    """One SeqPoint analysis, declaratively.

    ``dataset`` and ``batching`` default to the network's paper setup
    (GNMT: IWSLT with pooled bucketing; DS2: LibriSpeech with
    SortaGrad) and are resolved to concrete names at construction so a
    spec is always fully explicit once built.  ``selector_kwargs`` is
    stored as a sorted tuple of pairs to keep the spec hashable; use
    :attr:`selector_options` for the dict view.
    """

    network: str
    dataset: str | None = None
    batching: str | None = None
    batch_size: int = DEFAULT_BATCH_SIZE
    #: Table II configuration the identification epoch runs on.
    config: int = 1
    scale: float = 1.0
    #: Data-order seed for the simulated run.
    seed: int = 0
    selector: str = "seqpoint"
    selector_kwargs: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        registry.MODELS.get(self.network)
        if self.dataset is None:
            object.__setattr__(
                self, "dataset", registry.default_dataset(self.network)
            )
        if self.batching is None:
            object.__setattr__(
                self, "batching", registry.default_batching(self.network)
            )
        registry.DATASETS.get(self.dataset)
        registry.BATCHING.get(self.batching)
        if not isinstance(self.batch_size, int) or self.batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be a positive int, got {self.batch_size!r}"
            )
        try:
            object.__setattr__(self, "config", int(self.config))
            object.__setattr__(self, "scale", float(self.scale))
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"config/scale must be numeric, got {self.config!r}/"
                f"{self.scale!r}"
            ) from None
        paper_config(self.config)
        if not 0.0 < self.scale <= 1.0:
            raise ConfigurationError(
                f"scale must lie in (0, 1], got {self.scale}"
            )
        if not isinstance(self.seed, int):
            raise ConfigurationError(f"seed must be an int, got {self.seed!r}")
        object.__setattr__(
            self, "selector_kwargs", _freeze_kwargs(self.selector_kwargs)
        )
        self.build_selector()  # fail now, not after a simulation

    @property
    def selector_options(self) -> dict[str, Any]:
        return dict(self.selector_kwargs)

    def build_selector(self) -> Any:
        """Instantiate the named selector with this spec's kwargs."""
        try:
            return registry.SELECTORS.create(
                self.selector, **self.selector_options
            )
        except TypeError as exc:
            raise ConfigurationError(
                f"selector {self.selector!r} rejected kwargs "
                f"{self.selector_options}: {exc}"
            ) from None
        except ReproError as exc:
            raise ConfigurationError(
                f"selector {self.selector!r} rejected kwargs "
                f"{self.selector_options}: {exc}"
            ) from None

    def trace_fingerprint(self) -> dict[str, Any]:
        """The simulation-relevant fields, for content-addressed caching.

        Selector choice deliberately excluded: sweeping selectors or
        thresholds over one scenario must reuse the same epoch trace.
        """
        return {
            "v": TRACE_SCHEMA_VERSION,
            "network": self.network,
            "dataset": self.dataset,
            "batching": self.batching,
            "batch_size": self.batch_size,
            "config": self.config,
            "scale": self.scale,
            "seed": self.seed,
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "network": self.network,
            "dataset": self.dataset,
            "batching": self.batching,
            "batch_size": self.batch_size,
            "config": self.config,
            "scale": self.scale,
            "seed": self.seed,
            "selector": self.selector,
            "selector_kwargs": self.selector_options,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AnalysisSpec":
        return super().from_dict(payload)  # type: ignore[return-value]


@dataclass(frozen=True)
class ProjectionSpec(SpecBase):
    """Which Table II configurations to project the analysis onto."""

    targets: tuple[int, ...] = (1, 2, 3, 4, 5)

    def __post_init__(self) -> None:
        try:
            frozen = tuple(int(t) for t in self.targets)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"targets must be config indices, got {self.targets!r}"
            ) from None
        if not frozen:
            raise ConfigurationError("targets cannot be empty")
        for target in frozen:
            paper_config(target)
        object.__setattr__(self, "targets", frozen)

    def to_dict(self) -> dict[str, Any]:
        return {"targets": list(self.targets)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ProjectionSpec":
        return super().from_dict(payload)  # type: ignore[return-value]
