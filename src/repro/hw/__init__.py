"""Analytical GPU performance model.

This package stands in for the paper's hardware substrate: an AMD Radeon
Vega Frontier Edition GPU profiled with the Radeon Compute Profiler.  It
is *not* a cycle-accurate simulator; it is a calibrated analytical model
(roofline compute/memory bounds, capacity-based cache hit rates, launch
and latency overheads) that produces, for every kernel invocation:

* a runtime that responds to the Table II knobs — GPU clock, CU count,
  L1 presence, L2 presence — with sensitivities that depend on the
  kernel's arithmetic intensity, parallelism, and working-set sizes; and
* the performance counters the paper reports (VALU instructions, DRAM
  fetch/write traffic, memory write stalls).

That is exactly the surface SeqPoint consumes, which is why this
substitution preserves the paper's behaviour (see DESIGN.md §2).
"""

from repro.hw.config import (
    HardwareConfig,
    PAPER_CONFIGS,
    VEGA_FE,
    paper_config,
)
from repro.hw.counters import CounterSet
from repro.hw.device import GpuDevice, KernelMeasurement

__all__ = [
    "HardwareConfig",
    "PAPER_CONFIGS",
    "VEGA_FE",
    "paper_config",
    "CounterSet",
    "GpuDevice",
    "KernelMeasurement",
]
