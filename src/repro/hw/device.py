"""GPU device facade.

:class:`GpuDevice` is the single entry point the rest of the library
uses to "run" kernels: it takes a :class:`~repro.hw.timing.WorkProfile`
and returns a :class:`KernelMeasurement` (runtime, breakdown, counters)
for its configuration.  Measurements are deterministic — the model is
analytical — so a device can be shared freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.hw.config import HardwareConfig
from repro.hw.counters import CounterSet
from repro.hw.timing import TimingBreakdown, WorkProfile, time_work

__all__ = ["GpuDevice", "KernelMeasurement"]


@dataclass(frozen=True)
class KernelMeasurement:
    """What the profiler observes for one kernel invocation."""

    time_s: float
    breakdown: TimingBreakdown
    counters: CounterSet


class GpuDevice:
    """A GPU at one hardware configuration.

    Work profiles are hashable, and models re-issue identical kernels
    thousands of times per epoch (every LSTM step launches the same
    recurrent GEMM), so measurements are memoised per device.
    """

    def __init__(self, config: HardwareConfig):
        self._config = config
        # Per-instance cache: bound lru_cache keeps measurements from
        # leaking across devices with different configs.
        self._measure = lru_cache(maxsize=65536)(self._measure_uncached)

    @property
    def config(self) -> HardwareConfig:
        return self._config

    def run(self, work: WorkProfile) -> KernelMeasurement:
        """Execute ``work`` and return its measurement."""
        return self._measure(work)

    def _measure_uncached(self, work: WorkProfile) -> KernelMeasurement:
        time_s, breakdown, counters = time_work(work, self._config)
        return KernelMeasurement(
            time_s=time_s, breakdown=breakdown, counters=counters
        )

    def __repr__(self) -> str:
        return f"GpuDevice({self._config.describe()})"
