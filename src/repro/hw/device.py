"""GPU device facade.

:class:`GpuDevice` is the single entry point the rest of the library
uses to "run" kernels: it takes a :class:`~repro.hw.timing.WorkProfile`
and returns a :class:`KernelMeasurement` (runtime, breakdown, counters)
for its configuration.  Measurements are deterministic — the model is
analytical — so a device can be shared freely.

Measurements are memoised **per hardware configuration, not per device
instance**: sweeps construct many :class:`GpuDevice` objects with equal
(frozen, hashable) :class:`HardwareConfig` values, and re-timing every
kernel on each of them is pure waste.  All devices at one config share
one measurement store; devices at different configs never mix (the
config value is the key).  :func:`measure_cache_info` exposes the
shared store's hit/miss counters so tests can assert the sharing, and
:func:`clear_measure_caches` resets every store (used by benchmarks to
measure genuinely cold simulation).

:meth:`GpuDevice.run_batch` is the vectorized entry point: it times a
whole :class:`~repro.hw.timing.WorkBatch` column in one call, memoised
by batch identity in the same shared per-config store.

Stores live for the process (one per distinct config value, like the
plan cache they sit under); batch entries are bounded with oldest-first
eviction, and :func:`clear_measure_caches` drops everything for
long-running processes that sweep many one-off configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from threading import Lock

import numpy as np

from repro.hw.config import HardwareConfig
from repro.hw.counters import CounterColumns, CounterSet
from repro.hw.timing import (
    TimingBreakdown,
    TimingBreakdownBatch,
    WorkBatch,
    WorkProfile,
    time_work,
    time_work_batch,
)

__all__ = [
    "GpuDevice",
    "KernelMeasurement",
    "BatchMeasurement",
    "measure_cache_info",
    "clear_measure_caches",
]


@dataclass(frozen=True)
class KernelMeasurement:
    """What the profiler observes for one kernel invocation."""

    time_s: float
    breakdown: TimingBreakdown
    counters: CounterSet


@dataclass(frozen=True, eq=False)
class BatchMeasurement:
    """Measurements for a whole :class:`WorkBatch` column of kernels."""

    time_s: np.ndarray
    breakdown: TimingBreakdownBatch
    counters: CounterColumns

    def __len__(self) -> int:
        return int(self.time_s.size)

    def row(self, i: int) -> KernelMeasurement:
        """Materialise one row as a scalar :class:`KernelMeasurement`."""
        return KernelMeasurement(
            time_s=float(self.time_s[i]),
            breakdown=self.breakdown.row(i),
            counters=self.counters.row(i),
        )


#: Batch measurements retained per config before oldest-first eviction.
#: Far above any real plan population (a model has O(100) unique shapes
#: per config); the bound only guards callers that mint throwaway
#: ``WorkBatch`` objects, which would otherwise pin arrays forever.
_MAX_BATCHES_PER_CONFIG = 8192


class _ConfigMeasurements:
    """The shared measurement store for one hardware configuration."""

    def __init__(self, config: HardwareConfig):
        self.measure = lru_cache(maxsize=65536)(
            lambda work: KernelMeasurement(*time_work(work, config))
        )
        # Batches are frozen and deduplicated upstream (the plan cache
        # hands out one object per unique plan), so identity keying is
        # both correct and cheap.
        self._config = config
        self._batches: dict[WorkBatch, BatchMeasurement] = {}
        self._batch_lock = Lock()

    def measure_batch(self, work: WorkBatch) -> BatchMeasurement:
        found = self._batches.get(work)  # lock-free fast path
        if found is None:
            # Compute outside the lock (pure and deterministic; a
            # racing thread at worst duplicates work), then evict and
            # insert under it so concurrent misses cannot trip over
            # each other's dict mutations.
            computed = BatchMeasurement(*time_work_batch(work, self._config))
            with self._batch_lock:
                if (
                    len(self._batches) >= _MAX_BATCHES_PER_CONFIG
                    and work not in self._batches
                ):
                    # Insertion-ordered dict: drop the oldest entry.
                    # Worst case an evicted batch is re-measured.
                    self._batches.pop(next(iter(self._batches)), None)
                found = self._batches.setdefault(work, computed)
        return found

    def flush(self) -> None:
        """Drop all measurements (counters included) in place.

        In place matters: live devices keep their store reference, so
        clearing must empty the shared store rather than replace it.
        """
        self.measure.cache_clear()
        with self._batch_lock:
            self._batches.clear()

    @property
    def batch_entries(self) -> int:
        return len(self._batches)


_STORES: dict[HardwareConfig, _ConfigMeasurements] = {}
_STORES_LOCK = Lock()


def _store_for(config: HardwareConfig) -> _ConfigMeasurements:
    with _STORES_LOCK:
        store = _STORES.get(config)
        if store is None:
            store = _STORES[config] = _ConfigMeasurements(config)
        return store


def measure_cache_info(config: HardwareConfig):
    """Hit/miss counters of ``config``'s shared scalar measurement memo."""
    return _store_for(config).measure.cache_info()


def clear_measure_caches() -> None:
    """Empty every shared measurement store (for cold benchmarking).

    Stores are flushed *in place*, not discarded: live devices keep a
    direct store reference, so replacing the registry entries would
    orphan their (still warm) stores and desynchronise
    :func:`measure_cache_info` from what devices actually use.
    """
    with _STORES_LOCK:
        for store in _STORES.values():
            store.flush()


class GpuDevice:
    """A GPU at one hardware configuration.

    Work profiles are hashable, and models re-issue identical kernels
    thousands of times per epoch (every LSTM step launches the same
    recurrent GEMM), so measurements are memoised — in the store shared
    by every device whose config equals this one.
    """

    def __init__(self, config: HardwareConfig):
        self._config = config
        self._store = _store_for(config)

    @property
    def config(self) -> HardwareConfig:
        return self._config

    def run(self, work: WorkProfile) -> KernelMeasurement:
        """Execute ``work`` and return its measurement."""
        return self._store.measure(work)

    def run_batch(self, work: WorkBatch) -> BatchMeasurement:
        """Execute a whole column of kernels in one vectorized call."""
        return self._store.measure_batch(work)

    def __repr__(self) -> str:
        return f"GpuDevice({self._config.describe()})"
