"""Capacity-based cache hit-rate model.

Kernels do not simulate addresses; instead each kernel describes its
memory behaviour with a :class:`TrafficProfile`: how many bytes it reads
and writes, what fraction of those reads are *re*-reads at workgroup
scope (candidate L1 hits) and at device scope (candidate L2 hits), and
the working-set sizes those re-reads sweep.  The cache model then turns
capacity into hit rates: a reuse pattern whose working set fits in the
cache is fully captured, and capture degrades proportionally once the
working set exceeds capacity (the standard LRU-streaming approximation).

Disabling a cache (size zero, paper configs #4 and #5) drops its hit
rate to zero, pushing the traffic down one level — which is exactly the
knob Figs 13-16 of the paper exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.config import HardwareConfig

__all__ = [
    "TrafficProfile",
    "MemoryTraffic",
    "MemoryTrafficBatch",
    "resolve_traffic",
    "resolve_traffic_batch",
    "capacity_factor",
    "capacity_factor_batch",
]


@dataclass(frozen=True)
class TrafficProfile:
    """Memory behaviour of one kernel invocation.

    ``read_bytes``/``write_bytes`` are totals as issued by the CUs after
    coalescing.  ``l1_reuse_fraction`` is the fraction of reads that
    could hit in an infinite L1 (re-reads within one workgroup's tile);
    ``l2_reuse_fraction`` is the fraction of L1 *misses* that could hit
    in an infinite L2 (sharing across workgroups).  The working sets say
    how much capacity each reuse pattern needs to be captured.
    """

    read_bytes: float
    write_bytes: float
    l1_reuse_fraction: float = 0.0
    l1_working_set: float = 0.0
    l2_reuse_fraction: float = 0.0
    l2_working_set: float = 0.0

    def __post_init__(self) -> None:
        # Direct checks, no getattr loop: this constructor runs once per
        # unique kernel on the lowering hot path.
        if self.read_bytes < 0 or self.write_bytes < 0:
            raise ConfigurationError("traffic byte counts cannot be negative")
        if not 0.0 <= self.l1_reuse_fraction <= 1.0:
            raise ConfigurationError(
                f"l1_reuse_fraction must lie in [0, 1], got {self.l1_reuse_fraction}"
            )
        if not 0.0 <= self.l2_reuse_fraction <= 1.0:
            raise ConfigurationError(
                f"l2_reuse_fraction must lie in [0, 1], got {self.l2_reuse_fraction}"
            )
        if self.l1_working_set < 0 or self.l2_working_set < 0:
            raise ConfigurationError("working sets cannot be negative")

    def scaled(self, factor: float) -> "TrafficProfile":
        """Return a copy with byte totals scaled (working sets unchanged)."""
        if factor < 0:
            raise ConfigurationError("traffic scale factor cannot be negative")
        return TrafficProfile(
            read_bytes=self.read_bytes * factor,
            write_bytes=self.write_bytes * factor,
            l1_reuse_fraction=self.l1_reuse_fraction,
            l1_working_set=self.l1_working_set,
            l2_reuse_fraction=self.l2_reuse_fraction,
            l2_working_set=self.l2_working_set,
        )


@dataclass(frozen=True)
class MemoryTraffic:
    """Traffic resolved against a concrete cache hierarchy."""

    l1_read_bytes: float
    l2_read_bytes: float
    dram_read_bytes: float
    dram_write_bytes: float
    l1_hit_rate: float
    l2_hit_rate: float

    @property
    def dram_bytes(self) -> float:
        """Total DRAM traffic (reads plus writes)."""
        return self.dram_read_bytes + self.dram_write_bytes


def capacity_factor(working_set: float, capacity: float) -> float:
    """Fraction of a reuse pattern a cache of ``capacity`` bytes captures.

    1.0 when the working set fits; decays as ``capacity / working_set``
    once it does not (LRU over a streaming re-reference pattern retains
    roughly the resident fraction).  A zero-size cache captures nothing.
    """
    if capacity <= 0.0:
        return 0.0
    if working_set <= 0.0:
        return 1.0
    return min(1.0, capacity / working_set)


def resolve_traffic(
    profile: TrafficProfile, config: HardwareConfig
) -> MemoryTraffic:
    """Push a kernel's traffic through ``config``'s cache hierarchy.

    Writes are modelled as write-through with write-combining: they
    appear as DRAM write traffic regardless of cache configuration
    (GPU L1s are typically write-through, and the paper's write-stall
    counter tracks DRAM write pressure).
    """
    l1_capture = capacity_factor(profile.l1_working_set, config.l1_bytes)
    l1_hit_rate = profile.l1_reuse_fraction * l1_capture if config.l1_enabled else 0.0

    l2_reads = profile.read_bytes * (1.0 - l1_hit_rate)

    # L2 additionally captures the reuse L1 *would* have captured but
    # could not (capacity overflow or disabled L1): that spilled reuse
    # lands one level down, where the bigger cache usually holds it.
    spilled_reuse = profile.l1_reuse_fraction - l1_hit_rate
    l2_candidate = min(1.0, profile.l2_reuse_fraction + spilled_reuse)
    l2_capture = capacity_factor(
        max(profile.l2_working_set, profile.l1_working_set), config.l2_bytes
    )
    l2_hit_rate = l2_candidate * l2_capture if config.l2_enabled else 0.0

    dram_reads = l2_reads * (1.0 - l2_hit_rate)
    return MemoryTraffic(
        l1_read_bytes=profile.read_bytes,
        l2_read_bytes=l2_reads,
        dram_read_bytes=dram_reads,
        dram_write_bytes=profile.write_bytes,
        l1_hit_rate=l1_hit_rate,
        l2_hit_rate=l2_hit_rate,
    )


# -- vectorized (column) forms ----------------------------------------


@dataclass(frozen=True, eq=False)
class MemoryTrafficBatch:
    """Columns of :class:`MemoryTraffic`, one row per kernel."""

    l1_read_bytes: np.ndarray
    l2_read_bytes: np.ndarray
    dram_read_bytes: np.ndarray
    dram_write_bytes: np.ndarray
    l1_hit_rate: np.ndarray
    l2_hit_rate: np.ndarray

    @property
    def dram_bytes(self) -> np.ndarray:
        """Total DRAM traffic (reads plus writes), per row."""
        return self.dram_read_bytes + self.dram_write_bytes

    def row(self, i: int) -> MemoryTraffic:
        """Materialise one row as a scalar :class:`MemoryTraffic`."""
        return MemoryTraffic(
            l1_read_bytes=float(self.l1_read_bytes[i]),
            l2_read_bytes=float(self.l2_read_bytes[i]),
            dram_read_bytes=float(self.dram_read_bytes[i]),
            dram_write_bytes=float(self.dram_write_bytes[i]),
            l1_hit_rate=float(self.l1_hit_rate[i]),
            l2_hit_rate=float(self.l2_hit_rate[i]),
        )


def capacity_factor_batch(working_set: np.ndarray, capacity: float) -> np.ndarray:
    """Column form of :func:`capacity_factor` (capacity is one cache)."""
    if capacity <= 0.0:
        return np.zeros_like(working_set, dtype=np.float64)
    # Guard the division; rows with an empty working set are replaced.
    safe = np.where(working_set > 0.0, working_set, 1.0)
    return np.where(
        working_set <= 0.0, 1.0, np.minimum(1.0, capacity / safe)
    )


def resolve_traffic_batch(
    read_bytes: np.ndarray,
    write_bytes: np.ndarray,
    l1_reuse_fraction: np.ndarray,
    l1_working_set: np.ndarray,
    l2_reuse_fraction: np.ndarray,
    l2_working_set: np.ndarray,
    config: HardwareConfig,
) -> MemoryTrafficBatch:
    """Column form of :func:`resolve_traffic`.

    Mirrors the scalar function expression for expression so each row is
    bit-identical to resolving that kernel's profile alone.
    """
    l1_capture = capacity_factor_batch(l1_working_set, config.l1_bytes)
    if config.l1_enabled:
        l1_hit_rate = l1_reuse_fraction * l1_capture
    else:
        l1_hit_rate = np.zeros_like(read_bytes, dtype=np.float64)

    l2_reads = read_bytes * (1.0 - l1_hit_rate)

    spilled_reuse = l1_reuse_fraction - l1_hit_rate
    l2_candidate = np.minimum(1.0, l2_reuse_fraction + spilled_reuse)
    l2_capture = capacity_factor_batch(
        np.maximum(l2_working_set, l1_working_set), config.l2_bytes
    )
    if config.l2_enabled:
        l2_hit_rate = l2_candidate * l2_capture
    else:
        l2_hit_rate = np.zeros_like(read_bytes, dtype=np.float64)

    dram_reads = l2_reads * (1.0 - l2_hit_rate)
    return MemoryTrafficBatch(
        l1_read_bytes=np.asarray(read_bytes, dtype=np.float64),
        l2_read_bytes=l2_reads,
        dram_read_bytes=dram_reads,
        dram_write_bytes=np.asarray(write_bytes, dtype=np.float64),
        l1_hit_rate=l1_hit_rate,
        l2_hit_rate=l2_hit_rate,
    )
