"""Kernel timing engine.

Combines the compute model (:mod:`repro.hw.compute`), the cache model
(:mod:`repro.hw.cache`), and latency/launch overheads into a runtime for
one kernel invocation on one hardware configuration:

``time = launch + max(compute, memory-bandwidth, memory-latency)``

* the *bandwidth* bound takes the slowest level of the hierarchy at its
  resolved traffic;
* the *latency* bound models outstanding-miss limits: a kernel with few
  waves in flight cannot cover average access latency, so disabling L1
  (raising average latency) disproportionately slows low-parallelism
  kernels — the SL-dependent sensitivity behind Figs 13/14.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.cache import MemoryTraffic, TrafficProfile, resolve_traffic
from repro.hw.compute import ComputeProfile, compute_time, parallel_efficiency
from repro.hw.config import HardwareConfig
from repro.hw.counters import CounterSet

__all__ = ["WorkProfile", "TimingBreakdown", "time_work"]

#: Outstanding bytes one resident wave keeps in flight (two 64 B lines).
_INFLIGHT_BYTES_PER_WAVE = 128.0


@dataclass(frozen=True)
class WorkProfile:
    """Complete hardware-facing description of one kernel invocation."""

    compute: ComputeProfile
    traffic: TrafficProfile


@dataclass(frozen=True)
class TimingBreakdown:
    """Where the kernel's time went (for tests and ablation analyses)."""

    launch_s: float
    compute_s: float
    bandwidth_s: float
    latency_s: float
    traffic: MemoryTraffic

    @property
    def total_s(self) -> float:
        return self.launch_s + max(self.compute_s, self.bandwidth_s, self.latency_s)

    @property
    def bound(self) -> str:
        """Which term binds: ``compute``, ``bandwidth``, or ``latency``."""
        terms = {
            "compute": self.compute_s,
            "bandwidth": self.bandwidth_s,
            "latency": self.latency_s,
        }
        return max(terms, key=terms.get)


def _bandwidth_time(traffic: MemoryTraffic, config: HardwareConfig) -> float:
    """Slowest hierarchy level at its resolved traffic volume."""
    times = [traffic.dram_bytes / config.dram_bandwidth]
    if config.l2_enabled:
        times.append(
            (traffic.l2_read_bytes + traffic.dram_write_bytes) / config.l2_bandwidth
        )
    if config.l1_enabled:
        times.append(traffic.l1_read_bytes / config.l1_bandwidth)
    return max(times)


def _average_latency_cycles(
    traffic: MemoryTraffic, config: HardwareConfig
) -> float:
    """Mean cycles per access round, weighted by where reads are served."""
    if traffic.l1_read_bytes <= 0.0:
        return 0.0
    l1_fraction = traffic.l1_hit_rate if config.l1_enabled else 0.0
    l2_served = (traffic.l2_read_bytes - traffic.dram_read_bytes) / max(
        traffic.l1_read_bytes, 1e-30
    )
    dram_fraction = traffic.dram_read_bytes / traffic.l1_read_bytes
    return (
        l1_fraction * config.l1_latency_cycles
        + max(l2_served, 0.0) * config.l2_latency_cycles
        + dram_fraction * config.dram_latency_cycles
    )


def _latency_time(
    work: WorkProfile, traffic: MemoryTraffic, config: HardwareConfig
) -> float:
    """Exposed memory latency given the kernel's resident parallelism."""
    if traffic.l1_read_bytes <= 0.0:
        return 0.0
    waves = work.compute.waves(config)
    resident_waves = min(waves, float(config.num_cus * config.max_waves_per_cu))
    inflight_bytes = max(resident_waves * _INFLIGHT_BYTES_PER_WAVE, 1.0)
    rounds = traffic.l1_read_bytes / inflight_bytes
    cycles_per_round = _average_latency_cycles(traffic, config)
    return rounds * cycles_per_round / config.gclk_hz


def _write_stall_cycles(
    total_s: float, traffic: MemoryTraffic, config: HardwareConfig
) -> float:
    """Cycles stalled on the write path.

    Writes drain at DRAM bandwidth; stall cycles grow with the share of
    the kernel's lifetime the write queue is under pressure, so
    write-heavy kernels (weight updates, large activations) show the
    high write-stall numbers Fig 4 reports.
    """
    if total_s <= 0.0 or traffic.dram_write_bytes <= 0.0:
        return 0.0
    drain_s = traffic.dram_write_bytes / config.dram_bandwidth
    pressure = min(1.0, drain_s / total_s)
    return drain_s * pressure * config.gclk_hz


def time_work(work: WorkProfile, config: HardwareConfig) -> tuple[float, TimingBreakdown, CounterSet]:
    """Time one kernel on ``config``; returns (seconds, breakdown, counters)."""
    traffic = resolve_traffic(work.traffic, config)
    breakdown = TimingBreakdown(
        launch_s=config.kernel_launch_s,
        compute_s=compute_time(work.compute, config),
        bandwidth_s=_bandwidth_time(traffic, config),
        latency_s=_latency_time(work, traffic, config),
        traffic=traffic,
    )
    total_s = breakdown.total_s
    counters = CounterSet(
        valu_insts=work.compute.flops
        / (config.wave_size * config.flops_per_lane_per_clk),
        dram_read_bytes=traffic.dram_read_bytes,
        dram_write_bytes=traffic.dram_write_bytes,
        l2_read_bytes=traffic.l2_read_bytes,
        write_stall_cycles=_write_stall_cycles(total_s, traffic, config),
        busy_cycles=total_s * config.gclk_hz,
    )
    return total_s, breakdown, counters


# Re-exported for convenience: the profiles kernels are built from.
__all__ += ["ComputeProfile", "TrafficProfile", "parallel_efficiency"]
