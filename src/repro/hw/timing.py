"""Kernel timing engine.

Combines the compute model (:mod:`repro.hw.compute`), the cache model
(:mod:`repro.hw.cache`), and latency/launch overheads into a runtime for
one kernel invocation on one hardware configuration:

``time = launch + max(compute, memory-bandwidth, memory-latency)``

* the *bandwidth* bound takes the slowest level of the hierarchy at its
  resolved traffic;
* the *latency* bound models outstanding-miss limits: a kernel with few
  waves in flight cannot cover average access latency, so disabling L1
  (raising average latency) disproportionately slows low-parallelism
  kernels — the SL-dependent sensitivity behind Figs 13/14.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.hw.cache import (
    MemoryTraffic,
    MemoryTrafficBatch,
    TrafficProfile,
    resolve_traffic,
    resolve_traffic_batch,
)
from repro.hw.compute import (
    ComputeProfile,
    compute_time,
    compute_time_batch,
    parallel_efficiency,
    waves_batch,
)
from repro.hw.config import HardwareConfig
from repro.hw.counters import CounterColumns, CounterSet

__all__ = [
    "WorkProfile",
    "WorkBatch",
    "TimingBreakdown",
    "TimingBreakdownBatch",
    "time_work",
    "time_work_batch",
]

#: Outstanding bytes one resident wave keeps in flight (two 64 B lines).
_INFLIGHT_BYTES_PER_WAVE = 128.0


@dataclass(frozen=True)
class WorkProfile:
    """Complete hardware-facing description of one kernel invocation."""

    compute: ComputeProfile
    traffic: TrafficProfile

    def __hash__(self) -> int:
        # Work profiles key the device's measurement memo; the generated
        # hash re-hashes both nested profiles (14 fields) on every
        # lookup.  Cache it — instances are frozen.  Matches the
        # generated hash: the tuple of all fields.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.compute, self.traffic))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self):
        # Hash salting is per process: drop the cache when pickled.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state


@dataclass(frozen=True, eq=False)
class WorkBatch:
    """Columns of :class:`WorkProfile`, one row per kernel invocation.

    The columnar form the vectorized timing engine consumes: four
    compute columns (:class:`~repro.hw.compute.ComputeProfile`) and six
    traffic columns (:class:`~repro.hw.cache.TrafficProfile`).  Batches
    compare by identity (``eq=False``) so they can key memo dicts; the
    rows themselves are assumed frozen after construction.
    """

    flops: np.ndarray
    work_items: np.ndarray
    issue_efficiency: np.ndarray
    workgroup_size: np.ndarray
    read_bytes: np.ndarray
    write_bytes: np.ndarray
    l1_reuse_fraction: np.ndarray
    l1_working_set: np.ndarray
    l2_reuse_fraction: np.ndarray
    l2_working_set: np.ndarray

    def __len__(self) -> int:
        return int(self.flops.size)

    @classmethod
    def from_profiles(cls, works: Sequence[WorkProfile]) -> "WorkBatch":
        """Columnarise a sequence of scalar work profiles.

        One Python pass builds a row-major table; the column slices are
        C-contiguous copies so later ufuncs stream them efficiently.
        """
        table = np.array(
            [
                (
                    c.flops,
                    c.work_items,
                    c.issue_efficiency,
                    c.workgroup_size,
                    t.read_bytes,
                    t.write_bytes,
                    t.l1_reuse_fraction,
                    t.l1_working_set,
                    t.l2_reuse_fraction,
                    t.l2_working_set,
                )
                for w in works
                for c, t in ((w.compute, w.traffic),)
            ],
            dtype=np.float64,
        ).reshape(len(works), 10)
        columns = np.ascontiguousarray(table.T)
        return cls(
            flops=columns[0],
            work_items=columns[1],
            issue_efficiency=columns[2],
            workgroup_size=columns[3],
            read_bytes=columns[4],
            write_bytes=columns[5],
            l1_reuse_fraction=columns[6],
            l1_working_set=columns[7],
            l2_reuse_fraction=columns[8],
            l2_working_set=columns[9],
        )

    @classmethod
    def concat(cls, batches: Sequence["WorkBatch"]) -> "WorkBatch":
        """Stack batches row-wise into one batch.

        The timing engine is purely row-wise, so timing the
        concatenation yields per-row results identical to timing each
        batch separately — the basis of the serving fast path's single
        ``run_batch`` call over all unique shapes.
        """
        return cls(
            **{
                field.name: np.concatenate(
                    [getattr(batch, field.name) for batch in batches]
                )
                for field in dataclasses.fields(cls)
            }
        )

    def row(self, i: int) -> WorkProfile:
        """Materialise one row as a scalar :class:`WorkProfile`."""
        return WorkProfile(
            compute=ComputeProfile(
                flops=float(self.flops[i]),
                work_items=int(self.work_items[i]),
                issue_efficiency=float(self.issue_efficiency[i]),
                workgroup_size=int(self.workgroup_size[i]),
            ),
            traffic=TrafficProfile(
                read_bytes=float(self.read_bytes[i]),
                write_bytes=float(self.write_bytes[i]),
                l1_reuse_fraction=float(self.l1_reuse_fraction[i]),
                l1_working_set=float(self.l1_working_set[i]),
                l2_reuse_fraction=float(self.l2_reuse_fraction[i]),
                l2_working_set=float(self.l2_working_set[i]),
            ),
        )


@dataclass(frozen=True)
class TimingBreakdown:
    """Where the kernel's time went (for tests and ablation analyses)."""

    launch_s: float
    compute_s: float
    bandwidth_s: float
    latency_s: float
    traffic: MemoryTraffic

    @property
    def total_s(self) -> float:
        return self.launch_s + max(self.compute_s, self.bandwidth_s, self.latency_s)

    @property
    def bound(self) -> str:
        """Which term binds: ``compute``, ``bandwidth``, or ``latency``."""
        terms = {
            "compute": self.compute_s,
            "bandwidth": self.bandwidth_s,
            "latency": self.latency_s,
        }
        return max(terms, key=terms.get)


#: Tie-break order of :attr:`TimingBreakdown.bound` — ``max`` over the
#: dict returns the *first* key attaining the maximum, in insertion
#: order.  The batched form must break ties the same way.
_BOUND_LABELS = ("compute", "bandwidth", "latency")


@dataclass(frozen=True, eq=False)
class TimingBreakdownBatch:
    """Columns of :class:`TimingBreakdown`, one row per kernel."""

    launch_s: float
    compute_s: np.ndarray
    bandwidth_s: np.ndarray
    latency_s: np.ndarray
    traffic: MemoryTrafficBatch

    @property
    def total_s(self) -> np.ndarray:
        return self.launch_s + np.maximum(
            np.maximum(self.compute_s, self.bandwidth_s), self.latency_s
        )

    @property
    def bound_index(self) -> np.ndarray:
        """Index into ``("compute", "bandwidth", "latency")`` per row.

        ``np.argmax`` returns the first occurrence of the maximum, which
        matches the scalar ``bound``'s dict-order tie-breaking exactly.
        """
        stacked = np.stack([self.compute_s, self.bandwidth_s, self.latency_s])
        return np.argmax(stacked, axis=0)

    @property
    def bound(self) -> tuple[str, ...]:
        """Per-row bound labels (column form of ``TimingBreakdown.bound``)."""
        return tuple(_BOUND_LABELS[i] for i in self.bound_index)

    def row(self, i: int) -> TimingBreakdown:
        """Materialise one row as a scalar :class:`TimingBreakdown`."""
        return TimingBreakdown(
            launch_s=self.launch_s,
            compute_s=float(self.compute_s[i]),
            bandwidth_s=float(self.bandwidth_s[i]),
            latency_s=float(self.latency_s[i]),
            traffic=self.traffic.row(i),
        )


def _bandwidth_time(traffic: MemoryTraffic, config: HardwareConfig) -> float:
    """Slowest hierarchy level at its resolved traffic volume."""
    times = [traffic.dram_bytes / config.dram_bandwidth]
    if config.l2_enabled:
        times.append(
            (traffic.l2_read_bytes + traffic.dram_write_bytes) / config.l2_bandwidth
        )
    if config.l1_enabled:
        times.append(traffic.l1_read_bytes / config.l1_bandwidth)
    return max(times)


def _average_latency_cycles(
    traffic: MemoryTraffic, config: HardwareConfig
) -> float:
    """Mean cycles per access round, weighted by where reads are served."""
    if traffic.l1_read_bytes <= 0.0:
        return 0.0
    l1_fraction = traffic.l1_hit_rate if config.l1_enabled else 0.0
    l2_served = (traffic.l2_read_bytes - traffic.dram_read_bytes) / max(
        traffic.l1_read_bytes, 1e-30
    )
    dram_fraction = traffic.dram_read_bytes / traffic.l1_read_bytes
    return (
        l1_fraction * config.l1_latency_cycles
        + max(l2_served, 0.0) * config.l2_latency_cycles
        + dram_fraction * config.dram_latency_cycles
    )


def _latency_time(
    work: WorkProfile, traffic: MemoryTraffic, config: HardwareConfig
) -> float:
    """Exposed memory latency given the kernel's resident parallelism."""
    if traffic.l1_read_bytes <= 0.0:
        return 0.0
    waves = work.compute.waves(config)
    resident_waves = min(waves, float(config.num_cus * config.max_waves_per_cu))
    inflight_bytes = max(resident_waves * _INFLIGHT_BYTES_PER_WAVE, 1.0)
    rounds = traffic.l1_read_bytes / inflight_bytes
    cycles_per_round = _average_latency_cycles(traffic, config)
    return rounds * cycles_per_round / config.gclk_hz


def _write_stall_cycles(
    total_s: float, traffic: MemoryTraffic, config: HardwareConfig
) -> float:
    """Cycles stalled on the write path.

    Writes drain at DRAM bandwidth; stall cycles grow with the share of
    the kernel's lifetime the write queue is under pressure, so
    write-heavy kernels (weight updates, large activations) show the
    high write-stall numbers Fig 4 reports.
    """
    if total_s <= 0.0 or traffic.dram_write_bytes <= 0.0:
        return 0.0
    drain_s = traffic.dram_write_bytes / config.dram_bandwidth
    pressure = min(1.0, drain_s / total_s)
    return drain_s * pressure * config.gclk_hz


def time_work(work: WorkProfile, config: HardwareConfig) -> tuple[float, TimingBreakdown, CounterSet]:
    """Time one kernel on ``config``; returns (seconds, breakdown, counters)."""
    traffic = resolve_traffic(work.traffic, config)
    breakdown = TimingBreakdown(
        launch_s=config.kernel_launch_s,
        compute_s=compute_time(work.compute, config),
        bandwidth_s=_bandwidth_time(traffic, config),
        latency_s=_latency_time(work, traffic, config),
        traffic=traffic,
    )
    total_s = breakdown.total_s
    counters = CounterSet(
        valu_insts=work.compute.flops
        / (config.wave_size * config.flops_per_lane_per_clk),
        dram_read_bytes=traffic.dram_read_bytes,
        dram_write_bytes=traffic.dram_write_bytes,
        l2_read_bytes=traffic.l2_read_bytes,
        write_stall_cycles=_write_stall_cycles(total_s, traffic, config),
        busy_cycles=total_s * config.gclk_hz,
    )
    return total_s, breakdown, counters


# -- vectorized (column) forms ----------------------------------------
#
# Each helper mirrors its scalar counterpart above expression for
# expression (same association order, same guards), so a row of the
# batch result is bit-identical to calling :func:`time_work` on that
# row's profile.  tests/test_hw_batch.py asserts this over random work
# and every Table II configuration.


def _bandwidth_time_batch(
    traffic: MemoryTrafficBatch, config: HardwareConfig
) -> np.ndarray:
    """Column form of :func:`_bandwidth_time`."""
    times = traffic.dram_bytes / config.dram_bandwidth
    if config.l2_enabled:
        times = np.maximum(
            times,
            (traffic.l2_read_bytes + traffic.dram_write_bytes)
            / config.l2_bandwidth,
        )
    if config.l1_enabled:
        times = np.maximum(times, traffic.l1_read_bytes / config.l1_bandwidth)
    return times


def _average_latency_cycles_batch(
    traffic: MemoryTrafficBatch, config: HardwareConfig
) -> np.ndarray:
    """Column form of :func:`_average_latency_cycles`."""
    l1_reads = traffic.l1_read_bytes
    # Rows with no reads are masked to 0.0 at the end; the safe
    # denominator only suppresses the division warning for them.
    safe_reads = np.where(l1_reads > 0.0, l1_reads, 1.0)
    l1_fraction = traffic.l1_hit_rate if config.l1_enabled else 0.0
    l2_served = (traffic.l2_read_bytes - traffic.dram_read_bytes) / np.maximum(
        l1_reads, 1e-30
    )
    dram_fraction = traffic.dram_read_bytes / safe_reads
    cycles = (
        l1_fraction * config.l1_latency_cycles
        + np.maximum(l2_served, 0.0) * config.l2_latency_cycles
        + dram_fraction * config.dram_latency_cycles
    )
    return np.where(l1_reads <= 0.0, 0.0, cycles)


def _latency_time_batch(
    work: WorkBatch, traffic: MemoryTrafficBatch, config: HardwareConfig
) -> np.ndarray:
    """Column form of :func:`_latency_time`."""
    waves = waves_batch(work.work_items, config)
    resident_waves = np.minimum(
        waves, float(config.num_cus * config.max_waves_per_cu)
    )
    inflight_bytes = np.maximum(resident_waves * _INFLIGHT_BYTES_PER_WAVE, 1.0)
    rounds = traffic.l1_read_bytes / inflight_bytes
    cycles_per_round = _average_latency_cycles_batch(traffic, config)
    return np.where(
        traffic.l1_read_bytes <= 0.0,
        0.0,
        rounds * cycles_per_round / config.gclk_hz,
    )


def _write_stall_cycles_batch(
    total_s: np.ndarray, traffic: MemoryTrafficBatch, config: HardwareConfig
) -> np.ndarray:
    """Column form of :func:`_write_stall_cycles`."""
    safe_total = np.where(total_s > 0.0, total_s, 1.0)
    drain_s = traffic.dram_write_bytes / config.dram_bandwidth
    pressure = np.minimum(1.0, drain_s / safe_total)
    stalls = drain_s * pressure * config.gclk_hz
    return np.where(
        (total_s <= 0.0) | (traffic.dram_write_bytes <= 0.0), 0.0, stalls
    )


def time_work_batch(
    work: WorkBatch, config: HardwareConfig
) -> tuple[np.ndarray, TimingBreakdownBatch, CounterColumns]:
    """Time a whole column of kernels on ``config`` in array ops.

    Returns ``(seconds, breakdowns, counters)`` — the column forms of
    :func:`time_work`'s results, row-wise bit-identical to it.
    """
    traffic = resolve_traffic_batch(
        work.read_bytes,
        work.write_bytes,
        work.l1_reuse_fraction,
        work.l1_working_set,
        work.l2_reuse_fraction,
        work.l2_working_set,
        config,
    )
    breakdown = TimingBreakdownBatch(
        launch_s=config.kernel_launch_s,
        compute_s=compute_time_batch(
            work.flops,
            work.work_items,
            work.issue_efficiency,
            work.workgroup_size,
            config,
        ),
        bandwidth_s=_bandwidth_time_batch(traffic, config),
        latency_s=_latency_time_batch(work, traffic, config),
        traffic=traffic,
    )
    total_s = breakdown.total_s
    counters = CounterColumns(
        valu_insts=work.flops
        / (config.wave_size * config.flops_per_lane_per_clk),
        dram_read_bytes=traffic.dram_read_bytes,
        dram_write_bytes=traffic.dram_write_bytes,
        l2_read_bytes=traffic.l2_read_bytes,
        write_stall_cycles=_write_stall_cycles_batch(total_s, traffic, config),
        busy_cycles=total_s * config.gclk_hz,
    )
    return total_s, breakdown, counters


# Re-exported for convenience: the profiles kernels are built from.
__all__ += ["ComputeProfile", "TrafficProfile", "parallel_efficiency"]
