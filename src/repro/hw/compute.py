"""Compute-side model: work description and achievable issue rate.

A kernel's compute description is its FLOP count, how many work-items it
launches, and an intrinsic issue efficiency (how close a perfectly fed
kernel of this type gets to peak — GEMM inner loops issue denser than
scattered pointwise code).  The model converts CU count, clock, and the
kernel's parallelism into an achievable FLOP rate:

* **occupancy** — a kernel with fewer waves than the machine has wave
  slots cannot fill it; small kernels become latency/launch bound, which
  is what makes short-sequence iterations *less* sensitive to CU count
  and clock in Figs 13/14;
* **tail effect** — the last partially filled round of workgroups
  leaves CUs idle (classic wave-quantisation), which also shrinks as
  sequences grow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.config import HardwareConfig

__all__ = [
    "ComputeProfile",
    "compute_time",
    "parallel_efficiency",
    "waves_batch",
    "parallel_efficiency_batch",
    "compute_time_batch",
]

#: Waves a CU needs in flight to hide its own pipeline latency.  Below
#: this the kernel cannot reach its issue efficiency even when resident.
_LATENCY_HIDING_WAVES = 4.0


@dataclass(frozen=True)
class ComputeProfile:
    """Compute behaviour of one kernel invocation."""

    flops: float
    work_items: int
    #: Fraction of peak a fully occupied machine reaches on this kernel.
    issue_efficiency: float = 0.7
    #: Work-items per workgroup (tail effects quantise at this size).
    workgroup_size: int = 256

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ConfigurationError("flops cannot be negative")
        if self.work_items <= 0:
            raise ConfigurationError("work_items must be positive")
        if not 0.0 < self.issue_efficiency <= 1.0:
            raise ConfigurationError(
                f"issue_efficiency must lie in (0, 1], got {self.issue_efficiency}"
            )
        if self.workgroup_size <= 0:
            raise ConfigurationError("workgroup_size must be positive")

    @property
    def workgroups(self) -> int:
        return max(1, math.ceil(self.work_items / self.workgroup_size))

    def waves(self, config: HardwareConfig) -> float:
        return max(1.0, self.work_items / config.wave_size)


def parallel_efficiency(profile: ComputeProfile, config: HardwareConfig) -> float:
    """Fraction of the machine this kernel can actually keep busy."""
    # Occupancy: how full are the machine's wave slots?
    wave_slots = config.num_cus * _LATENCY_HIDING_WAVES
    occupancy = min(1.0, profile.waves(config) / wave_slots)

    # Tail: the final round of workgroups only fills part of the machine.
    workgroups = profile.workgroups
    rounds = math.ceil(workgroups / config.num_cus)
    tail = workgroups / (rounds * config.num_cus)

    return occupancy * tail


def compute_time(profile: ComputeProfile, config: HardwareConfig) -> float:
    """Seconds the ALUs need for this kernel on ``config``."""
    if profile.flops == 0.0:
        return 0.0
    efficiency = profile.issue_efficiency * parallel_efficiency(profile, config)
    achievable = config.peak_flops * max(efficiency, 1e-6)
    return profile.flops / achievable


# -- vectorized (column) forms ----------------------------------------
#
# The batch functions below evaluate whole columns of kernels at once.
# They mirror the scalar formulas operation for operation — same
# expressions, same association, same tie handling — so their results
# are bit-identical to looping the scalar versions (asserted in
# tests/test_hw_batch.py).  All integer quantities stay exact in
# float64: work-item and FLOP counts in the modelled networks are far
# below 2**53.


def waves_batch(work_items: np.ndarray, config: HardwareConfig) -> np.ndarray:
    """Column form of :meth:`ComputeProfile.waves`."""
    return np.maximum(1.0, work_items / config.wave_size)


def parallel_efficiency_batch(
    work_items: np.ndarray,
    workgroup_size: np.ndarray,
    config: HardwareConfig,
) -> np.ndarray:
    """Column form of :func:`parallel_efficiency`."""
    wave_slots = config.num_cus * _LATENCY_HIDING_WAVES
    occupancy = np.minimum(1.0, waves_batch(work_items, config) / wave_slots)

    workgroups = np.maximum(1.0, np.ceil(work_items / workgroup_size))
    rounds = np.ceil(workgroups / config.num_cus)
    tail = workgroups / (rounds * config.num_cus)

    return occupancy * tail


def compute_time_batch(
    flops: np.ndarray,
    work_items: np.ndarray,
    issue_efficiency: np.ndarray,
    workgroup_size: np.ndarray,
    config: HardwareConfig,
) -> np.ndarray:
    """Column form of :func:`compute_time`.

    ``achievable`` is always positive, so a zero-FLOP kernel divides to
    exactly ``+0.0`` — the same value the scalar early return produces.
    """
    efficiency = issue_efficiency * parallel_efficiency_batch(
        work_items, workgroup_size, config
    )
    achievable = config.peak_flops * np.maximum(efficiency, 1e-6)
    return flops / achievable
