"""Performance-counter model.

The paper's profiling substrate (Radeon Compute Profiler) reports
per-kernel hardware counters; Fig 4 plots three of them — VALU
instructions, load (fetch) size, and memory write stalls — averaged
across an iteration's kernels.  :class:`CounterSet` is our equivalent
record.  Counters accumulate across kernels with ``+`` and are averaged
per-kernel or per-second by the profiling layer.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

__all__ = ["CounterSet", "CounterColumns"]


@dataclass(frozen=True)
class CounterSet:
    """Counters for one kernel invocation (or an accumulation of them).

    ``valu_insts``
        Vector-ALU instructions issued (wave granularity).
    ``dram_read_bytes`` / ``dram_write_bytes``
        Traffic that reached device memory ("load data size" /
        "mem write size" in Fig 4).
    ``l2_read_bytes``
        Read traffic that reached L2 (for hit-rate style analyses).
    ``write_stall_cycles``
        Cycles stalled on the memory write path ("mem write stalls").
    ``busy_cycles``
        Cycles the kernel occupied the device; the denominator for
        stall-rate style statistics.
    """

    valu_insts: float = 0.0
    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0
    l2_read_bytes: float = 0.0
    write_stall_cycles: float = 0.0
    busy_cycles: float = 0.0

    def __add__(self, other: "CounterSet") -> "CounterSet":
        if not isinstance(other, CounterSet):
            return NotImplemented
        return CounterSet(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(CounterSet)
            }
        )

    def scaled(self, factor: float) -> "CounterSet":
        """Return all counters multiplied by ``factor``."""
        return CounterSet(
            **{f.name: getattr(self, f.name) * factor for f in fields(CounterSet)}
        )

    def as_dict(self) -> dict[str, float]:
        return {f.name: float(getattr(self, f.name)) for f in fields(CounterSet)}

    @property
    def write_stall_fraction(self) -> float:
        """Write-stall cycles as a fraction of busy cycles."""
        if self.busy_cycles <= 0.0:
            return 0.0
        return self.write_stall_cycles / self.busy_cycles

    @staticmethod
    def zero() -> "CounterSet":
        return CounterSet()


_FIELD_NAMES = tuple(f.name for f in fields(CounterSet))


@dataclass(frozen=True, eq=False)
class CounterColumns:
    """Columns of :class:`CounterSet`, one row per kernel invocation.

    The vectorized timing engine emits these instead of materialising a
    :class:`CounterSet` per kernel.  ``scaled`` is the column form of
    :meth:`CounterSet.scaled`; :meth:`sum_sequential` reduces every
    column with the same left-to-right accumulation the scalar
    reference loop performs, so totals agree bit for bit.
    """

    valu_insts: np.ndarray
    dram_read_bytes: np.ndarray
    dram_write_bytes: np.ndarray
    l2_read_bytes: np.ndarray
    write_stall_cycles: np.ndarray
    busy_cycles: np.ndarray

    def __len__(self) -> int:
        return int(self.valu_insts.size)

    def scaled(self, factor: np.ndarray) -> "CounterColumns":
        """Every column multiplied row-wise by ``factor``."""
        return CounterColumns(
            **{name: getattr(self, name) * factor for name in _FIELD_NAMES}
        )

    def row(self, i: int) -> CounterSet:
        """Materialise one row as a scalar :class:`CounterSet`."""
        return CounterSet(
            **{name: float(getattr(self, name)[i]) for name in _FIELD_NAMES}
        )

    def rows(self, lo: int, hi: int) -> "CounterColumns":
        """The ``[lo, hi)`` row range as its own column set (views)."""
        return CounterColumns(
            **{name: getattr(self, name)[lo:hi] for name in _FIELD_NAMES}
        )

    def sum_sequential(self) -> CounterSet:
        """Left-fold every column, matching ``sum(rows, zero())``.

        One stacked ``cumsum`` along the row axis folds all six columns
        at once; each row of the stack accumulates left to right, so
        every field matches the scalar accumulation loop bit for bit.
        """
        if len(self) == 0:
            return CounterSet.zero()
        stacked = np.stack([getattr(self, name) for name in _FIELD_NAMES])
        folded = np.cumsum(stacked, axis=1)[:, -1]
        return CounterSet(**dict(zip(_FIELD_NAMES, folded.tolist())))
