"""Performance-counter model.

The paper's profiling substrate (Radeon Compute Profiler) reports
per-kernel hardware counters; Fig 4 plots three of them — VALU
instructions, load (fetch) size, and memory write stalls — averaged
across an iteration's kernels.  :class:`CounterSet` is our equivalent
record.  Counters accumulate across kernels with ``+`` and are averaged
per-kernel or per-second by the profiling layer.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["CounterSet"]


@dataclass(frozen=True)
class CounterSet:
    """Counters for one kernel invocation (or an accumulation of them).

    ``valu_insts``
        Vector-ALU instructions issued (wave granularity).
    ``dram_read_bytes`` / ``dram_write_bytes``
        Traffic that reached device memory ("load data size" /
        "mem write size" in Fig 4).
    ``l2_read_bytes``
        Read traffic that reached L2 (for hit-rate style analyses).
    ``write_stall_cycles``
        Cycles stalled on the memory write path ("mem write stalls").
    ``busy_cycles``
        Cycles the kernel occupied the device; the denominator for
        stall-rate style statistics.
    """

    valu_insts: float = 0.0
    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0
    l2_read_bytes: float = 0.0
    write_stall_cycles: float = 0.0
    busy_cycles: float = 0.0

    def __add__(self, other: "CounterSet") -> "CounterSet":
        if not isinstance(other, CounterSet):
            return NotImplemented
        return CounterSet(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(CounterSet)
            }
        )

    def scaled(self, factor: float) -> "CounterSet":
        """Return all counters multiplied by ``factor``."""
        return CounterSet(
            **{f.name: getattr(self, f.name) * factor for f in fields(CounterSet)}
        )

    def as_dict(self) -> dict[str, float]:
        return {f.name: float(getattr(self, f.name)) for f in fields(CounterSet)}

    @property
    def write_stall_fraction(self) -> float:
        """Write-stall cycles as a fraction of busy cycles."""
        if self.busy_cycles <= 0.0:
            return 0.0
        return self.write_stall_cycles / self.busy_cycles

    @staticmethod
    def zero() -> "CounterSet":
        return CounterSet()
