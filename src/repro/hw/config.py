"""Hardware configurations, including the paper's Table II.

The baseline models a Radeon Vega Frontier Edition: 64 compute units at
1.6 GHz, 16 KiB L1 per CU, 4 MiB shared L2, and 16 GB HBM2 at roughly
483 GB/s.  Table II of the paper derives four variants by halving the
clock, cutting CUs to 16, and disabling L1 or L2.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields, replace

from repro.errors import ConfigurationError
from repro.util.units import GHZ, KIB, MHZ, MIB, format_frequency

__all__ = ["HardwareConfig", "VEGA_FE", "PAPER_CONFIGS", "paper_config"]


@dataclass(frozen=True)
class HardwareConfig:
    """A GPU configuration point.

    Attributes mirror the knobs the paper varies (Table II) plus the
    fixed machine parameters the timing model needs.  ``l1_bytes`` and
    ``l2_bytes`` of zero mean the cache is disabled, as in configs #4
    and #5.
    """

    name: str
    gclk_hz: float = 1.6 * GHZ
    num_cus: int = 64
    l1_bytes: int = 16 * KIB
    l2_bytes: int = 4 * MIB
    dram_bandwidth: float = 483e9
    #: FP32 FMA lanes per CU (GCN: 64 lanes, 2 flops per FMA per clock).
    simd_lanes: int = 64
    flops_per_lane_per_clk: float = 2.0
    #: Wavefront width; work-items are scheduled in waves of this size.
    wave_size: int = 64
    #: Maximum concurrently resident waves per CU (occupancy ceiling).
    max_waves_per_cu: int = 40
    #: L1 and L2 bandwidth per clock, bytes (device-wide for L2,
    #: per-CU for L1).
    l1_bytes_per_clk_per_cu: float = 64.0
    l2_bytes_per_clk: float = 1024.0
    #: Fixed host-side launch cost per kernel, seconds.
    kernel_launch_s: float = 4.0e-6
    #: Average DRAM and L2 access latencies, cycles at ``gclk_hz``.
    dram_latency_cycles: float = 560.0
    l2_latency_cycles: float = 190.0
    l1_latency_cycles: float = 28.0

    def __post_init__(self) -> None:
        if self.gclk_hz <= 0:
            raise ConfigurationError(f"{self.name}: gclk_hz must be positive")
        if self.num_cus <= 0:
            raise ConfigurationError(f"{self.name}: num_cus must be positive")
        if self.l1_bytes < 0 or self.l2_bytes < 0:
            raise ConfigurationError(f"{self.name}: cache sizes cannot be negative")
        if self.dram_bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: dram_bandwidth must be positive")

    def __hash__(self) -> int:
        # Configs key every kernel-selection and measurement memo, and
        # the generated hash tuples all 17 fields per lookup — cache it
        # (instances are frozen).  Matches the generated hash: the
        # tuple of all fields, in declaration order.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(
                tuple(getattr(self, field.name) for field in dataclass_fields(self))
            )
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self):
        # Hash salting is per process: drop the cache when pickled.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    @property
    def peak_flops(self) -> float:
        """Peak FP32 throughput in FLOP/s."""
        return (
            self.num_cus
            * self.simd_lanes
            * self.flops_per_lane_per_clk
            * self.gclk_hz
        )

    @property
    def l1_bandwidth(self) -> float:
        """Aggregate L1 bandwidth, bytes/s (0 when L1 is disabled)."""
        if self.l1_bytes == 0:
            return 0.0
        return self.l1_bytes_per_clk_per_cu * self.num_cus * self.gclk_hz

    @property
    def l2_bandwidth(self) -> float:
        """Device L2 bandwidth, bytes/s (0 when L2 is disabled)."""
        if self.l2_bytes == 0:
            return 0.0
        return self.l2_bytes_per_clk * self.gclk_hz

    @property
    def l1_enabled(self) -> bool:
        return self.l1_bytes > 0

    @property
    def l2_enabled(self) -> bool:
        return self.l2_bytes > 0

    def describe(self) -> str:
        """One-line human-readable summary (for harness output)."""
        l1 = f"{self.l1_bytes // KIB} KiB" if self.l1_enabled else "off"
        l2 = f"{self.l2_bytes // MIB} MiB" if self.l2_enabled else "off"
        return (
            f"{self.name}: {format_frequency(self.gclk_hz)}, "
            f"{self.num_cus} CUs, L1 {l1}, L2 {l2}"
        )


#: Baseline machine — the paper's config #1.
VEGA_FE = HardwareConfig(name="config#1")

#: Table II of the paper: the five evaluated configurations.
PAPER_CONFIGS: dict[int, HardwareConfig] = {
    1: VEGA_FE,
    2: replace(VEGA_FE, name="config#2", gclk_hz=852 * MHZ),
    3: replace(VEGA_FE, name="config#3", num_cus=16),
    4: replace(VEGA_FE, name="config#4", l1_bytes=0),
    5: replace(VEGA_FE, name="config#5", l2_bytes=0),
}


def paper_config(index: int) -> HardwareConfig:
    """Return Table II config ``index`` (1-5)."""
    try:
        return PAPER_CONFIGS[index]
    except KeyError:
        raise ConfigurationError(
            f"paper configs are numbered 1-5, got {index}"
        ) from None
