"""Async job queue: submitted work, polled status, cooperative cancel.

The service accepts work faster than it can run it, so every submitted
request becomes a :class:`Job` with a lifecycle the client can poll::

    queued -> running -> done | failed | cancelled
        \\------------------------------^  (cancelled while queued)

The :class:`JobQueue` is the thread-safe hand-off between the HTTP
front end (``submit``/``get``/``cancel``/``snapshot``) and the worker
tier (``next_job`` blocks for work; ``finish``/``fail``/``mark_cancelled``
close a claim).  Cancellation is *cooperative*: cancelling a queued job
removes it immediately, while cancelling a running one sets the job's
cancel event and the executing worker exits at its next checkpoint —
between sweep points, between pool futures, or after the in-flight
selector call — raising :class:`JobCancelled` to abandon the result.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any

from repro.errors import ReproError
from repro.serve.protocol import JobRequest, NotFoundError, one_line

__all__ = ["JOB_STATES", "Job", "JobCancelled", "JobQueue"]

#: Every lifecycle state, in documentation order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job can never leave.
TERMINAL_STATES = ("done", "failed", "cancelled")


class JobCancelled(ReproError):
    """Raised inside a worker when its job's cancel event is set."""


class Job:
    """One submitted request and everything its lifecycle produced.

    State transitions go through the owning :class:`JobQueue` (which
    holds the lock); callers treat jobs as read-only snapshots via
    :meth:`to_dict`.
    """

    __slots__ = (
        "id", "kind", "request", "state", "result", "error", "error_type",
        "submitted_s", "started_s", "finished_s", "cancel_event",
    )

    def __init__(self, job_id: str, request: JobRequest):
        self.id = job_id
        self.kind = request.kind
        self.request = request
        self.state = "queued"
        self.result: Any = None
        self.error: str | None = None
        self.error_type: str | None = None
        self.submitted_s = time.time()
        self.started_s: float | None = None
        self.finished_s: float | None = None
        self.cancel_event = threading.Event()

    def check_cancelled(self) -> None:
        """Cooperative checkpoint: abandon the job if cancel was requested."""
        if self.cancel_event.is_set():
            raise JobCancelled(f"job {self.id} cancelled")

    def to_dict(self) -> dict[str, Any]:
        """Status snapshot (never includes the result payload)."""
        payload: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "describe": self.request.describe(),
            "state": self.state,
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
        }
        if self.error is not None:
            payload["error"] = {"type": self.error_type, "message": self.error}
        return payload


class JobQueue:
    """FIFO queue of :class:`Job` with status tracking and cancellation."""

    def __init__(self, max_depth: int | None = None):
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be positive, got {max_depth}")
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._pending: deque[Job] = deque()
        self._jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._closed = False

    # -- front end -----------------------------------------------------

    def submit(self, request: JobRequest) -> Job:
        """Enqueue a parsed request; returns the queued job."""
        with self._lock:
            if self._closed:
                raise ReproError("the job queue is shut down")
            if self.max_depth is not None and len(self._pending) >= self.max_depth:
                raise ReproError(
                    f"queue full ({self.max_depth} jobs pending); retry later"
                )
            job = Job(f"job-{next(self._ids)}", request)
            self._jobs[job.id] = job
            self._pending.append(job)
            self._work_ready.notify()
            return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise NotFoundError(f"no such job: {job_id}")
        return job

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; immediate for queued jobs.

        Terminal jobs are left untouched (cancel is idempotent and
        never un-finishes work).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise NotFoundError(f"no such job: {job_id}")
            if job.state == "queued":
                self._pending.remove(job)
                job.state = "cancelled"
                job.finished_s = time.time()
                job.cancel_event.set()
            elif job.state == "running":
                job.cancel_event.set()
            return job

    def snapshot(self) -> dict[str, Any]:
        """Queue depth and per-state counts, for ``/stats``."""
        with self._lock:
            counts = dict.fromkeys(JOB_STATES, 0)
            for job in self._jobs.values():
                counts[job.state] += 1
            return {
                "depth": len(self._pending),
                "jobs": len(self._jobs),
                "states": counts,
            }

    def jobs(self) -> list[Job]:
        """All known jobs, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    # -- worker side ---------------------------------------------------

    def next_job(self, timeout: float | None = None) -> Job | None:
        """Claim the oldest queued job, blocking up to ``timeout``.

        Returns ``None`` on timeout or once the queue is closed and
        drained — the workers' signal to exit.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while not self._pending:
                if self._closed:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._work_ready.wait(remaining)
            job = self._pending.popleft()
            job.state = "running"
            job.started_s = time.time()
            return job

    def finish(self, job: Job, result: Any) -> None:
        with self._lock:
            job.result = result
            job.state = "done"
            job.finished_s = time.time()

    def fail(self, job: Job, exc: BaseException) -> None:
        with self._lock:
            job.error = one_line(str(exc))
            job.error_type = type(exc).__name__
            job.state = "failed"
            job.finished_s = time.time()

    def mark_cancelled(self, job: Job) -> None:
        with self._lock:
            job.state = "cancelled"
            job.finished_s = time.time()

    def close(self) -> None:
        """Stop accepting work and wake every blocked worker."""
        with self._lock:
            self._closed = True
            self._work_ready.notify_all()
