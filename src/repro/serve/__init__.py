"""repro.serve — the always-on analysis service.

A stdlib-only HTTP/JSON daemon over the existing analysis engine:
``analyze``/``sweep``/``stream``/``traffic`` requests become queued jobs executed
by a worker tier against one shared, LRU-bounded
:class:`~repro.api.cache.TraceCache`, and streaming identifications run
as concurrent multiplexed sessions.  The wire format is the existing
spec JSON round-trip (:class:`~repro.api.spec.AnalysisSpec`,
:class:`~repro.api.spec.SweepSpec`, :class:`~repro.stream.spec.StreamSpec`)
verbatim, inside versioned envelopes from :mod:`repro.serve.protocol`.

Start it with ``repro serve`` or embed it::

    from repro.serve import ReproServer

    with ReproServer(port=0) as server:
        ...  # POST /jobs against server.url
"""

from repro.serve.metrics import LatencyHistogram, MetricsRegistry, percentile
from repro.serve.protocol import (
    JOB_KINDS,
    PROTOCOL_VERSION,
    JobRequest,
    NotFoundError,
    ProtocolError,
    error_envelope,
    error_status,
    ok_envelope,
    one_line,
    parse_job_submission,
    parse_records,
    parse_stream_open,
)
from repro.serve.queue import JOB_STATES, Job, JobCancelled, JobQueue
from repro.serve.server import ReproServer, ServeApp
from repro.serve.sessions import SessionManager, StreamSession
from repro.serve.workers import WorkerPool

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "PROTOCOL_VERSION",
    "Job",
    "JobCancelled",
    "JobQueue",
    "JobRequest",
    "LatencyHistogram",
    "MetricsRegistry",
    "NotFoundError",
    "ProtocolError",
    "ReproServer",
    "ServeApp",
    "SessionManager",
    "StreamSession",
    "WorkerPool",
    "error_envelope",
    "error_status",
    "ok_envelope",
    "one_line",
    "parse_job_submission",
    "parse_records",
    "parse_stream_open",
    "percentile",
]
