"""Wire protocol of the analysis service: versioned JSON envelopes.

Every response the daemon emits is an *envelope*: a JSON object whose
``v`` field carries :data:`PROTOCOL_VERSION` and whose ``ok`` flag says
whether ``error`` (a one-line structured failure) or the payload fields
are present.  Requests reuse the library's declarative specs verbatim —
an ``analyze`` job body embeds an
:class:`~repro.api.spec.AnalysisSpec` dict, ``sweep`` a
:class:`~repro.api.parallel.SweepSpec`, ``stream`` a
:class:`~repro.stream.spec.StreamSpec`, ``traffic`` a
:class:`~repro.traffic.spec.TrafficSpec` — so anything that JSON
round-trips through the batch API is a valid wire payload with no
translation layer.

Failures map :class:`~repro.errors.ReproError` (and protocol-level
misuse) to ``{"type": <class name>, "message": <one line>}`` plus an
HTTP status, mirroring the CLI's single-line stderr contract: clients
get exactly one line per failure, never a traceback.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

from repro.api.parallel import SWEEP_MODES, SweepSpec
from repro.api.spec import AnalysisSpec, ProjectionSpec
from repro.errors import ConfigurationError, ReproError
from repro.stream.spec import StreamSpec
from repro.traffic.spec import TrafficSpec

__all__ = [
    "PROTOCOL_VERSION",
    "JOB_KINDS",
    "NotFoundError",
    "ProtocolError",
    "JobRequest",
    "error_envelope",
    "error_status",
    "ok_envelope",
    "one_line",
    "parse_job_submission",
    "parse_records",
    "parse_stream_open",
]

#: Bumped whenever an envelope or endpoint changes incompatibly.
PROTOCOL_VERSION = 1

#: Job kinds the service accepts, in documentation order.
JOB_KINDS = ("analyze", "sweep", "stream", "traffic")


class ProtocolError(ReproError):
    """A request the service could not even interpret (HTTP 400)."""


class NotFoundError(ReproError):
    """A path, job, or session that does not exist (HTTP 404)."""


def one_line(message: str) -> str:
    """Collapse a message to a single line (the CLI's error contract)."""
    return " ".join(str(message).split()) or "unknown error"


def ok_envelope(payload: Mapping[str, Any] | None = None) -> dict[str, Any]:
    """A success envelope with ``payload``'s fields merged in."""
    envelope: dict[str, Any] = {"v": PROTOCOL_VERSION, "ok": True}
    if payload:
        envelope.update(payload)
    return envelope


def error_envelope(exc: BaseException) -> dict[str, Any]:
    """The one-line structured form of a failure."""
    return {
        "v": PROTOCOL_VERSION,
        "ok": False,
        "error": {"type": type(exc).__name__, "message": one_line(str(exc))},
    }


def error_status(exc: BaseException) -> int:
    """HTTP status an exception maps to."""
    if isinstance(exc, NotFoundError):
        return 404
    if isinstance(exc, (ProtocolError, ReproError)):
        return 400
    return 500


@dataclass(frozen=True)
class JobRequest:
    """One parsed job submission: its kind, spec, and options.

    ``spec`` is the fully validated library object (construction
    already rejected unknown names and bad ranges, so a queued job can
    only fail for runtime reasons).  ``projection`` applies to analyze
    jobs; ``mode``/``workers`` to sweep jobs.
    """

    kind: str
    spec: AnalysisSpec | SweepSpec | StreamSpec | TrafficSpec
    projection: ProjectionSpec | None = None
    mode: str | None = None
    workers: int | None = None

    def describe(self) -> str:
        """A short human-readable label for listings."""
        if self.kind == "analyze":
            return f"analyze {self.spec.network}"
        if self.kind == "sweep":
            return f"sweep {'x'.join(self.spec.networks)} ({len(self.spec)} points)"
        if self.kind == "traffic":
            return (
                f"traffic {self.spec.analysis.network} "
                f"({self.spec.requests} requests)"
            )
        return f"stream {self.spec.analysis.network}"


_SUBMISSION_FIELDS = {"kind", "spec", "projection", "mode", "workers"}


def _require_mapping(value: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ProtocolError(f"{what} must be a JSON object, got {type(value).__name__}")
    return value


def parse_job_submission(payload: Any) -> JobRequest:
    """Validate a ``POST /jobs`` body into a :class:`JobRequest`.

    Raises :class:`ProtocolError` for malformed envelopes and lets the
    specs' own :class:`~repro.errors.ConfigurationError` surface for
    invalid spec contents — both reach the client as one structured
    line.
    """
    payload = _require_mapping(payload, "job submission")
    unknown = sorted(set(payload) - _SUBMISSION_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown job fields: {', '.join(unknown)}; "
            f"expected a subset of: {', '.join(sorted(_SUBMISSION_FIELDS))}"
        )
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise ProtocolError(
            f"unknown job kind {kind!r}; expected one of: {', '.join(JOB_KINDS)}"
        )
    spec_payload = _require_mapping(payload.get("spec"), "spec")

    projection = None
    if payload.get("projection") is not None:
        if kind != "analyze":
            raise ProtocolError("projection only applies to analyze jobs")
        projection = ProjectionSpec.from_dict(
            _require_mapping(payload["projection"], "projection")
        )

    mode = payload.get("mode")
    workers = payload.get("workers")
    if kind != "sweep" and (mode is not None or workers is not None):
        raise ProtocolError("mode/workers only apply to sweep jobs")
    if mode is not None and mode not in SWEEP_MODES:
        raise ProtocolError(
            f"unknown sweep mode {mode!r}; expected one of: {', '.join(SWEEP_MODES)}"
        )
    if workers is not None:
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ProtocolError(f"workers must be a positive int, got {workers!r}")

    if kind == "analyze":
        spec: Any = AnalysisSpec.from_dict(spec_payload)
    elif kind == "sweep":
        spec = SweepSpec.from_dict(spec_payload)
    elif kind == "traffic":
        spec = TrafficSpec.from_dict(spec_payload)
    else:
        spec = StreamSpec.from_dict(spec_payload)
    return JobRequest(
        kind=kind, spec=spec, projection=projection, mode=mode, workers=workers
    )


def parse_stream_open(payload: Any) -> tuple[StreamSpec, bool]:
    """Validate a ``POST /stream`` body: the spec plus the feed style.

    ``{"spec": {...StreamSpec...}, "replay": bool}`` — ``replay``
    sessions consume the scenario's cached epoch server-side in
    response to ``{"advance": n}`` feeds; live sessions (the default)
    absorb client-posted ``{"records": [...]}`` chunks.
    """
    payload = _require_mapping(payload, "stream open")
    unknown = sorted(set(payload) - {"spec", "replay"})
    if unknown:
        raise ProtocolError(
            f"unknown stream fields: {', '.join(unknown)}; expected 'spec', 'replay'"
        )
    spec = StreamSpec.from_dict(_require_mapping(payload.get("spec"), "spec"))
    replay = payload.get("replay", False)
    if not isinstance(replay, bool):
        raise ProtocolError(f"replay must be a boolean, got {replay!r}")
    return spec, replay


def parse_records(payload: Any) -> list[dict[str, Any]]:
    """Validate a live feed chunk: ``{"records": [{seq_len, time_s, ...}]}``."""
    payload = _require_mapping(payload, "feed chunk")
    records = payload.get("records")
    if not isinstance(records, list) or not records:
        raise ProtocolError("feed chunk needs a non-empty 'records' list")
    parsed = []
    for position, record in enumerate(records):
        record = _require_mapping(record, f"records[{position}]")
        unknown = sorted(set(record) - {"seq_len", "time_s", "tgt_len", "epoch"})
        if unknown:
            raise ProtocolError(
                f"records[{position}] has unknown fields: {', '.join(unknown)}"
            )
        try:
            seq_len = int(record["seq_len"])
            time_s = float(record["time_s"])
        except (KeyError, TypeError, ValueError):
            raise ProtocolError(
                f"records[{position}] needs integer seq_len and numeric time_s"
            ) from None
        if seq_len < 1 or not time_s > 0:
            raise ConfigurationError(
                f"records[{position}]: seq_len must be >= 1 and time_s positive"
            )
        parsed.append(
            {
                "seq_len": seq_len,
                "time_s": time_s,
                "tgt_len": record.get("tgt_len"),
                "epoch": int(record.get("epoch", 0)),
            }
        )
    return parsed
