"""Service observability: latency histograms behind ``/stats``.

A :class:`LatencyHistogram` is a fixed set of logarithmic buckets
(100 µs up to ~2 min) with exact count/sum accounting and interpolated
percentile estimates — cheap enough to update on every request under a
lock, compact enough to serialize into every ``/stats`` response.  The
:class:`MetricsRegistry` keys one histogram per endpoint *template*
(``POST /jobs``, ``GET /jobs/<id>``, ...), so path parameters do not
explode the cardinality.

:func:`storage_snapshot` formats the storage tier for ``/stats``:
per-format (json/binary) on-disk trace-cache entry counts, cold-load
latency counters, and — when the daemon runs with a plan store — the
store's entry/hit/miss counters.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any

__all__ = ["LatencyHistogram", "MetricsRegistry", "percentile", "storage_snapshot"]


def storage_snapshot(cache: Any, plan_store: Any = None) -> dict[str, Any]:
    """The ``/stats`` storage section for a trace cache + plan store.

    Cold-load counters come from
    :meth:`~repro.api.cache.TraceCache.storage_stats`; per-format
    totals are reported as count / mean / max milliseconds.
    """
    stats = cache.storage_stats()
    cold_loads = {}
    for fmt, entry in sorted(stats["cold_loads"].items()):
        count = int(entry["count"])
        cold_loads[fmt] = {
            "count": count,
            "mean_ms": 1e3 * entry["seconds"] / count if count else 0.0,
            "max_ms": 1e3 * entry["max_s"],
        }
    return {
        "directory": stats["directory"],
        "disk_entries": stats["disk_entries"],
        "cold_loads": cold_loads,
        "plan_store": None if plan_store is None else plan_store.stats(),
    }

#: Bucket upper bounds in seconds: 1e-4 .. ~134s, doubling.
_BUCKET_BOUNDS = tuple(1e-4 * 2**i for i in range(21))


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted sample list (q in [0, 100])."""
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0 <= q <= 100:
        raise ValueError(f"q must lie in [0, 100], got {q}")
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * q // 100)) if q else 1
    return ordered[int(rank) - 1]


class LatencyHistogram:
    """Log-bucketed latency accumulator with percentile estimates."""

    __slots__ = ("_lock", "_counts", "count", "sum_s", "max_s")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # One overflow bucket past the last bound.
        self._counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.sum_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            seconds = 0.0
        index = bisect_left(_BUCKET_BOUNDS, seconds)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.sum_s += seconds
            if seconds > self.max_s:
                self.max_s = seconds

    def _quantile_locked(self, q: float) -> float:
        """Upper bucket bound holding the q-quantile (caller holds lock)."""
        target = max(1, int(self.count * q + 0.999999))
        seen = 0
        for index, bucket in enumerate(self._counts):
            seen += bucket
            if seen >= target:
                if index < len(_BUCKET_BOUNDS):
                    return _BUCKET_BOUNDS[index]
                return self.max_s
        return self.max_s

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            if self.count == 0:
                return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
                        "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
            return {
                "count": self.count,
                "mean_ms": 1e3 * self.sum_s / self.count,
                "p50_ms": 1e3 * self._quantile_locked(0.50),
                "p95_ms": 1e3 * self._quantile_locked(0.95),
                "p99_ms": 1e3 * self._quantile_locked(0.99),
                "max_ms": 1e3 * self.max_s,
            }


class MetricsRegistry:
    """Per-endpoint latency histograms, created on first observation."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._histograms: dict[str, LatencyHistogram] = {}

    def observe(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(endpoint)
            if histogram is None:
                histogram = self._histograms[endpoint] = LatencyHistogram()
        histogram.observe(seconds)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        with self._lock:
            items = sorted(self._histograms.items())
        return {endpoint: histogram.snapshot() for endpoint, histogram in items}
