"""Service observability: latency histograms behind ``/stats``.

The histogram itself lives in :mod:`repro.util.histogram` (import-light,
so library code can use it without dragging in the HTTP daemon);
:class:`LatencyHistogram` and :func:`percentile` are re-exported here
unchanged for service code.  The :class:`MetricsRegistry` keys one
histogram per endpoint *template* (``POST /jobs``, ``GET /jobs/<id>``,
...), so path parameters do not explode the cardinality.

:func:`storage_snapshot` formats the storage tier for ``/stats``:
per-format (json/binary) on-disk trace-cache entry counts, cold-load
latency counters, and — when the daemon runs with a plan store — the
store's entry/hit/miss counters.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.util.histogram import LatencyHistogram, percentile

__all__ = ["LatencyHistogram", "MetricsRegistry", "percentile", "storage_snapshot"]


def storage_snapshot(cache: Any, plan_store: Any = None) -> dict[str, Any]:
    """The ``/stats`` storage section for a trace cache + plan store.

    Cold-load counters come from
    :meth:`~repro.api.cache.TraceCache.storage_stats`; per-format
    totals are reported as count / mean / max milliseconds.
    """
    stats = cache.storage_stats()
    cold_loads = {}
    for fmt, entry in sorted(stats["cold_loads"].items()):
        count = int(entry["count"])
        cold_loads[fmt] = {
            "count": count,
            "mean_ms": 1e3 * entry["seconds"] / count if count else 0.0,
            "max_ms": 1e3 * entry["max_s"],
        }
    return {
        "directory": stats["directory"],
        "disk_entries": stats["disk_entries"],
        "cold_loads": cold_loads,
        "plan_store": None if plan_store is None else plan_store.stats(),
    }


class MetricsRegistry:
    """Per-endpoint latency histograms, created on first observation."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._histograms: dict[str, LatencyHistogram] = {}

    def observe(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(endpoint)
            if histogram is None:
                histogram = self._histograms[endpoint] = LatencyHistogram()
        histogram.observe(seconds)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        with self._lock:
            items = sorted(self._histograms.items())
        return {endpoint: histogram.snapshot() for endpoint, histogram in items}
