"""The service's worker tier: queue consumers over one shared engine.

A :class:`WorkerPool` runs N daemon threads, each blocking on
:meth:`~repro.serve.queue.JobQueue.next_job` and executing claimed jobs
against one shared :class:`~repro.api.engine.AnalysisEngine` — so every
job, whatever its kind, deduplicates simulation work through the same
(optionally disk-backed, LRU-bounded) :class:`~repro.api.cache.TraceCache`.

``analyze`` and ``stream`` jobs run on the engine directly.  ``sweep``
jobs reuse the process-parallel machinery from PR 3: in ``process``
mode the worker thread spins up the same spawn
:class:`~concurrent.futures.ProcessPoolExecutor` the batch sweep
engine uses (same initializer, same fcntl-locked shared cache
directory), but submits the plan's simulations and analyses as
individual futures so the job's cancel event can be honoured *between*
futures — a cancelled sweep cancels everything still pending, drains
the pool, and exits without leaking worker processes.  ``serial`` mode
runs the same plan in-thread with a cancellation checkpoint between
grid points; both modes produce results bit-identical to
:func:`repro.api.parallel.run_sweep`.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from pathlib import Path
from typing import Any

from repro.api.engine import AnalysisEngine
from repro.api.parallel import (
    SweepRun,
    _worker_analyze,
    _worker_init,
    _worker_simulate,
    plan_sweep,
)
from repro.errors import ConfigurationError
from repro.serve.protocol import JobRequest
from repro.serve.queue import Job, JobCancelled, JobQueue

__all__ = ["WorkerPool"]

#: How often a sweep job re-checks its cancel event while futures run.
_CANCEL_POLL_S = 0.1


class WorkerPool:
    """N threads draining a :class:`JobQueue` into a shared engine."""

    def __init__(
        self,
        queue: JobQueue,
        engine: AnalysisEngine,
        *,
        workers: int = 2,
        sweep_mode: str = "process",
        sweep_workers: int | None = None,
        plan_store_dir: str | Path | None = None,
    ):
        if workers < 1:
            raise ConfigurationError(f"workers must be positive, got {workers}")
        if sweep_mode not in ("serial", "process"):
            raise ConfigurationError(
                f"sweep_mode must be 'serial' or 'process', got {sweep_mode!r}"
            )
        self.queue = queue
        self.engine = engine
        self.sweep_mode = sweep_mode
        self.sweep_workers = sweep_workers
        #: Shared with sweep worker processes so lowerings persist
        #: across pool lifetimes (one per machine, not one per spawn).
        self.plan_store_dir = None if plan_store_dir is None else Path(plan_store_dir)
        self._threads = [
            threading.Thread(
                target=self._loop, name=f"serve-worker-{index}", daemon=True
            )
            for index in range(workers)
        ]
        self._started = False

    def start(self) -> None:
        if not self._started:
            self._started = True
            for thread in self._threads:
                thread.start()

    def shutdown(self) -> None:
        """Close the queue and join every worker thread."""
        self.queue.close()
        if self._started:
            for thread in self._threads:
                thread.join()

    # -- the worker loop ----------------------------------------------

    def _loop(self) -> None:
        while True:
            job = self.queue.next_job()
            if job is None:
                return
            try:
                result = self._execute(job)
            except JobCancelled:
                self.queue.mark_cancelled(job)
            except Exception as exc:
                # A failing job must never take its worker down; the
                # failure (ReproError or a genuine bug) is recorded on
                # the job and surfaces to the client as one line.
                self.queue.fail(job, exc)
            else:
                self.queue.finish(job, result)

    def _execute(self, job: Job) -> dict[str, Any]:
        request = job.request
        job.check_cancelled()
        if request.kind == "analyze":
            payload = self.engine.run(request.spec, request.projection).to_dict()
        elif request.kind == "stream":
            payload = self.engine.run_streaming(request.spec).to_dict()
        elif request.kind == "traffic":
            payload = self.engine.run_traffic(request.spec).to_dict()
        else:
            payload = self._run_sweep(job, request).to_dict()
        # A cancel that lands while the final selector call is in
        # flight still wins — the client asked for no result.
        job.check_cancelled()
        return payload

    # -- sweep execution with cancellation checkpoints ----------------

    def _run_sweep(self, job: Job, request: JobRequest) -> SweepRun:
        mode = request.mode or self.sweep_mode
        if mode == "thread":
            # Accepted on the wire for parity with the CLI, but the
            # service's in-thread executor IS a thread pool already.
            mode = "serial"
        if mode == "process":
            return self._run_sweep_process(job, request)
        return self._run_sweep_serial(job, request)

    def _run_sweep_serial(self, job: Job, request: JobRequest) -> SweepRun:
        sweep = request.spec
        plan = plan_sweep(sweep, self.engine.noise_sigma)
        for simulation in plan.simulations:
            job.check_cancelled()
            self.engine.trace_for(simulation)
        results = []
        for point in plan.points:
            job.check_cancelled()
            results.append(self.engine.run(point, plan.projection))
        return SweepRun(
            sweep=sweep,
            projection=plan.projection,
            results=tuple(results),
            mode="serial",
            workers=1,
            trace_keys=plan.trace_keys,
        )

    def _await(self, job: Job, futures: list[Future]) -> list[Any]:
        """Collect futures in order, polling the job's cancel event.

        On cancellation everything still pending is cancelled before
        :class:`JobCancelled` propagates; in-flight tasks finish (their
        writes land in the shared cache and stay reusable), and the
        caller's pool context drains them before returning.
        """
        try:
            results = []
            for future in futures:
                while True:
                    try:
                        results.append(future.result(timeout=_CANCEL_POLL_S))
                        break
                    except FutureTimeout:
                        job.check_cancelled()
            return results
        except JobCancelled:
            for future in futures:
                future.cancel()
            raise

    def _run_sweep_process(self, job: Job, request: JobRequest) -> SweepRun:
        sweep = request.spec
        workers = request.workers or self.sweep_workers or os.cpu_count() or 1
        plan = plan_sweep(sweep, self.engine.noise_sigma)
        directory = self.engine.cache.directory
        staging = None
        if directory is None:
            staging = tempfile.TemporaryDirectory(prefix="repro-serve-sweep-")
            directory = Path(staging.name)
        projection_payload = (
            None if plan.projection is None else plan.projection.to_dict()
        )
        try:
            context = multiprocessing.get_context("spawn")
            with ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_worker_init,
                initargs=(
                    str(directory),
                    self.engine.noise_sigma,
                    None
                    if self.plan_store_dir is None
                    else str(self.plan_store_dir),
                ),
            ) as pool:
                job.check_cancelled()
                # Phase 1: each unique epoch exactly once into the
                # shared fcntl-locked disk cache.
                self._await(
                    job,
                    [
                        pool.submit(_worker_simulate, spec.to_dict())
                        for spec in plan.simulations
                    ],
                )
                # Phase 2: per-point analyses, all traces disk hits now.
                results = self._await(
                    job,
                    [
                        pool.submit(_worker_analyze, (point.to_dict(), projection_payload))
                        for point in plan.points
                    ],
                )
        finally:
            if staging is not None:
                staging.cleanup()
        return SweepRun(
            sweep=sweep,
            projection=plan.projection,
            results=tuple(results),
            mode="process",
            workers=workers,
            trace_keys=plan.trace_keys,
        )
