"""The always-on analysis daemon: stdlib HTTP/JSON over the job queue.

:class:`ServeApp` is the transport-free core — one method,
:meth:`ServeApp.handle`, routes ``(method, path, body)`` to the queue,
worker pool, session table, and cache, and returns ``(status,
envelope)``.  Unit tests drive it directly; the
:class:`ReproServer` wraps it in a
:class:`~http.server.ThreadingHTTPServer` so every client connection
gets its own thread while all of them share one engine and cache.

Endpoint map (all payloads JSON; see :mod:`repro.serve.protocol`):

========  ==========================  =======================================
method    path                        meaning
========  ==========================  =======================================
GET       ``/healthz``                liveness probe
GET       ``/stats``                  cache/queue/session/latency metrics
POST      ``/jobs``                   submit an analyze/sweep/stream/traffic job
GET       ``/jobs``                   list job status snapshots
GET       ``/jobs/<id>``              one job's status
GET       ``/jobs/<id>/result``       the finished job's result payload
POST      ``/jobs/<id>/cancel``       cancel (immediate if queued)
POST      ``/stream``                 open a streaming session
GET       ``/stream``                 list session snapshots
GET       ``/stream/<id>``            one session's convergence snapshot
POST      ``/stream/<id>/feed``       absorb a chunk (records or advance)
POST      ``/stream/<id>/finish``     close the stream, return the final run
DELETE    ``/stream/<id>``            drop the session
========  ==========================  =======================================

A client that disconnects mid-response only loses its own reply: the
handler swallows the broken pipe, the per-connection thread exits, and
jobs/sessions it had created keep running for a later poll.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro import __version__
from repro.api.cache import TraceCache
from repro.api.engine import AnalysisEngine
from repro.models.plan import PLAN_CACHE, PlanStore
from repro.serve.metrics import MetricsRegistry, storage_snapshot
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    NotFoundError,
    ProtocolError,
    error_envelope,
    error_status,
    ok_envelope,
    parse_job_submission,
    parse_records,
    parse_stream_open,
)
from repro.serve.queue import JobQueue
from repro.serve.sessions import SessionManager
from repro.serve.workers import WorkerPool

__all__ = ["ReproServer", "ServeApp"]


class ServeApp:
    """Routing core of the service, independent of any transport."""

    def __init__(
        self,
        engine: AnalysisEngine | None = None,
        *,
        workers: int = 2,
        sweep_mode: str = "process",
        sweep_workers: int | None = None,
        queue_depth: int | None = None,
        max_sessions: int | None = None,
        plan_store_dir: str | None = None,
    ):
        self.engine = engine if engine is not None else AnalysisEngine()
        self.queue = JobQueue(max_depth=queue_depth)
        # The in-process engine and the sweep worker processes share
        # one plan store, so lowerings persist for the daemon's life
        # and across every pool it spawns.
        self.plan_store = (
            None if plan_store_dir is None else PlanStore(plan_store_dir)
        )
        self._previous_plan_store = (
            PLAN_CACHE.attach_store(self.plan_store)
            if self.plan_store is not None
            else None
        )
        self.workers = WorkerPool(
            self.queue,
            self.engine,
            workers=workers,
            sweep_mode=sweep_mode,
            sweep_workers=sweep_workers,
            plan_store_dir=plan_store_dir,
        )
        self.sessions = SessionManager(self.engine, max_sessions=max_sessions)
        self.metrics = MetricsRegistry()
        self.started_s = time.time()

    def start(self) -> None:
        self.workers.start()

    def close(self) -> None:
        self.workers.shutdown()
        if self.plan_store is not None:
            # Detach from the process-global cache so a closed app (a
            # test, a --check run) stops influencing later lowerings.
            PLAN_CACHE.attach_store(self._previous_plan_store)

    # -- routing -------------------------------------------------------

    def handle(
        self, method: str, path: str, body: Any = None
    ) -> tuple[int, dict[str, Any], str]:
        """Route one request; returns ``(status, envelope, endpoint)``.

        ``endpoint`` is the matched template (``GET /jobs/<id>`` and so
        on) — the latency histogram key, bounded no matter how many ids
        exist.
        """
        segments = [segment for segment in path.split("?")[0].split("/") if segment]
        try:
            endpoint, payload = self._route(method, segments, body)
            return 200, ok_envelope(payload), endpoint
        except Exception as exc:
            template = "/" + "/".join(segments[:1] + ["<id>"] * (len(segments) > 1))
            return error_status(exc), error_envelope(exc), f"{method} {template}"

    def _route(
        self, method: str, segments: list[str], body: Any
    ) -> tuple[str, dict[str, Any]]:
        if segments == ["healthz"] and method == "GET":
            return "GET /healthz", {"uptime_s": time.time() - self.started_s}
        if segments == ["stats"] and method == "GET":
            return "GET /stats", self.stats()
        if segments and segments[0] == "jobs":
            return self._route_jobs(method, segments, body)
        if segments and segments[0] == "stream":
            return self._route_stream(method, segments, body)
        raise NotFoundError(f"no such endpoint: {method} /{'/'.join(segments)}")

    def _route_jobs(
        self, method: str, segments: list[str], body: Any
    ) -> tuple[str, dict[str, Any]]:
        if len(segments) == 1:
            if method == "POST":
                job = self.queue.submit(parse_job_submission(body))
                return "POST /jobs", {"job": job.to_dict()}
            if method == "GET":
                return "GET /jobs", {
                    "jobs": [job.to_dict() for job in self.queue.jobs()]
                }
        elif len(segments) == 2 and method == "GET":
            return "GET /jobs/<id>", {"job": self.queue.get(segments[1]).to_dict()}
        elif len(segments) == 3 and segments[2] == "result" and method == "GET":
            job = self.queue.get(segments[1])
            if job.state == "failed":
                return "GET /jobs/<id>/result", {"job": job.to_dict()}
            if job.state != "done":
                raise ProtocolError(
                    f"job {job.id} is {job.state}; results need state 'done'"
                )
            return "GET /jobs/<id>/result", {"job": job.to_dict(), "result": job.result}
        elif len(segments) == 3 and segments[2] == "cancel" and method == "POST":
            job = self.queue.cancel(segments[1])
            return "POST /jobs/<id>/cancel", {"job": job.to_dict()}
        raise NotFoundError(f"no such endpoint: {method} /{'/'.join(segments)}")

    def _route_stream(
        self, method: str, segments: list[str], body: Any
    ) -> tuple[str, dict[str, Any]]:
        if len(segments) == 1:
            if method == "POST":
                spec, replay = parse_stream_open(body)
                session = self.sessions.create(spec, replay=replay)
                return "POST /stream", {"session": session.snapshot()}
            if method == "GET":
                return "GET /stream", {
                    "sessions": [s.snapshot() for s in self.sessions.sessions()]
                }
        elif len(segments) == 2:
            if method == "GET":
                return "GET /stream/<id>", {
                    "session": self.sessions.get(segments[1]).snapshot()
                }
            if method == "DELETE":
                self.sessions.close(segments[1])
                return "DELETE /stream/<id>", {"closed": segments[1]}
        elif len(segments) == 3 and segments[2] == "feed" and method == "POST":
            session = self.sessions.get(segments[1])
            if isinstance(body, dict) and "advance" in body:
                extra = sorted(set(body) - {"advance"})
                if extra:
                    raise ProtocolError(
                        f"advance feeds take no other fields, got: {', '.join(extra)}"
                    )
                if not isinstance(body["advance"], int) or isinstance(
                    body["advance"], bool
                ):
                    raise ProtocolError(
                        f"advance must be an int, got {body['advance']!r}"
                    )
                snapshot = session.advance(body["advance"])
            else:
                snapshot = session.feed_records(parse_records(body))
            return "POST /stream/<id>/feed", {"session": snapshot}
        elif len(segments) == 3 and segments[2] == "finish" and method == "POST":
            session = self.sessions.get(segments[1])
            return "POST /stream/<id>/finish", {
                "result": session.finish(),
                "session": session.snapshot(),
            }
        raise NotFoundError(f"no such endpoint: {method} /{'/'.join(segments)}")

    # -- observability -------------------------------------------------

    def stats(self) -> dict[str, Any]:
        cache = self.engine.cache
        return {
            "protocol": PROTOCOL_VERSION,
            "version": __version__,
            "uptime_s": time.time() - self.started_s,
            "cache": {
                **cache.stats(),
                "max_bytes": cache.max_bytes,
                "max_entries": cache.max_entries,
                "directory": (
                    None if cache.directory is None else str(cache.directory)
                ),
            },
            "queue": self.queue.snapshot(),
            "sessions": self.sessions.snapshot(),
            "latency": self.metrics.snapshot(),
            "storage": storage_snapshot(cache, self.plan_store),
        }


class _Handler(BaseHTTPRequestHandler):
    """JSON-over-HTTP front end; one instance per request."""

    app: ServeApp  # injected via the subclass ReproServer builds
    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; a daemon
    # serving a benchmark would drown in it.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return None
        raw = self.rfile.read(length)
        if len(raw) < length:
            # Client vanished mid-upload; treat like malformed input.
            raise ProtocolError("request body truncated")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from None

    def _respond(self, status: int, envelope: dict[str, Any]) -> None:
        data = json.dumps(envelope).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        endpoint = f"{method} {self.path.split('?')[0]}"
        try:
            try:
                body = self._read_body()
            except ProtocolError as exc:
                status, envelope = error_status(exc), error_envelope(exc)
            else:
                status, envelope, endpoint = self.app.handle(
                    method, self.path, body
                )
            self._respond(status, envelope)
        except (BrokenPipeError, ConnectionResetError, TimeoutError):
            # The client hung up mid-request or mid-response.  Nothing
            # to answer; server-side state (jobs, sessions) is intact.
            self.close_connection = True
        finally:
            self.app.metrics.observe(endpoint, time.perf_counter() - started)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class ReproServer:
    """The daemon: a threading HTTP server bound to a :class:`ServeApp`.

    ``port=0`` binds an ephemeral port (tests, ``--check``); the bound
    address is available as :attr:`url` immediately after construction.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        app: ServeApp | None = None,
        cache_dir: str | None = None,
        cache_max_bytes: int | None = None,
        cache_max_entries: int | None = None,
        **app_options: Any,
    ):
        if app is None:
            engine = AnalysisEngine(
                cache=TraceCache(
                    cache_dir,
                    max_bytes=cache_max_bytes,
                    max_entries=cache_max_entries,
                )
            )
            app = ServeApp(engine, **app_options)
        self.app = app
        handler = type("BoundHandler", (_Handler,), {"app": app})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._serving = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread (the CLI path)."""
        self.app.start()
        self._serving.set()
        self._httpd.serve_forever()

    def start(self) -> None:
        """Run the accept loop on a background thread (tests, bench)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._serving.wait()

    def close(self) -> None:
        """Stop accepting, drain the workers, release the socket."""
        if self._serving.is_set():
            self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._httpd.server_close()
        self.app.close()

    def __enter__(self) -> "ReproServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
