"""Multiplexed streaming sessions: many live identifications, one cache.

A :class:`StreamSession` wraps an incremental
:class:`~repro.stream.identifier.IdentificationSession` behind an id the
HTTP layer can address, in one of two feed styles:

* **live** — the client POSTs iteration chunks
  (``{"records": [{"seq_len": ..., "time_s": ...}, ...]}``) as its
  training run produces them; the server absorbs them and reports the
  convergence snapshot after every chunk;
* **replay** — the session draws from the scenario's *cached* epoch
  trace and the client just POSTs ``{"advance": n}`` to consume the
  next ``n`` iterations.  Replay sessions resolve their epoch through
  the shared engine, so any number of concurrent sessions over the
  same scenario cost one simulation and hit one
  :class:`~repro.api.cache.TraceCache` entry — the multiplexing the
  service exists for.

Each session serialises its own feeds under a per-session lock (chunk
order is the stream's semantics), while different sessions proceed
fully concurrently.  The :class:`SessionManager` owns the id space and
the lifecycle: sessions are ``open`` until :meth:`StreamSession.finish`
packages the final :class:`~repro.stream.identifier.StreamingRun`
accounting, and ``DELETE`` drops them.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any

from repro.api.engine import AnalysisEngine
from repro.errors import ConfigurationError
from repro.hw.counters import CounterSet
from repro.serve.protocol import NotFoundError, ProtocolError
from repro.stream.feed import FrameSlice
from repro.stream.spec import StreamSpec
from repro.stream.stats import StreamingSlStatistics
from repro.train.trace import IterationRecord

__all__ = ["SessionManager", "StreamSession"]


class StreamSession:
    """One in-flight streaming identification addressed over HTTP."""

    def __init__(
        self,
        session_id: str,
        spec: StreamSpec,
        *,
        engine: AnalysisEngine,
        replay: bool = False,
    ):
        self.id = session_id
        self.spec = spec
        self.replay = replay
        self.created_s = time.time()
        self.state = "open"  # open -> finished -> (removed)
        self._lock = threading.Lock()
        self._next_index = 0
        self._cursor = 0
        if replay:
            # Through the shared cache: concurrent sessions over one
            # scenario share a single simulated epoch.
            self._frame = engine.frame_for(spec.analysis)
            stats = StreamingSlStatistics.for_frame(self._frame)
        else:
            analysis = spec.analysis
            self._frame = None
            stats = StreamingSlStatistics(
                model_name=analysis.network,
                dataset_name=analysis.dataset,
                config_name=f"config#{analysis.config}",
                batch_size=analysis.batch_size,
            )
        self._session = spec.build_identifier().begin(stats)
        self._result: dict[str, Any] | None = None

    @property
    def converged(self) -> bool:
        return self._session.converged

    # -- feeding ------------------------------------------------------

    def _require_open(self) -> None:
        if self.state != "open":
            raise ConfigurationError(
                f"session {self.id} is {self.state}; feeds need an open session"
            )

    def feed_records(self, records: list[dict[str, Any]]) -> dict[str, Any]:
        """Absorb one live chunk of client-posted iteration records."""
        if self.replay:
            raise ProtocolError(
                f"session {self.id} is a replay session; feed it {{'advance': n}}"
            )
        with self._lock:
            self._require_open()
            chunk = []
            for record in records:
                chunk.append(
                    IterationRecord(
                        index=self._next_index,
                        epoch=record.get("epoch", 0),
                        seq_len=record["seq_len"],
                        tgt_len=record.get("tgt_len"),
                        time_s=record["time_s"],
                        launches=1,
                        counters=CounterSet(),
                        group_times={},
                        kernel_names=frozenset(),
                    )
                )
                self._next_index += 1
            self._session.absorb(chunk)
            return self._snapshot_locked()

    def advance(self, iterations: int) -> dict[str, Any]:
        """Consume the next ``iterations`` of the cached epoch (replay)."""
        if not self.replay:
            raise ProtocolError(
                f"session {self.id} is live; feed it {{'records': [...]}}"
            )
        if iterations < 1:
            raise ProtocolError(f"advance must be >= 1, got {iterations}")
        with self._lock:
            self._require_open()
            total = len(self._frame)
            if self._cursor >= total:
                raise ConfigurationError(
                    f"session {self.id} exhausted its {total}-iteration epoch"
                )
            stop = min(self._cursor + iterations, total)
            self._session.absorb(FrameSlice(self._frame, self._cursor, stop))
            self._cursor = stop
            return self._snapshot_locked()

    # -- lifecycle ----------------------------------------------------

    def finish(self) -> dict[str, Any]:
        """Close the stream and return the final run accounting."""
        with self._lock:
            if self._result is None:
                run = self._session.finish()
                self.state = "finished"
                self._result = {
                    "converged": run.converged,
                    "iterations_consumed": run.iterations_consumed,
                    "method": run.method,
                    "checks": [check.to_dict() for check in run.checks],
                    "points": [
                        {
                            "seq_len": point.seq_len,
                            "tgt_len": point.tgt_len,
                            "weight": point.weight,
                            "time_s": point.record.time_s,
                        }
                        for point in run.selection.points
                    ],
                    "k": run.k,
                    "identification_error_pct": run.identification_error_pct,
                    "projected_prefix_total_s": run.projected_prefix_total_s,
                    "prefix_total_s": run.prefix_total_s,
                }
            return self._result

    # -- snapshots ----------------------------------------------------

    def _snapshot_locked(self) -> dict[str, Any]:
        session = self._session
        snapshot: dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "replay": self.replay,
            "iterations_consumed": session.iterations_consumed,
            "converged": session.converged,
            "checks": len(session.checks),
            "last_check": session.checks[-1].to_dict() if session.checks else None,
        }
        if self.replay:
            snapshot["epoch_iterations"] = len(self._frame)
            snapshot["cursor"] = self._cursor
        return snapshot

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return self._snapshot_locked()


class SessionManager:
    """The service's table of live sessions."""

    def __init__(self, engine: AnalysisEngine, max_sessions: int | None = None):
        if max_sessions is not None and max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be positive, got {max_sessions}"
            )
        self.engine = engine
        self.max_sessions = max_sessions
        self._lock = threading.Lock()
        self._sessions: dict[str, StreamSession] = {}
        self._ids = itertools.count(1)
        self._opened = 0

    def create(self, spec: StreamSpec, *, replay: bool = False) -> StreamSession:
        with self._lock:
            if (
                self.max_sessions is not None
                and len(self._sessions) >= self.max_sessions
            ):
                raise ConfigurationError(
                    f"session table full ({self.max_sessions}); close one first"
                )
            session_id = f"s-{next(self._ids)}"
        # Construction may simulate (replay cache miss) — outside the
        # table lock so other sessions keep feeding meanwhile.
        session = StreamSession(session_id, spec, engine=self.engine, replay=replay)
        with self._lock:
            self._sessions[session_id] = session
            self._opened += 1
        return session

    def get(self, session_id: str) -> StreamSession:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise NotFoundError(f"no such session: {session_id}")
        return session

    def close(self, session_id: str) -> None:
        with self._lock:
            if self._sessions.pop(session_id, None) is None:
                raise NotFoundError(f"no such session: {session_id}")

    def sessions(self) -> list[StreamSession]:
        with self._lock:
            return list(self._sessions.values())

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            sessions = list(self._sessions.values())
            opened = self._opened
        converged = sum(1 for session in sessions if session.converged)
        return {
            "open": len(sessions),
            "opened_total": opened,
            "converged": converged,
        }
