"""SeqPoint reproduction: representative iterations of sequence-based
neural networks (Pati et al., ISPASS 2020), on a simulated GPU substrate.

Public API tour
---------------

Hardware (paper Table II)::

    from repro import GpuDevice, paper_config
    device = GpuDevice(paper_config(1))

Networks and data (paper §VI-B)::

    from repro import build_gnmt, build_iwslt, PooledBucketing
    model, corpus = build_gnmt(), build_iwslt()

Simulate an epoch and identify SeqPoints (paper Fig 10)::

    from repro import TrainingRunSimulator, SeqPointSelector
    runner = TrainingRunSimulator(model, corpus, PooledBucketing(64), device)
    trace = runner.run_epoch()
    result = SeqPointSelector().select(trace)

Project behaviour on other hardware (paper Figs 11-16)::

    from repro import project_epoch_time
    other = TrainingRunSimulator(model, corpus, PooledBucketing(64),
                                 GpuDevice(paper_config(3)))
    predicted = project_epoch_time(result.selection, other)
"""

from repro.core import (
    FrequentSelector,
    KMeansSelector,
    MedianSelector,
    PriorSelector,
    Selection,
    SeqPointResult,
    SeqPointSelector,
    SlStatistics,
    WorstSelector,
    project_epoch_time,
    project_throughput,
    project_total,
    project_uplift_pct,
    uplift_pct,
)
from repro.data import (
    PooledBucketing,
    ShuffledBatching,
    SortedBatching,
    build_iwslt,
    build_librispeech,
)
from repro.hw import GpuDevice, HardwareConfig, PAPER_CONFIGS, paper_config
from repro.models import (
    IterationInputs,
    build_cnn,
    build_convs2s,
    build_ds2,
    build_gnmt,
    build_transformer,
)
from repro.profiling import Profiler, ProfilingCostModel
from repro.profiling.export import export_selection, load_manifest
from repro.train import TrainingRunSimulator, TrainingTrace
from repro.train.inference import InferenceRunSimulator

__version__ = "1.0.0"

__all__ = [
    "FrequentSelector",
    "KMeansSelector",
    "MedianSelector",
    "PriorSelector",
    "Selection",
    "SeqPointResult",
    "SeqPointSelector",
    "SlStatistics",
    "WorstSelector",
    "project_epoch_time",
    "project_throughput",
    "project_total",
    "project_uplift_pct",
    "uplift_pct",
    "PooledBucketing",
    "ShuffledBatching",
    "SortedBatching",
    "build_iwslt",
    "build_librispeech",
    "GpuDevice",
    "HardwareConfig",
    "PAPER_CONFIGS",
    "paper_config",
    "IterationInputs",
    "build_cnn",
    "build_convs2s",
    "build_ds2",
    "build_gnmt",
    "build_transformer",
    "Profiler",
    "ProfilingCostModel",
    "export_selection",
    "load_manifest",
    "TrainingRunSimulator",
    "TrainingTrace",
    "InferenceRunSimulator",
    "__version__",
]
