"""SeqPoint reproduction: representative iterations of sequence-based
neural networks (Pati et al., ISPASS 2020), on a simulated GPU substrate.

Public API tour
---------------

The declarative front door — describe an analysis as data, let the
engine resolve, simulate, select, and project::

    from repro import AnalysisEngine, AnalysisSpec, ProjectionSpec

    spec = AnalysisSpec(network="gnmt", scale=0.1)
    result = AnalysisEngine().run(spec, ProjectionSpec(targets=(1, 3)))
    print(result.identification_error_pct)
    print(result.to_dict())          # JSON-serializable throughout

Specs round-trip through JSON (``AnalysisSpec.from_dict``), components
are addressed by name through registries (``repro.api.MODELS`` and
friends), batches of specs fan out with ``AnalysisEngine.run_many``,
and identification epochs are shared through a content-addressed trace
cache — the same spec analysed twice simulates once.  The ``repro
analyze`` CLI is the same engine from the shell.

The imperative layer underneath remains fully public.

Hardware (paper Table II)::

    from repro import GpuDevice, paper_config
    device = GpuDevice(paper_config(1))

Networks and data (paper §VI-B)::

    from repro import build_gnmt, build_iwslt, PooledBucketing
    model, corpus = build_gnmt(), build_iwslt()

Simulate an epoch and identify SeqPoints (paper Fig 10)::

    from repro import TrainingRunSimulator, SeqPointSelector
    runner = TrainingRunSimulator(model, corpus, PooledBucketing(64), device)
    trace = runner.run_epoch()
    result = SeqPointSelector().select(trace)

Project behaviour on other hardware (paper Figs 11-16)::

    from repro import project_epoch_time
    other = TrainingRunSimulator(model, corpus, PooledBucketing(64),
                                 GpuDevice(paper_config(3)))
    predicted = project_epoch_time(result.selection, other)
"""

from repro.api import (
    AnalysisEngine,
    AnalysisResult,
    AnalysisSpec,
    ProjectionSpec,
    StreamingAnalysisResult,
    TraceCache,
    TrafficAnalysisResult,
    default_engine,
)
from repro.core import (
    FrequentSelector,
    KMeansSelector,
    MedianSelector,
    PriorSelector,
    Selection,
    SeqPointResult,
    SeqPointSelector,
    SlStatistics,
    WorstSelector,
    project_epoch_time,
    project_throughput,
    project_total,
    project_uplift_pct,
    uplift_pct,
)
from repro.data import (
    PooledBucketing,
    ShuffledBatching,
    SortedBatching,
    build_iwslt,
    build_librispeech,
)
from repro.hw import GpuDevice, HardwareConfig, PAPER_CONFIGS, paper_config
from repro.models import (
    IterationInputs,
    build_cnn,
    build_convs2s,
    build_ds2,
    build_gnmt,
    build_transformer,
)
from repro.profiling import Profiler, ProfilingCostModel
from repro.profiling.export import export_selection, load_manifest
from repro.stream import (
    StreamSpec,
    StreamingIdentifier,
    StreamingSlStatistics,
    TraceReplayFeed,
)
from repro.traffic import TrafficSimulator, TrafficSpec
from repro.train import TrainingRunSimulator, TrainingTrace
from repro.train.inference import InferenceRunSimulator

__version__ = "1.2.0"

__all__ = [
    "AnalysisEngine",
    "AnalysisResult",
    "AnalysisSpec",
    "ProjectionSpec",
    "StreamingAnalysisResult",
    "StreamSpec",
    "TrafficAnalysisResult",
    "TrafficSimulator",
    "TrafficSpec",
    "StreamingIdentifier",
    "StreamingSlStatistics",
    "TraceReplayFeed",
    "TraceCache",
    "default_engine",
    "FrequentSelector",
    "KMeansSelector",
    "MedianSelector",
    "PriorSelector",
    "Selection",
    "SeqPointResult",
    "SeqPointSelector",
    "SlStatistics",
    "WorstSelector",
    "project_epoch_time",
    "project_throughput",
    "project_total",
    "project_uplift_pct",
    "uplift_pct",
    "PooledBucketing",
    "ShuffledBatching",
    "SortedBatching",
    "build_iwslt",
    "build_librispeech",
    "GpuDevice",
    "HardwareConfig",
    "PAPER_CONFIGS",
    "paper_config",
    "IterationInputs",
    "build_cnn",
    "build_convs2s",
    "build_ds2",
    "build_gnmt",
    "build_transformer",
    "Profiler",
    "ProfilingCostModel",
    "export_selection",
    "load_manifest",
    "TrainingRunSimulator",
    "TrainingTrace",
    "InferenceRunSimulator",
    "__version__",
]
