"""Shared experiment setup: the paper's two scenarios, memoised.

A *scenario* is everything §VI fixes per network: the model, the
corpus, the batching pipeline (GNMT: pooled bucketing; DS2: SortaGrad's
sorted first epoch with time padded to a multiple of 4 frames), and
batch size 64.

Since the :mod:`repro.api` redesign this module is a thin wrapper over
the declarative engine: ``scenario``/``runner``/``epoch_trace`` resolve
through the same registries and share the same process-wide trace cache
as ``AnalysisEngine`` requests and the ``repro analyze`` CLI, so every
entry point produces identical numbers for identical setups.

``scale`` shrinks the corpus proportionally (for fast tests); 1.0 is
the paper-sized population.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.api.engine import EVAL_FRACTION, NOISE_SIGMA, default_engine
from repro.api.registry import build_batching
from repro.api.spec import DEFAULT_BATCH_SIZE, AnalysisSpec
from repro.data.batching import BatchingPolicy
from repro.data.dataset import SequenceDataset
from repro.models.spec import Model
from repro.train.runner import TrainingRunSimulator
from repro.train.trace import TrainingTrace

__all__ = [
    "Scenario",
    "scenario",
    "runner",
    "epoch_trace",
    "NETWORKS",
    "BATCH_SIZE",
    "EVAL_FRACTION",
    "NOISE_SIGMA",
]

#: The two networks the paper evaluates end to end.
NETWORKS = ("gnmt", "ds2")
BATCH_SIZE = DEFAULT_BATCH_SIZE

# EVAL_FRACTION and NOISE_SIGMA remain importable from here; they are
# defined (and documented) next to the engine's resolution path.


@dataclass(frozen=True)
class Scenario:
    """One network's full experimental setup."""

    network: str
    model: Model
    train_data: SequenceDataset
    eval_data: SequenceDataset

    def batching(self) -> BatchingPolicy:
        spec = _spec(self.network)
        return build_batching(spec.batching, BATCH_SIZE, dataset=spec.dataset)


def _spec(network: str, config_index: int = 1, scale: float = 1.0) -> AnalysisSpec:
    """The default-scenario spec (validates network and scale)."""
    return AnalysisSpec(network=network, config=config_index, scale=scale)


@lru_cache(maxsize=None)
def scenario(network: str, scale: float = 1.0) -> Scenario:
    """Build (and cache) a network's scenario."""
    resolved = default_engine().resolve(_spec(network, scale=scale))
    return Scenario(
        network=network,
        model=resolved.model,
        train_data=resolved.train_data,
        eval_data=resolved.eval_data,
    )


@lru_cache(maxsize=None)
def runner(
    network: str, config_index: int, scale: float = 1.0
) -> TrainingRunSimulator:
    """Training simulator for a network on one Table II config."""
    return default_engine().runner_for(_spec(network, config_index, scale))


@lru_cache(maxsize=None)
def epoch_trace(
    network: str, config_index: int, scale: float = 1.0
) -> TrainingTrace:
    """One simulated training epoch (memoised ground truth)."""
    return default_engine().trace_for(_spec(network, config_index, scale))
