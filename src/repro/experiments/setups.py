"""Shared experiment setup: the paper's two scenarios, memoised.

A *scenario* is everything §VI fixes per network: the model, the
corpus, the batching pipeline (GNMT: pooled bucketing; DS2: SortaGrad's
sorted first epoch with time padded to a multiple of 4 frames), and
batch size 64.  Epoch traces and runners are memoised per
(network, config) because every experiment reuses them.

``scale`` shrinks the corpus proportionally (for fast tests); 1.0 is
the paper-sized population.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.data.batching import BatchingPolicy, PooledBucketing, SortaGradBatching
from repro.data.dataset import SequenceDataset
from repro.data.iwslt import IWSLT_SENTENCES, build_iwslt
from repro.data.librispeech import LIBRISPEECH_UTTERANCES, build_librispeech
from repro.errors import ConfigurationError
from repro.hw.device import GpuDevice
from repro.hw.config import paper_config
from repro.models.ds2 import build_ds2
from repro.models.gnmt import build_gnmt
from repro.models.spec import Model
from repro.train.runner import TrainingRunSimulator
from repro.train.trace import TrainingTrace

__all__ = ["Scenario", "scenario", "runner", "epoch_trace", "NETWORKS", "BATCH_SIZE"]

NETWORKS = ("gnmt", "ds2")
BATCH_SIZE = 64
#: Held-out split for the evaluation phase (paper §IV-C1, ~2-3%).
EVAL_FRACTION = 0.02
#: Run-to-run measurement jitter of real hardware (log-normal sigma).
#: Deterministic per (seed, iteration), so experiments stay exactly
#: reproducible while error magnitudes stay honest.
NOISE_SIGMA = 0.02


@dataclass(frozen=True)
class Scenario:
    """One network's full experimental setup."""

    network: str
    model: Model
    train_data: SequenceDataset
    eval_data: SequenceDataset

    def batching(self) -> BatchingPolicy:
        if self.network == "gnmt":
            return PooledBucketing(BATCH_SIZE)
        # SortaGrad: the identification epoch (epoch 0) is sorted.
        return SortaGradBatching(BATCH_SIZE, pad_multiple=4)


@lru_cache(maxsize=None)
def scenario(network: str, scale: float = 1.0) -> Scenario:
    """Build (and cache) a network's scenario."""
    if not 0.0 < scale <= 1.0:
        raise ConfigurationError(f"scale must lie in (0, 1], got {scale}")
    if network == "gnmt":
        corpus = build_iwslt(sentences=max(256, int(IWSLT_SENTENCES * scale)))
        model: Model = build_gnmt()
    elif network == "ds2":
        corpus = build_librispeech(
            utterances=max(256, int(LIBRISPEECH_UTTERANCES * scale))
        )
        model = build_ds2()
    else:
        raise ConfigurationError(
            f"unknown network {network!r}; expected one of {NETWORKS}"
        )
    train, evaluation = corpus.split(EVAL_FRACTION, seed=7)
    return Scenario(
        network=network, model=model, train_data=train, eval_data=evaluation
    )


@lru_cache(maxsize=None)
def runner(
    network: str, config_index: int, scale: float = 1.0
) -> TrainingRunSimulator:
    """Training simulator for a network on one Table II config."""
    setup = scenario(network, scale)
    return TrainingRunSimulator(
        model=setup.model,
        dataset=setup.train_data,
        batching=setup.batching(),
        device=GpuDevice(paper_config(config_index)),
        eval_dataset=setup.eval_data,
        noise_sigma=NOISE_SIGMA,
        # One dataset and one batching plan; each configuration is a
        # separate physical run with its own measurement jitter.
        seed=0,
        noise_seed=config_index,
    )


@lru_cache(maxsize=None)
def epoch_trace(
    network: str, config_index: int, scale: float = 1.0
) -> TrainingTrace:
    """One simulated training epoch (memoised ground truth)."""
    return runner(network, config_index, scale).run_epoch(include_eval=True)
