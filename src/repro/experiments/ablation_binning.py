"""Design-choice ablation: equal-width vs equal-mass SL bins.

DESIGN.md §5 flags the paper's equal-width contiguous binning as a
choice worth ablating: equal-mass (quantile) bins put the same number
of iterations in every bin at the cost of wider bins in sparse SL
regions.  Both feed the same representative selection and weighting.
"""

from __future__ import annotations

from repro.core.binning import bin_stats, bin_stats_equal_mass
from repro.core.projection import project_epoch_time
from repro.core.selection import Selection, select_from_bin
from repro.core.sl_stats import SlStatistics
from repro.experiments.base import ExperimentResult
from repro.experiments.selectors import seqpoint_result
from repro.experiments.setups import epoch_trace, runner
from repro.util.stats import geomean, percent_error

__all__ = ["run", "compare"]


def _selection_with(binning, statistics: SlStatistics, k: int) -> Selection:
    bins = binning(statistics, k)
    return Selection(
        method="seqpoint", points=tuple(select_from_bin(b) for b in bins)
    )


def compare(network: str, scale: float = 1.0) -> dict[str, float]:
    """Geomean cross-config time-projection error % per binning."""
    statistics = SlStatistics.from_trace(epoch_trace(network, 1, scale))
    k = max(seqpoint_result(network, scale).k, 1)
    candidates = {
        "equal_width": _selection_with(bin_stats, statistics, k),
        "equal_mass": _selection_with(bin_stats_equal_mass, statistics, k),
    }
    outcome: dict[str, float] = {}
    for label, selection in candidates.items():
        errors = []
        for config_index in range(1, 6):
            actual = epoch_trace(network, config_index, scale).total_time_s
            projected = project_epoch_time(
                selection, runner(network, config_index, scale)
            )
            errors.append(percent_error(projected, actual))
        outcome[label] = geomean(errors)
    return outcome


def run(scale: float = 1.0) -> ExperimentResult:
    rows = []
    for network in ("gnmt", "ds2"):
        outcome = compare(network, scale)
        rows.append(
            [
                network,
                round(outcome["equal_width"], 3),
                round(outcome["equal_mass"], 3),
            ]
        )
    return ExperimentResult(
        experiment_id="ablation_binning",
        title="Equal-width vs equal-mass SL binning "
        "(geomean time-projection error %, same k)",
        headers=["network", "equal_width", "equal_mass"],
        rows=rows,
        notes=["equal-width is the paper's choice"],
    )
