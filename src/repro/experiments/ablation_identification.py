"""Architecture-independence ablation (paper §VI-C / §VI-D claim).

The paper identifies SeqPoints only once, on config #1, and reuses them
everywhere — justified because the selection depends on architecture-
independent inputs (the SL distribution) plus runtimes that rank the
same way across configs.  This ablation identifies on *each* config and
measures cross-config time-projection error, verifying the choice of
identification config barely matters.
"""

from __future__ import annotations

from repro.core.projection import project_epoch_time
from repro.core.seqpoint import SeqPointSelector
from repro.experiments.base import ExperimentResult
from repro.experiments.setups import epoch_trace, runner
from repro.util.stats import geomean, percent_error

__all__ = ["run", "identification_config_errors"]


def identification_config_errors(
    network: str, scale: float = 1.0
) -> dict[int, float]:
    """Identification config -> geomean projection error across configs."""
    outcome: dict[int, float] = {}
    for ident_config in range(1, 6):
        selection = SeqPointSelector().select(
            epoch_trace(network, ident_config, scale)
        ).selection
        errors = []
        for target_config in range(1, 6):
            actual = epoch_trace(network, target_config, scale).total_time_s
            projected = project_epoch_time(
                selection, runner(network, target_config, scale)
            )
            errors.append(percent_error(projected, actual))
        outcome[ident_config] = geomean(errors)
    return outcome


def run(scale: float = 1.0) -> ExperimentResult:
    rows = []
    notes = []
    for network in ("gnmt", "ds2"):
        errors = identification_config_errors(network, scale)
        rows.append(
            [network] + [round(errors[i], 3) for i in range(1, 6)]
        )
        spread = max(errors.values()) - min(errors.values())
        notes.append(
            f"{network}: spread across identification configs "
            f"{spread:.2f} percentage points"
        )
    notes.append(
        "paper behaviour: SeqPoints identified once transfer everywhere; "
        "the identification config is not load-bearing"
    )
    return ExperimentResult(
        experiment_id="ablation_identification",
        title="Geomean projection error % by identification config",
        headers=["network", "ident#1", "ident#2", "ident#3", "ident#4", "ident#5"],
        rows=rows,
        notes=notes,
    )
