"""Fig 4: architectural statistics differ across SQNN iterations.

Four representative iterations per network (spread across the SL
range), three per-kernel-average counters each — memory write stalls,
VALU instructions, load (DRAM read) size — normalised to the first
iteration, as the paper's bar chart is.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.setups import BATCH_SIZE, scenario
from repro.hw.config import paper_config
from repro.hw.device import GpuDevice
from repro.profiling.profiler import Profiler

__all__ = ["run", "representative_seq_lens"]

_COUNTERS = ("write_stall_cycles", "valu_insts", "dram_read_bytes")


def representative_seq_lens(network: str, scale: float = 1.0) -> list[int]:
    """Four SLs spread across the network's observed range."""
    lengths = sorted(
        {sample.length for sample in scenario(network, scale).train_data.samples}
    )
    quartiles = [0.08, 0.35, 0.65, 0.95]
    return [lengths[int(q * (len(lengths) - 1))] for q in quartiles]


def run(scale: float = 1.0) -> ExperimentResult:
    device = GpuDevice(paper_config(1))
    rows: list[list[object]] = []
    notes: list[str] = []
    for network in ("ds2", "gnmt"):
        profiler = Profiler(scenario(network, scale).model, device)
        baselines: dict[str, float] = {}
        per_iter: list[list[float]] = []
        for index, seq_len in enumerate(representative_seq_lens(network, scale)):
            profile = profiler.profile_seq_len(seq_len, batch=BATCH_SIZE)
            means = profile.mean_counters_per_kernel()
            if not baselines:
                baselines = {c: means[c] for c in _COUNTERS}
            normalised = [means[c] / baselines[c] for c in _COUNTERS]
            per_iter.append(normalised)
            rows.append(
                [network, f"iter-{index + 1}", seq_len]
                + [round(v, 3) for v in normalised]
            )
        spreads = [
            (max(col) - min(col)) / (sum(col) / len(col)) * 100
            for col in zip(*per_iter)
        ]
        notes.append(
            f"{network}: counter variation across iterations — "
            + ", ".join(
                f"{name}={spread:.0f}%" for name, spread in zip(_COUNTERS, spreads)
            )
        )
    notes.append("paper: statistics differ by ~24-27% across iterations")
    return ExperimentResult(
        experiment_id="fig04",
        title="Architectural statistics of four representative iterations "
        "(normalized to iter-1)",
        headers=["network", "iteration", "seq_len", "write_stalls", "valu", "load"],
        rows=rows,
        notes=notes,
    )
