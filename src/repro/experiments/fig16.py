"""Fig 16: error in performance-speedup projections for GNMT."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.speedup_projection import build_result

__all__ = ["run"]


def run(scale: float = 1.0) -> ExperimentResult:
    return build_result("gnmt", "fig16", paper_geomean=1.50, scale=scale)
