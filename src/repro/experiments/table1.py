"""Table I: the same GEMM has different dims across iterations.

Regenerates the classifier-layer GEMM shapes: forward (GEMM-a) and
data-gradient (GEMM-b) for two iterations of each network.  The paper's
shapes — GNMT ``M=36549, K=1024``; DS2 ``M=29, K=1600``; ``N`` equal to
``batch x`` (decoder steps | post-conv steps) — fall out of the model
builders directly.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.setups import BATCH_SIZE, scenario
from repro.hw.config import paper_config
from repro.models.spec import IterationInputs

__all__ = ["run", "classifier_shapes"]

#: The two iterations per network (sl-1, sl-2), chosen to land on the
#: paper's exact N values where the corpus allows.
_PAPER_SLS = {"gnmt": (8, 85), "ds2": (118, 804)}


def classifier_shapes(
    network: str, seq_len: int, scale: float = 1.0
) -> dict[str, tuple[int, int, int]]:
    """Forward and dgrad GEMM shapes of the classifier at ``seq_len``."""
    setup = scenario(network, scale)
    inputs = IterationInputs(batch=BATCH_SIZE, seq_len=seq_len)
    schedule = setup.model.lower_iteration(inputs, paper_config(1))
    shapes = schedule.gemm_shapes()
    if network == "gnmt":
        vocab = setup.model.vocab
        fwd = next(s for s in shapes if s[0] == vocab)
        # dgrad is [hidden, positions, vocab] — the Table I GEMM-b row.
        dgrad = next(s for s in shapes if s[2] == vocab)
        return {"GEMM-a": fwd, "GEMM-b": dgrad}
    alphabet = setup.model.alphabet
    fwd = next(s for s in shapes if s[0] == alphabet)
    dgrad = next(s for s in shapes if s[2] == alphabet)
    return {"GEMM-a": fwd, "GEMM-b": dgrad}


def run(scale: float = 1.0) -> ExperimentResult:
    rows: list[list[object]] = []
    for network, (sl1, sl2) in _PAPER_SLS.items():
        for op in ("GEMM-a", "GEMM-b"):
            shape1 = classifier_shapes(network, sl1, scale)[op]
            shape2 = classifier_shapes(network, sl2, scale)[op]
            # Display as the paper does: M, K fixed; N per iteration.
            m, n1, k = shape1
            _, n2, _ = shape2
            rows.append([network, op, m, k, n1, n2])
    return ExperimentResult(
        experiment_id="table1",
        title="Classifier GEMM dimensions across two iterations",
        headers=["network", "gemm", "M", "K", "N (sl-1)", "N (sl-2)"],
        rows=rows,
        notes=[
            "paper: GNMT GEMM-a M=36549 K=1024, N=576/6016;"
            " DS2 GEMM-a M=29 K=1600, N=3776/25728",
            "N = batch * steps: GNMT decoder steps, DS2 post-conv steps",
        ],
    )
