"""Common result container for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.tables import render_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Rows regenerating one paper table or figure."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    #: Free-form observations (paper-vs-measured commentary).
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        text = render_table(
            self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}"
        )
        if self.notes:
            text += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return text

    def column(self, header: str) -> list[object]:
        """All values of one column (convenience for tests/benches)."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]
