"""§VI-F: profiling-time reductions from SeqPoint.

The paper's final quantitative claim: profiling only the SeqPoints cuts
profiling time 72x (DS2) and 40x (GNMT) serially, and 345x/214x when
the independent SeqPoint iterations run on separate machines.  We apply
the same cost model (profiler overhead + per-machine setup) to our
traces and selections, and also report the iteration-count comparison
against ``prior`` (the "one-third and one-sixth of the iterations"
claim).
"""

from __future__ import annotations

from repro.core.baselines import PriorSelector
from repro.experiments.base import ExperimentResult
from repro.experiments.selectors import seqpoint_result
from repro.experiments.setups import epoch_trace
from repro.profiling.cost import ProfilingCostModel

__all__ = ["run", "speedups_for"]

_PAPER = {
    "ds2": {"serial": 72, "parallel": 345},
    "gnmt": {"serial": 40, "parallel": 214},
}


def speedups_for(network: str, scale: float = 1.0):
    trace = epoch_trace(network, 1, scale)
    selection = seqpoint_result(network, scale).selection
    return ProfilingCostModel().speedups(trace, selection)


def run(scale: float = 1.0) -> ExperimentResult:
    rows: list[list[object]] = []
    notes: list[str] = []
    for network in ("ds2", "gnmt"):
        speedups = speedups_for(network, scale)
        selection = seqpoint_result(network, scale).selection
        prior = PriorSelector().select(epoch_trace(network, 1, scale))
        rows.append(
            [
                network,
                len(selection),
                round(speedups.full_epoch_s / 3600.0, 2),
                round(speedups.selection_serial_s, 1),
                round(speedups.serial_speedup, 1),
                round(speedups.parallel_speedup, 1),
            ]
        )
        ratio = prior.iterations_to_profile / len(selection)
        notes.append(
            f"{network}: paper serial {_PAPER[network]['serial']}x / "
            f"parallel {_PAPER[network]['parallel']}x; SeqPoint profiles "
            f"{ratio:.1f}x fewer iterations than prior's "
            f"{prior.iterations_to_profile}"
        )
    return ExperimentResult(
        experiment_id="profiling_speedups",
        title="Profiling-time reduction from SeqPoint (config #1)",
        headers=[
            "network", "seqpoints", "epoch_profiling_h",
            "seqpoint_profiling_s", "serial_speedup", "parallel_speedup",
        ],
        rows=rows,
        notes=notes,
    )
