"""Table II: the five evaluated hardware configurations."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.hw.config import PAPER_CONFIGS
from repro.util.units import KIB, MIB, format_frequency

__all__ = ["run"]


def run(scale: float = 1.0) -> ExperimentResult:
    rows = []
    for index, config in PAPER_CONFIGS.items():
        rows.append(
            [
                f"#{index}",
                format_frequency(config.gclk_hz),
                config.num_cus,
                f"{config.l1_bytes // KIB} KB",
                f"{config.l2_bytes // MIB} MB",
            ]
        )
    return ExperimentResult(
        experiment_id="table2",
        title="Hardware configurations used to evaluate SeqPoint",
        headers=["config", "GCLK", "#CU", "L1 $", "L2 $"],
        rows=rows,
        notes=["matches the paper's Table II exactly"],
    )
