"""Fig 8: nearby sequence lengths have similar execution profiles.

The paper plots GNMT kernel-group shares at SLs 87/89 and 192/197 and
observes that close SLs overlap while distant ones differ.  We
regenerate the shares plus the pairwise total-variation distances that
quantify "similar".
"""

from __future__ import annotations

from itertools import combinations

from repro.experiments.base import ExperimentResult
from repro.experiments.fig06 import GROUP_ORDER
from repro.experiments.setups import BATCH_SIZE, scenario
from repro.hw.config import paper_config
from repro.hw.device import GpuDevice
from repro.profiling.comparison import runtime_share_distance
from repro.profiling.profiler import Profiler

__all__ = ["run", "PAPER_SLS"]

#: The paper's exact GNMT sequence lengths.
PAPER_SLS = (87, 89, 192, 197)


def run(scale: float = 1.0) -> ExperimentResult:
    profiler = Profiler(scenario("gnmt", scale).model, GpuDevice(paper_config(1)))
    profiles = {
        sl: profiler.profile_seq_len(sl, batch=BATCH_SIZE).profile
        for sl in PAPER_SLS
    }
    rows: list[list[object]] = []
    for sl, profile in profiles.items():
        shares = profile.runtime_share_by_group()
        rows.append(
            [f"SL {sl}"]
            + [round(shares.get(group, 0.0), 4) for group in GROUP_ORDER]
        )
    notes = []
    for sl_a, sl_b in combinations(PAPER_SLS, 2):
        distance = runtime_share_distance(profiles[sl_a], profiles[sl_b])
        notes.append(f"share distance SL{sl_a} vs SL{sl_b}: {distance:.4f}")
    notes.append("paper: 87~89 and 192~197 nearly identical; cross pairs differ")
    return ExperimentResult(
        experiment_id="fig08",
        title="GNMT kernel-group shares at the paper's four SLs",
        headers=["iteration", *GROUP_ORDER],
        rows=rows,
        notes=notes,
    )
