"""Experiment registry and the run-everything harness."""

from __future__ import annotations

from collections.abc import Callable

from repro.experiments import (
    ablation_binning,
    ablation_identification,
    ablation_kmeans,
    ablation_representative,
    counter_projection,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    generality,
    inference,
    naive_all_sls,
    profiling_speedups,
    table1,
    table2,
)
from repro.experiments.base import ExperimentResult

__all__ = ["registry", "run_all"]

Runner = Callable[[float], ExperimentResult]

_REGISTRY: dict[str, Runner] = {
    "fig03": fig03.run,
    "fig04": fig04.run,
    "table1": table1.run,
    "fig05": fig05.run,
    "fig06": fig06.run,
    "fig07": fig07.run,
    "fig08": fig08.run,
    "fig09": fig09.run,
    "fig10": fig10.run,
    "table2": table2.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "profiling_speedups": profiling_speedups.run,
    "ablation_kmeans": ablation_kmeans.run,
    "ablation_binning": ablation_binning.run,
    "ablation_representative": ablation_representative.run,
    "ablation_identification": ablation_identification.run,
    "naive_all_sls": naive_all_sls.run,
    "counter_projection": counter_projection.run,
    "generality": generality.run,
    "inference": inference.run,
}


def registry() -> dict[str, Runner]:
    """All experiments by id, in paper order."""
    return dict(_REGISTRY)


def run_all(scale: float = 1.0) -> list[ExperimentResult]:
    """Run every experiment (traces are shared via the setup cache)."""
    return [runner(scale) for runner in _REGISTRY.values()]
