"""§V-A motivation: the naive all-unique-SLs representative set.

Before binning, the obvious representative set is one iteration per
unique SL — accurate, but for DS2 that is "up to half of all iterations
in an epoch", which defeats the purpose.  This experiment quantifies
the trade: iterations profiled and projection accuracy for the naive
set vs SeqPoint's binned set.
"""

from __future__ import annotations

from repro.core.projection import project_epoch_time
from repro.core.selection import SelectedPoint, Selection
from repro.core.sl_stats import SlStatistics
from repro.experiments.base import ExperimentResult
from repro.experiments.selectors import seqpoint_result
from repro.experiments.setups import epoch_trace, runner
from repro.util.stats import geomean, percent_error

__all__ = ["run", "naive_selection", "compare"]


def naive_selection(network: str, scale: float = 1.0) -> Selection:
    """One frequency-weighted representative per unique SL."""
    statistics = SlStatistics.from_trace(epoch_trace(network, 1, scale))
    points = tuple(
        SelectedPoint(record=stat.representative, weight=float(stat.iterations))
        for stat in statistics
    )
    return Selection(method="all-unique-sls", points=points)


def compare(network: str, scale: float = 1.0) -> dict[str, dict[str, float]]:
    """{'naive': {...}, 'seqpoint': {...}} with iteration and error stats."""
    trace = epoch_trace(network, 1, scale)
    candidates = {
        "naive": naive_selection(network, scale),
        "seqpoint": seqpoint_result(network, scale).selection,
    }
    outcome: dict[str, dict[str, float]] = {}
    for label, selection in candidates.items():
        errors = []
        for config_index in range(1, 6):
            actual = epoch_trace(network, config_index, scale).total_time_s
            projected = project_epoch_time(
                selection, runner(network, config_index, scale)
            )
            errors.append(percent_error(projected, actual))
        outcome[label] = {
            "iterations": float(selection.iterations_to_profile),
            "fraction_of_epoch": selection.iterations_to_profile / len(trace),
            "geomean_error_pct": geomean(errors),
        }
    return outcome


def run(scale: float = 1.0) -> ExperimentResult:
    rows = []
    notes = []
    for network in ("gnmt", "ds2"):
        outcome = compare(network, scale)
        for label in ("naive", "seqpoint"):
            stats = outcome[label]
            rows.append(
                [
                    network,
                    label,
                    int(stats["iterations"]),
                    f"{stats['fraction_of_epoch']:.0%}",
                    round(stats["geomean_error_pct"], 3),
                ]
            )
        ratio = (
            outcome["naive"]["iterations"] / outcome["seqpoint"]["iterations"]
        )
        notes.append(
            f"{network}: SeqPoint profiles {ratio:.0f}x fewer iterations "
            f"than the naive set at comparable accuracy"
        )
    notes.append(
        "paper §V-A: the naive set reaches up to half of all iterations "
        "for DS2, which is why binning exists"
    )
    return ExperimentResult(
        experiment_id="naive_all_sls",
        title="Naive all-unique-SLs set vs SeqPoint",
        headers=[
            "network", "method", "iterations", "of_epoch", "geomean_error_pct"
        ],
        rows=rows,
        notes=notes,
    )
