"""Fig 7: histogram of sequence lengths exercised by each network.

Iteration-level SL histograms of one training epoch (after batching and
padding), displayed in coarse display bins like the paper's chart, plus
the headline statistic of §V-A: how large the unique-SL space is
relative to the epoch.
"""

from __future__ import annotations

from collections import Counter

from repro.experiments.base import ExperimentResult
from repro.experiments.setups import epoch_trace

__all__ = ["run", "unique_sl_fraction"]

_DISPLAY_BINS = 10


def unique_sl_fraction(network: str, scale: float = 1.0) -> float:
    """Unique SLs as a fraction of epoch iterations (paper: DS2 ~ half)."""
    trace = epoch_trace(network, 1, scale)
    return len(trace.unique_seq_lens()) / len(trace)


def run(scale: float = 1.0) -> ExperimentResult:
    rows: list[list[object]] = []
    notes: list[str] = []
    for network in ("ds2", "gnmt"):
        trace = epoch_trace(network, 1, scale)
        histogram = trace.iteration_histogram()
        lo, hi = min(histogram), max(histogram)
        width = max(1, (hi - lo + 1) // _DISPLAY_BINS)
        display = Counter()
        for seq_len, count in histogram.items():
            display[lo + ((seq_len - lo) // width) * width] += count
        for bucket in sorted(display):
            rows.append(
                [network, f"{bucket}-{bucket + width - 1}", display[bucket]]
            )
        notes.append(
            f"{network}: {len(histogram)} unique SLs over {len(trace)} "
            f"iterations ({unique_sl_fraction(network, scale):.0%})"
        )
    notes.append(
        "paper: DS2/LibriSpeech-100h unique SLs reach ~half of epoch "
        "iterations; GNMT/IWSLT15 has a wide many-hundreds-long tail"
    )
    return ExperimentResult(
        experiment_id="fig07",
        title="Iteration sequence-length histograms (one epoch)",
        headers=["network", "sl_range", "iterations"],
        rows=rows,
        notes=notes,
    )
