"""Evaluation harness: one module per paper table/figure.

Every experiment regenerates the rows/series of its paper artefact
(same workloads, same hardware configurations, same selectors) and
returns an :class:`~repro.experiments.base.ExperimentResult` that the
benchmarks print.  ``registry()`` lists them all; ``run_all()`` is the
everything-at-once harness used to produce EXPERIMENTS.md.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import registry, run_all

__all__ = ["ExperimentResult", "registry", "run_all"]
