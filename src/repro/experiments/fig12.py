"""Fig 12: error in total training time projections for GNMT."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.time_projection import build_result

__all__ = ["run"]


def run(scale: float = 1.0) -> ExperimentResult:
    return build_result("gnmt", "fig12", paper_geomean=0.53, scale=scale)
