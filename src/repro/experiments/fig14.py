"""Fig 14: DS2 per-SL sensitivity to GCLK, CUs, L1 and L2."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.sensitivity import build_result

__all__ = ["run"]


def run(scale: float = 1.0) -> ExperimentResult:
    return build_result("ds2", "fig14", paper_variation_pct=45, scale=scale)
