"""Shared implementation of Figs 11 and 12 (training-time projection).

SeqPoints (and all baselines) are identified once on config #1, then
each selection projects total training time on every Table II config by
running only its selected iterations there.  Error is relative to the
full simulated epoch on that config.
"""

from __future__ import annotations

from repro.core.projection import project_epoch_time
from repro.experiments.base import ExperimentResult
from repro.experiments.selectors import METHOD_ORDER, selections
from repro.experiments.setups import epoch_trace, runner
from repro.util.stats import geomean, percent_error

__all__ = ["time_projection_errors", "build_result"]


def time_projection_errors(
    network: str, scale: float = 1.0
) -> dict[str, dict[int, float]]:
    """method -> config index -> training-time projection error %."""
    methods = selections(network, scale)
    errors: dict[str, dict[int, float]] = {m: {} for m in methods}
    for config_index in range(1, 6):
        actual = epoch_trace(network, config_index, scale).total_time_s
        target = runner(network, config_index, scale)
        for method, selection in methods.items():
            projected = project_epoch_time(selection, target)
            errors[method][config_index] = percent_error(projected, actual)
    return errors


def build_result(
    network: str, experiment_id: str, paper_geomean: float, scale: float = 1.0
) -> ExperimentResult:
    errors = time_projection_errors(network, scale)
    rows = []
    for config_index in range(1, 6):
        rows.append(
            [f"config#{config_index}"]
            + [round(errors[m][config_index], 3) for m in METHOD_ORDER]
        )
    geomeans = {m: geomean(list(errors[m].values())) for m in METHOD_ORDER}
    rows.append(
        ["geomean"] + [round(geomeans[m], 3) for m in METHOD_ORDER]
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"{network.upper()} training-time projection error % "
        "(identified on config #1)",
        headers=["config", *METHOD_ORDER],
        rows=rows,
        notes=[
            f"measured SeqPoint geomean: {geomeans['seqpoint']:.3f}% "
            f"(paper: {paper_geomean}%)",
            "paper ordering: seqpoint << median/prior < frequent << worst",
        ],
    )
