"""§VII-E: SeqPoint applied to SQNN inference.

Serves the evaluation split of each corpus as forward-only requests
(batch 8, bucketed — a realistic serving setup), identifies SeqPoints
on the inference trace, and projects serving time onto config #3.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.projection import project_total
from repro.core.seqpoint import SeqPointSelector
from repro.data.batching import PooledBucketing
from repro.experiments.base import ExperimentResult
from repro.experiments.setups import scenario
from repro.hw.config import paper_config
from repro.hw.device import GpuDevice
from repro.train.inference import InferenceRunSimulator

__all__ = ["run", "inference_outcome"]

_SERVING_BATCH = 8


@lru_cache(maxsize=None)
def inference_outcome(network: str, scale: float = 1.0) -> dict[str, float]:
    setup = scenario(network, scale)

    def simulator(config_index: int) -> InferenceRunSimulator:
        return InferenceRunSimulator(
            setup.model,
            setup.eval_data,
            PooledBucketing(_SERVING_BATCH),
            GpuDevice(paper_config(config_index)),
        )

    base = simulator(1)
    trace = base.run_pass()
    result = SeqPointSelector().select(trace)

    other = simulator(3)
    actual = other.run_pass().total_time_s
    projected = project_total(
        result.selection,
        lambda point: other.measure_seq_len(point.seq_len, point.tgt_len),
    )
    return {
        "requests": float(len(trace)),
        "seqpoints": float(len(result.selection)),
        "ident_error_pct": result.identification_error_pct,
        "config3_error_pct": abs(projected - actual) / actual * 100.0,
    }


def run(scale: float = 1.0) -> ExperimentResult:
    rows = []
    for network in ("gnmt", "ds2"):
        outcome = inference_outcome(network, scale)
        rows.append(
            [
                network,
                int(outcome["requests"]),
                int(outcome["seqpoints"]),
                round(outcome["ident_error_pct"], 3),
                round(outcome["config3_error_pct"], 3),
            ]
        )
    return ExperimentResult(
        experiment_id="inference",
        title="SeqPoint on inference request streams (§VII-E)",
        headers=[
            "network", "request_batches", "seqpoints",
            "ident_error_pct", "config3_proj_error_pct",
        ],
        rows=rows,
        notes=[
            "paper: the SL-binning insight applies equally to inference"
        ],
    )
