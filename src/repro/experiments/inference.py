"""§VII-E: SeqPoint applied to SQNN inference.

Serves the evaluation split of each corpus as forward-only requests
(batch 8, bucketed — a realistic serving setup), identifies SeqPoints
on the inference trace, and projects serving time onto config #3.

The experiment routes through the traffic layer
(:meth:`~repro.api.engine.AnalysisEngine.run_traffic`) with the
degenerate ``offline`` arrival process: all requests present up front,
so the run reduces to exactly the paper's batched evaluation pass.
"""

from __future__ import annotations

from functools import lru_cache

from repro.api.engine import default_engine
from repro.api.spec import AnalysisSpec
from repro.experiments.base import ExperimentResult
from repro.traffic.spec import TrafficSpec

__all__ = ["run", "inference_outcome"]

_SERVING_BATCH = 8


@lru_cache(maxsize=None)
def inference_outcome(network: str, scale: float = 1.0) -> dict[str, float]:
    traffic = TrafficSpec(
        analysis=AnalysisSpec(
            network=network,
            batch_size=_SERVING_BATCH,
            batching="pooled",
            config=1,
            scale=scale,
        ),
        arrival="offline",
        # The paper's serving setup buckets without the corpus pad
        # multiple (requests arrive unpadded).
        pad_multiple=1,
        targets=(3,),
    )
    result = default_engine().run_traffic(traffic)
    return {
        "requests": float(result.batches),
        "seqpoints": float(len(result.points)),
        "ident_error_pct": result.identification_error_pct,
        "config3_error_pct": result.projections[0].error_pct,
    }


def run(scale: float = 1.0) -> ExperimentResult:
    rows = []
    for network in ("gnmt", "ds2"):
        outcome = inference_outcome(network, scale)
        rows.append(
            [
                network,
                int(outcome["requests"]),
                int(outcome["seqpoints"]),
                round(outcome["ident_error_pct"], 3),
                round(outcome["config3_error_pct"], 3),
            ]
        )
    return ExperimentResult(
        experiment_id="inference",
        title="SeqPoint on inference request streams (§VII-E)",
        headers=[
            "network", "request_batches", "seqpoints",
            "ident_error_pct", "config3_proj_error_pct",
        ],
        rows=rows,
        notes=[
            "paper: the SL-binning insight applies equally to inference"
        ],
    )
