"""Fig 10: the SeqPoint mechanism, step by step.

Exercises the identification loop on both networks and reports each
``k`` the loop visited with its identification error, the final
SeqPoint count, and the stopping reason — a tabular rendering of the
paper's flowchart.
"""

from __future__ import annotations

from repro.core.binning import bin_stats
from repro.core.projection import project_total
from repro.core.selection import Selection, select_from_bin
from repro.core.seqpoint import SeqPointSelector
from repro.core.sl_stats import SlStatistics
from repro.experiments.base import ExperimentResult
from repro.experiments.setups import epoch_trace
from repro.util.stats import percent_error

__all__ = ["run", "loop_history"]


def loop_history(network: str, scale: float = 1.0) -> list[tuple[int, int, float]]:
    """(k, seqpoints, identification error %) for each k the loop visits."""
    selector = SeqPointSelector()
    trace = epoch_trace(network, 1, scale)
    statistics = SlStatistics.from_trace(trace)
    actual = statistics.total_time_s
    history: list[tuple[int, int, float]] = []
    if len(statistics) <= selector.max_unique:
        return history
    k = selector.initial_bins
    while True:
        bins = bin_stats(statistics, k)
        selection = Selection(
            method="seqpoint", points=tuple(select_from_bin(b) for b in bins)
        )
        projected = project_total(selection, lambda p: p.record.time_s)
        error = percent_error(projected, actual)
        history.append((k, len(selection), error))
        if error < selector.error_threshold_pct or k >= len(statistics):
            return history
        k += 1


def run(scale: float = 1.0) -> ExperimentResult:
    rows: list[list[object]] = []
    notes: list[str] = []
    for network in ("gnmt", "ds2"):
        history = loop_history(network, scale)
        for k, points, error in history:
            rows.append([network, k, points, round(error, 4)])
        final = SeqPointSelector().select(epoch_trace(network, 1, scale))
        notes.append(
            f"{network}: stopped at k={final.k} with {len(final.selection)} "
            f"SeqPoints (error {final.identification_error_pct:.3f}% < "
            f"threshold)"
        )
    notes.append("paper: methodology identified 15 SeqPoints for GNMT, 8 for DS2")
    return ExperimentResult(
        experiment_id="fig10",
        title="SeqPoint identification loop (k vs identification error)",
        headers=["network", "k", "seqpoints", "ident_error_pct"],
        rows=rows,
        notes=notes,
    )
