"""Shared selector machinery for the evaluation experiments.

Identification always happens on config #1 (as in the paper); the
resulting selections are reused across configs 2-5 by Figs 11/12/15/16.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.baselines import (
    FrequentSelector,
    MedianSelector,
    PriorSelector,
    WorstSelector,
)
from repro.core.selection import Selection
from repro.core.seqpoint import SeqPointSelector
from repro.experiments.setups import epoch_trace

__all__ = ["METHOD_ORDER", "selections", "seqpoint_result"]

#: Bar order of the paper's comparison figures.
METHOD_ORDER = ("worst", "frequent", "median", "prior", "seqpoint")


@lru_cache(maxsize=None)
def seqpoint_result(network: str, scale: float = 1.0):
    """SeqPoint identification on config #1 (memoised)."""
    return SeqPointSelector().select(epoch_trace(network, 1, scale))


@lru_cache(maxsize=None)
def selections(network: str, scale: float = 1.0) -> dict[str, Selection]:
    """All five selections, identified on the config #1 trace."""
    trace = epoch_trace(network, 1, scale)
    return {
        "worst": WorstSelector().select(trace),
        "frequent": FrequentSelector().select(trace),
        "median": MedianSelector().select(trace),
        "prior": PriorSelector().select(trace),
        "seqpoint": seqpoint_result(network, scale).selection,
    }
