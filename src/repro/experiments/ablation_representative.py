"""Design-choice ablation: how to pick a bin's representative.

The paper picks the SL whose runtime is closest to the bin's average
runtime.  Alternatives: the bin's median iteration, or the SL closest
to the bin's iteration-weighted SL centroid (SimPoint's centroid
analogue).  All use the paper's bins and weights.
"""

from __future__ import annotations

from repro.core.binning import bin_stats
from repro.core.projection import project_epoch_time
from repro.core.selection import Selection, select_from_bin
from repro.core.sl_stats import SlStatistics
from repro.experiments.base import ExperimentResult
from repro.experiments.selectors import seqpoint_result
from repro.experiments.setups import epoch_trace, runner
from repro.util.stats import geomean, percent_error

__all__ = ["run", "compare", "STRATEGIES"]

STRATEGIES = ("closest-mean", "median-sl", "centroid-sl")


def compare(network: str, scale: float = 1.0) -> dict[str, float]:
    """Geomean cross-config time-projection error % per strategy."""
    statistics = SlStatistics.from_trace(epoch_trace(network, 1, scale))
    k = max(seqpoint_result(network, scale).k, 1)
    bins = bin_stats(statistics, k)
    outcome: dict[str, float] = {}
    for strategy in STRATEGIES:
        selection = Selection(
            method=f"seqpoint[{strategy}]",
            points=tuple(select_from_bin(b, strategy=strategy) for b in bins),
        )
        errors = []
        for config_index in range(1, 6):
            actual = epoch_trace(network, config_index, scale).total_time_s
            projected = project_epoch_time(
                selection, runner(network, config_index, scale)
            )
            errors.append(percent_error(projected, actual))
        outcome[strategy] = geomean(errors)
    return outcome


def run(scale: float = 1.0) -> ExperimentResult:
    rows = []
    for network in ("gnmt", "ds2"):
        outcome = compare(network, scale)
        rows.append(
            [network] + [round(outcome[s], 3) for s in STRATEGIES]
        )
    return ExperimentResult(
        experiment_id="ablation_representative",
        title="Bin-representative strategies "
        "(geomean time-projection error %, paper's bins and weights)",
        headers=["network", *STRATEGIES],
        rows=rows,
        notes=["closest-mean is the paper's choice"],
    )
