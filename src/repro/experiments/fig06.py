"""Fig 6: kernel runtime distribution differs with sequence length.

Per-group shares of device time (GEMM-1 = batched projections /
classifier, GEMM-2 = per-step recurrent and attention GEMMs, plus
scalar-op / reduce / conv / memops / embedding) for a short and a long
iteration of each network.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.setups import BATCH_SIZE, scenario
from repro.hw.config import paper_config
from repro.hw.device import GpuDevice
from repro.profiling.profiler import Profiler

__all__ = ["run", "GROUP_ORDER"]

GROUP_ORDER = (
    "GEMM-1", "GEMM-2", "conv", "scalar-op", "reduce", "embedding", "memops"
)


def run(scale: float = 1.0) -> ExperimentResult:
    device = GpuDevice(paper_config(1))
    rows: list[list[object]] = []
    for network in ("gnmt", "ds2"):
        setup = scenario(network, scale)
        lengths = sorted({s.length for s in setup.train_data.samples})
        short = lengths[int(0.10 * (len(lengths) - 1))]
        long_ = lengths[int(0.95 * (len(lengths) - 1))]
        profiler = Profiler(setup.model, device)
        for label, seq_len in (("sl-1", short), ("sl-2", long_)):
            shares = profiler.profile_seq_len(
                seq_len, batch=BATCH_SIZE
            ).profile.runtime_share_by_group()
            rows.append(
                [network, label, seq_len]
                + [round(shares.get(group, 0.0), 4) for group in GROUP_ORDER]
            )
    return ExperimentResult(
        experiment_id="fig06",
        title="Kernel-group runtime shares at two sequence lengths",
        headers=["network", "iter", "seq_len", *GROUP_ORDER],
        rows=rows,
        notes=["paper: GEMM-1/GEMM-2/reduce contributions shift with SL"],
    )
