"""§VII-B: SeqPoint generalises beyond the paper's two networks.

Runs the full pipeline on a Transformer encoder (attention family) and
a ConvS2S-style model (convolutional family) over an IWSLT-like
corpus: identification on config #1, time projection onto config #3.
The paper argues any network whose computation varies with SL benefits;
these two cover the remaining families it names.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.projection import project_epoch_time
from repro.core.seqpoint import SeqPointSelector
from repro.data.batching import PooledBucketing
from repro.data.iwslt import build_iwslt
from repro.experiments.base import ExperimentResult
from repro.experiments.setups import BATCH_SIZE, NOISE_SIGMA
from repro.hw.config import paper_config
from repro.hw.device import GpuDevice
from repro.models.convs2s import build_convs2s
from repro.models.spec import Model
from repro.models.transformer import build_transformer
from repro.train.runner import TrainingRunSimulator
from repro.util.stats import percent_error

__all__ = ["run", "generality_outcome"]

#: Kept smaller than the headline experiments: these are breadth checks.
_SENTENCES_AT_FULL_SCALE = 40_000


def _build(network: str) -> Model:
    if network == "transformer":
        # A 6-layer encoder keeps the breadth check quick.
        return build_transformer(layers=6)
    return build_convs2s()


@lru_cache(maxsize=None)
def generality_outcome(network: str, scale: float = 1.0) -> dict[str, float]:
    """Identification stats and cross-config error for one network."""
    corpus = build_iwslt(
        sentences=max(256, int(_SENTENCES_AT_FULL_SCALE * scale)), seed=77
    )
    model = _build(network)

    def simulator(config_index: int) -> TrainingRunSimulator:
        return TrainingRunSimulator(
            model, corpus, PooledBucketing(BATCH_SIZE),
            GpuDevice(paper_config(config_index)),
            noise_sigma=NOISE_SIGMA, noise_seed=config_index,
        )

    base = simulator(1)
    trace = base.run_epoch(include_eval=False)
    result = SeqPointSelector().select(trace)

    other = simulator(3)
    actual = other.run_epoch(include_eval=False).total_time_s
    projected = project_epoch_time(result.selection, other)
    return {
        "iterations": float(len(trace)),
        "unique_sls": float(len(trace.unique_seq_lens())),
        "seqpoints": float(len(result.selection)),
        "ident_error_pct": result.identification_error_pct,
        "config3_error_pct": percent_error(projected, actual),
    }


def run(scale: float = 1.0) -> ExperimentResult:
    rows = []
    for network in ("transformer", "convs2s"):
        outcome = generality_outcome(network, scale)
        rows.append(
            [
                network,
                int(outcome["iterations"]),
                int(outcome["unique_sls"]),
                int(outcome["seqpoints"]),
                round(outcome["ident_error_pct"], 3),
                round(outcome["config3_error_pct"], 3),
            ]
        )
    return ExperimentResult(
        experiment_id="generality",
        title="SeqPoint on other SQNN families (§VII-B)",
        headers=[
            "network", "iterations", "unique_sls", "seqpoints",
            "ident_error_pct", "config3_proj_error_pct",
        ],
        rows=rows,
        notes=[
            "paper: any network whose computation varies with input SL "
            "(attention, convolutional, recurrent families) benefits"
        ],
    )
