"""Fig 15: error in performance-speedup projections for DS2."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.speedup_projection import build_result

__all__ = ["run"]


def run(scale: float = 1.0) -> ExperimentResult:
    return build_result("ds2", "fig15", paper_geomean=0.13, scale=scale)
