"""Fig 9: iteration runtime vs sequence length is near-linear.

Sweeps SL across each network's observed range on config #1 and reports
runtime normalised to the shortest iteration, plus a linear-fit quality
note (the near-linearity is what lets a bin's mean runtime stand for the
whole bin).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.experiments.setups import runner, scenario

__all__ = ["run", "sweep"]

_POINTS = 12


def sweep(network: str, scale: float = 1.0) -> list[tuple[int, float]]:
    """(seq_len, time_s) samples across the network's SL range."""
    lengths = sorted({s.length for s in scenario(network, scale).train_data.samples})
    picks = [
        lengths[int(q * (len(lengths) - 1))]
        for q in np.linspace(0.0, 1.0, _POINTS)
    ]
    sim = runner(network, 1, scale)
    return [(sl, sim.measure_seq_len(sl)) for sl in sorted(set(picks))]


def run(scale: float = 1.0) -> ExperimentResult:
    rows: list[list[object]] = []
    notes: list[str] = []
    for network in ("gnmt", "ds2"):
        samples = sweep(network, scale)
        base = samples[0][1]
        for seq_len, time_s in samples:
            rows.append([network, seq_len, round(time_s / base, 3)])
        xs = np.array([sl for sl, _ in samples], dtype=float)
        ys = np.array([t for _, t in samples])
        slope, intercept = np.polyfit(xs, ys, 1)
        fitted = slope * xs + intercept
        r2 = 1.0 - np.sum((ys - fitted) ** 2) / np.sum((ys - ys.mean()) ** 2)
        notes.append(f"{network}: linear fit R^2 = {r2:.4f}")
    notes.append("paper: runtime grows near-linearly with SL for both networks")
    return ExperimentResult(
        experiment_id="fig09",
        title="Normalized iteration runtime vs sequence length (config #1)",
        headers=["network", "seq_len", "normalized_time"],
        rows=rows,
        notes=notes,
    )
