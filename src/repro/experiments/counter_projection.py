"""§V-C generalisation: projecting statistics other than runtime.

The paper notes the mechanism "can use any other statistic (or
collection of statistics) that varies with SL".  This experiment
projects whole-epoch *hardware counters* — VALU instructions, DRAM read
traffic, DRAM write traffic — from the runtime-identified SeqPoints and
compares against the logged epoch totals.
"""

from __future__ import annotations

from repro.core.projection import project_total
from repro.experiments.base import ExperimentResult
from repro.experiments.selectors import seqpoint_result
from repro.experiments.setups import epoch_trace
from repro.util.stats import percent_error

__all__ = ["run", "counter_errors"]

_COUNTERS = ("valu_insts", "dram_read_bytes", "dram_write_bytes")


def counter_errors(network: str, scale: float = 1.0) -> dict[str, float]:
    """Counter name -> projection error % on the identification config."""
    frame = epoch_trace(network, 1, scale).frame()
    selection = seqpoint_result(network, scale).selection
    errors: dict[str, float] = {}
    for counter in _COUNTERS:
        actual = float(frame.counter_column(counter).sum())
        projected = project_total(
            selection, lambda point: getattr(point.record.counters, counter)
        )
        errors[counter] = percent_error(projected, actual)
    return errors


def run(scale: float = 1.0) -> ExperimentResult:
    rows = []
    for network in ("gnmt", "ds2"):
        errors = counter_errors(network, scale)
        rows.append(
            [network] + [round(errors[counter], 3) for counter in _COUNTERS]
        )
    return ExperimentResult(
        experiment_id="counter_projection",
        title="Projecting hardware counters from runtime-identified "
        "SeqPoints (error %)",
        headers=["network", *_COUNTERS],
        rows=rows,
        notes=[
            "paper §V-C: runtime is a good enough proxy — points picked "
            "by runtime also project other SL-dependent statistics"
        ],
    )
