"""Fig 3: CNN iterations are homogeneous, SQNN iterations are not.

Regenerates the paper's opening contrast: consecutive training
iterations of a fixed-input CNN take identical time, while GNMT's vary
with each batch's sequence length.  Times are normalised to each
network's mean iteration.
"""

from __future__ import annotations

from repro.data.batching import ShuffledBatching
from repro.experiments.base import ExperimentResult
from repro.experiments.setups import BATCH_SIZE, scenario
from repro.hw.config import paper_config
from repro.hw.device import GpuDevice
from repro.models.cnn import build_cnn
from repro.train.runner import TrainingRunSimulator

__all__ = ["run"]

_ITERATIONS = 12


def run(scale: float = 1.0) -> ExperimentResult:
    device = GpuDevice(paper_config(1))

    gnmt_setup = scenario("gnmt", scale)
    gnmt_runner = TrainingRunSimulator(
        gnmt_setup.model,
        gnmt_setup.train_data,
        ShuffledBatching(BATCH_SIZE),
        device,
    )
    gnmt_trace = gnmt_runner.run_epoch(include_eval=False)

    # The CNN consumes the same batches; its lowering ignores lengths.
    cnn_runner = TrainingRunSimulator(
        build_cnn(),
        gnmt_setup.train_data,
        ShuffledBatching(BATCH_SIZE),
        device,
    )
    cnn_trace = cnn_runner.run_epoch(include_eval=False)

    count = min(_ITERATIONS, len(gnmt_trace), len(cnn_trace))
    gnmt_times = gnmt_trace.frame().time_s[:count].tolist()
    cnn_times = cnn_trace.frame().time_s[:count].tolist()
    gnmt_mean = sum(gnmt_times) / count
    cnn_mean = sum(cnn_times) / count

    rows = [
        [i + 1, round(cnn_times[i] / cnn_mean, 4), round(gnmt_times[i] / gnmt_mean, 4)]
        for i in range(count)
    ]
    cnn_spread = (max(cnn_times) - min(cnn_times)) / cnn_mean * 100
    rnn_spread = (max(gnmt_times) - min(gnmt_times)) / gnmt_mean * 100
    return ExperimentResult(
        experiment_id="fig03",
        title="CNN vs SQNN normalized iteration times",
        headers=["iteration", "cnn", "rnn"],
        rows=rows,
        notes=[
            f"CNN iteration-time spread: {cnn_spread:.2f}% of mean",
            f"RNN (GNMT) iteration-time spread: {rnn_spread:.1f}% of mean",
            "paper: CNN flat, RNN heterogeneous",
        ],
    )
