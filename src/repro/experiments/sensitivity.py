"""Shared implementation of Figs 13 and 14 (per-SL speedup sensitivity).

For a sweep of sequence lengths, the percentage throughput uplift of
config #1 over each other config — the curves whose SL-dependence
motivates representative selection for speedup studies (and whose flat
region O1/O2 explains `prior`'s occasional luck on DS2).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.experiments.setups import runner, scenario

__all__ = ["sensitivity_curves", "build_result"]

_POINTS = 10


def sensitivity_curves(
    network: str, scale: float = 1.0
) -> dict[int, list[tuple[int, float]]]:
    """config index -> [(seq_len, uplift % of #1 over that config)]."""
    lengths = sorted({s.length for s in scenario(network, scale).train_data.samples})
    picks = sorted(
        {lengths[int(q * (len(lengths) - 1))] for q in np.linspace(0, 1, _POINTS)}
    )
    base = runner(network, 1, scale)
    curves: dict[int, list[tuple[int, float]]] = {}
    for config_index in range(2, 6):
        other = runner(network, config_index, scale)
        curve = []
        for seq_len in picks:
            t_base = base.measure_seq_len(seq_len)
            t_other = other.measure_seq_len(seq_len)
            curve.append((seq_len, (t_other / t_base - 1.0) * 100.0))
        curves[config_index] = curve
    return curves


def build_result(
    network: str, experiment_id: str, paper_variation_pct: int, scale: float = 1.0
) -> ExperimentResult:
    curves = sensitivity_curves(network, scale)
    seq_lens = [sl for sl, _ in curves[2]]
    rows = []
    for i, seq_len in enumerate(seq_lens):
        rows.append(
            [seq_len] + [round(curves[c][i][1], 2) for c in range(2, 6)]
        )
    notes = []
    for config_index in range(2, 6):
        values = [u for _, u in curves[config_index]]
        span = (max(values) - min(values)) / (sum(values) / len(values)) * 100
        notes.append(
            f"config#{config_index}->1 uplift varies {span:.0f}% across SLs"
        )
    notes.append(
        f"paper: uplift varies by up to ~{paper_variation_pct}% across SLs; "
        "curves rise with SL and flatten (the O2 plateau)"
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"{network.upper()} per-SL throughput uplift vs config #1 (%)",
        headers=["seq_len", "cfg2->1", "cfg3->1", "cfg4->1", "cfg5->1"],
        rows=rows,
        notes=notes,
    )
