"""Shared implementation of Figs 13 and 14 (sensitivity studies).

Two sensitivity axes, as in the paper's evaluation:

* **per-SL hardware sensitivity** (:func:`sensitivity_curves`) — for a
  sweep of sequence lengths, the percentage throughput uplift of
  config #1 over each other config; the curves whose SL-dependence
  motivates representative selection for speedup studies (and whose
  flat region O1/O2 explains `prior`'s occasional luck on DS2).
* **target-count sensitivity** (:func:`threshold_sensitivity`) — how
  the number of selected SeqPoints, and the projection quality across
  every Table II configuration, respond to the identification error
  budget ``e``.  This study is a grid of analyses and runs on the
  declarative sweep engine (:mod:`repro.api.parallel`): one
  :class:`SweepSpec` over seqpoint thresholds × all five hardware
  targets, sharing one identification epoch through the trace cache.
"""

from __future__ import annotations

import numpy as np

from repro.api.engine import AnalysisEngine, default_engine
from repro.api.parallel import SweepSpec, run_sweep
from repro.experiments.base import ExperimentResult
from repro.experiments.setups import runner, scenario

__all__ = [
    "sensitivity_curves",
    "threshold_sweep",
    "threshold_sensitivity",
    "threshold_run_violations",
    "build_result",
    "THRESHOLDS",
]

_POINTS = 10

#: Identification error budgets ``e`` (percent) the target-count study
#: sweeps; the paper's default is 1.0.
THRESHOLDS = (0.5, 1.0, 2.0, 4.0)


def sensitivity_curves(
    network: str, scale: float = 1.0
) -> dict[int, list[tuple[int, float]]]:
    """config index -> [(seq_len, uplift % of #1 over that config)]."""
    lengths = sorted({s.length for s in scenario(network, scale).train_data.samples})
    picks = sorted(
        {lengths[int(q * (len(lengths) - 1))] for q in np.linspace(0, 1, _POINTS)}
    )
    base = runner(network, 1, scale)
    curves: dict[int, list[tuple[int, float]]] = {}
    for config_index in range(2, 6):
        other = runner(network, config_index, scale)
        curve = []
        for seq_len in picks:
            t_base = base.measure_seq_len(seq_len)
            t_other = other.measure_seq_len(seq_len)
            curve.append((seq_len, (t_other / t_base - 1.0) * 100.0))
        curves[config_index] = curve
    return curves


def threshold_sweep(
    network: str,
    scale: float = 1.0,
    thresholds: tuple[float, ...] = THRESHOLDS,
) -> SweepSpec:
    """The target-count sensitivity grid as a declarative sweep."""
    # Dedupe upfront so callers can zip thresholds against the sweep's
    # results positionally (SweepSpec dedupes its axes anyway).
    thresholds = tuple(dict.fromkeys(float(t) for t in thresholds))
    return SweepSpec(
        networks=(network,),
        scales=(scale,),
        selectors=tuple(
            {"selector": "seqpoint", "kwargs": {"error_threshold_pct": t}}
            for t in thresholds
        ),
        targets=(1, 2, 3, 4, 5),
    )


def threshold_sensitivity(
    network: str,
    scale: float = 1.0,
    thresholds: tuple[float, ...] = THRESHOLDS,
    *,
    engine: AnalysisEngine | None = None,
    mode: str = "serial",
    workers: int | None = None,
) -> list[tuple[float, int, int, float, float]]:
    """``(threshold, k, points, ident err %, worst cross-config err %)``
    per error budget, in ``thresholds`` order.

    Defaults to the process-wide engine in serial mode so experiment
    runs share epoch traces with Figs 11/12/15/16; pass
    ``mode="process"`` and a worker count to fan a large grid out.
    """
    sweep = threshold_sweep(network, scale, thresholds)
    run = run_sweep(
        sweep, engine=engine or default_engine(), mode=mode, workers=workers
    )
    rows = []
    # Recover the (deduped) thresholds from the sweep itself so rows
    # always align with results, whatever the caller passed.
    swept = [dict(kwargs)["error_threshold_pct"] for _, kwargs in sweep.selectors]
    for threshold, result in zip(swept, run.results):
        worst = max(abs(p.error_pct) for p in result.projections)
        rows.append(
            (
                float(threshold),
                result.k if result.k is not None else len(result),
                len(result),
                result.identification_error_pct,
                worst,
            )
        )
    return rows


def threshold_run_violations(run) -> list[str]:
    """Consistency checks for a :func:`threshold_sweep` run.

    Returns human-readable violations (empty when consistent): the
    grid must share one epoch per (network, config) pair, a looser
    error budget must never need more bins, and each point must meet
    its budget unless SeqPoint kept every SL or capped out.  Shared by
    the Fig 13/14 benches so the semantics live in one place.
    """
    violations = []
    thresholds = [
        dict(kwargs)["error_threshold_pct"] for _, kwargs in run.sweep.selectors
    ]
    if len(run.results) != len(thresholds):
        violations.append(
            f"{len(thresholds)} thresholds but {len(run.results)} results"
        )
        return violations
    if run.unique_traces != 5 * len(run.sweep.networks):
        violations.append(
            f"expected one epoch per (network, config), got "
            f"{run.unique_traces} unique traces"
        )
    ks = [result.k for result in run.results]
    if not all(a >= b for a, b in zip(ks, ks[1:])):
        violations.append(f"bin counts not monotone in the budget: {ks}")
    for threshold, result in zip(thresholds, run.results):
        capped = result.k is None or result.k >= result.unique_seq_lens
        within = result.identification_error_pct < threshold
        if not (capped or result.k == 0 or within):
            violations.append(
                f"e={threshold:g}%: k={result.k} but ident err "
                f"{result.identification_error_pct:.3f}%"
            )
    return violations


def build_result(
    network: str, experiment_id: str, paper_variation_pct: int, scale: float = 1.0
) -> ExperimentResult:
    curves = sensitivity_curves(network, scale)
    seq_lens = [sl for sl, _ in curves[2]]
    rows = []
    for i, seq_len in enumerate(seq_lens):
        rows.append(
            [seq_len] + [round(curves[c][i][1], 2) for c in range(2, 6)]
        )
    notes = []
    for config_index in range(2, 6):
        values = [u for _, u in curves[config_index]]
        span = (max(values) - min(values)) / (sum(values) / len(values)) * 100
        notes.append(
            f"config#{config_index}->1 uplift varies {span:.0f}% across SLs"
        )
    notes.append(
        f"paper: uplift varies by up to ~{paper_variation_pct}% across SLs; "
        "curves rise with SL and flatten (the O2 plateau)"
    )
    for threshold, k, points, error, worst in threshold_sensitivity(network, scale):
        notes.append(
            f"target-count sweep e={threshold:g}%: {points} SeqPoints "
            f"(k={k}), ident err {error:.3f}%, worst cross-config err "
            f"{worst:.2f}%"
        )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"{network.upper()} per-SL throughput uplift vs config #1 (%)",
        headers=["seq_len", "cfg2->1", "cfg3->1", "cfg4->1", "cfg5->1"],
        rows=rows,
        notes=notes,
    )
