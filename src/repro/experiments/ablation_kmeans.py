"""§VII-C ablation: k-means over execution profiles vs SL binning.

The paper tried k-means clustering of iteration execution profiles and
found the simple contiguous SL binning "performs as well" — because
iteration runtime is a good proxy for the execution profile.  We run
both at the same cluster count and compare cross-config projection
errors.
"""

from __future__ import annotations

from repro.core.kmeans import KMeansSelector
from repro.core.projection import project_epoch_time
from repro.experiments.base import ExperimentResult
from repro.experiments.selectors import seqpoint_result
from repro.experiments.setups import epoch_trace, runner
from repro.util.stats import geomean, percent_error

__all__ = ["run", "compare"]


def compare(network: str, scale: float = 1.0) -> dict[str, float]:
    """Geomean cross-config time-projection error % of each method."""
    sp = seqpoint_result(network, scale)
    km = KMeansSelector(k=len(sp.selection)).select(epoch_trace(network, 1, scale))
    errors: dict[str, list[float]] = {"seqpoint": [], "kmeans": []}
    for config_index in range(1, 6):
        actual = epoch_trace(network, config_index, scale).total_time_s
        target = runner(network, config_index, scale)
        errors["seqpoint"].append(
            percent_error(project_epoch_time(sp.selection, target), actual)
        )
        errors["kmeans"].append(
            percent_error(project_epoch_time(km, target), actual)
        )
    return {method: geomean(values) for method, values in errors.items()}


def run(scale: float = 1.0) -> ExperimentResult:
    rows = []
    for network in ("gnmt", "ds2"):
        outcome = compare(network, scale)
        rows.append(
            [network, round(outcome["seqpoint"], 3), round(outcome["kmeans"], 3)]
        )
    return ExperimentResult(
        experiment_id="ablation_kmeans",
        title="SL binning vs k-means over execution profiles "
        "(geomean time-projection error %, equal cluster counts)",
        headers=["network", "seqpoint_binning", "kmeans_profiles"],
        rows=rows,
        notes=[
            "paper §VII-C: the simple binning performs as well as k-means, "
            "because runtime proxies the execution profile"
        ],
    )
