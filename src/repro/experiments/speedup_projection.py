"""Shared implementation of Figs 15 and 16 (speedup projection).

For each config X in 2-5, project the percentage throughput uplift of
moving from config X to config #1 using each selection, and report the
error in percentage points against the uplift measured from the full
simulated epochs.
"""

from __future__ import annotations

from repro.core.projection import project_uplift_pct, uplift_pct
from repro.experiments.base import ExperimentResult
from repro.experiments.selectors import METHOD_ORDER, selections
from repro.experiments.setups import epoch_trace, runner
from repro.util.stats import geomean

__all__ = ["speedup_projection_errors", "build_result"]


def speedup_projection_errors(
    network: str, scale: float = 1.0
) -> tuple[dict[str, dict[int, float]], dict[int, float]]:
    """(method -> config -> error pp, config -> actual uplift %)."""
    methods = selections(network, scale)
    base_trace = epoch_trace(network, 1, scale)
    base_runner = runner(network, 1, scale)
    errors: dict[str, dict[int, float]] = {m: {} for m in methods}
    actuals: dict[int, float] = {}
    for config_index in range(2, 6):
        other_trace = epoch_trace(network, config_index, scale)
        actual = uplift_pct(other_trace.throughput, base_trace.throughput)
        actuals[config_index] = actual
        other_runner = runner(network, config_index, scale)
        for method, selection in methods.items():
            projected = project_uplift_pct(selection, other_runner, base_runner)
            errors[method][config_index] = abs(projected - actual)
    return errors, actuals


def build_result(
    network: str, experiment_id: str, paper_geomean: float, scale: float = 1.0
) -> ExperimentResult:
    errors, actuals = speedup_projection_errors(network, scale)
    rows = []
    for config_index in range(2, 6):
        rows.append(
            [f"#{config_index}->#1", round(actuals[config_index], 2)]
            + [round(errors[m][config_index], 3) for m in METHOD_ORDER]
        )
    geomeans = {m: geomean(list(errors[m].values())) for m in METHOD_ORDER}
    rows.append(["geomean", ""] + [round(geomeans[m], 3) for m in METHOD_ORDER])
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"{network.upper()} speedup-projection error "
        "(percentage points of throughput uplift)",
        headers=["transition", "actual_uplift_%", *METHOD_ORDER],
        rows=rows,
        notes=[
            f"measured SeqPoint geomean: {geomeans['seqpoint']:.3f} pp "
            f"(paper: {paper_geomean}%)",
            "paper: SeqPoint outperforms all alternatives; worst shows the "
            "risk of arbitrary selection",
        ],
    )
