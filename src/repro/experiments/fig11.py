"""Fig 11: error in total training time projections for DS2."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.time_projection import build_result

__all__ = ["run"]


def run(scale: float = 1.0) -> ExperimentResult:
    return build_result("ds2", "fig11", paper_geomean=0.11, scale=scale)
