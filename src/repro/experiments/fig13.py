"""Fig 13: GNMT per-SL sensitivity to GCLK, CUs, L1 and L2."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.sensitivity import build_result

__all__ = ["run"]


def run(scale: float = 1.0) -> ExperimentResult:
    return build_result("gnmt", "fig13", paper_variation_pct=30, scale=scale)
