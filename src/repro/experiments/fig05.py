"""Fig 5: the set of unique kernels differs across sequence lengths.

For pairs of iterations, the breakdown of unique kernel names into
common / only-in-1 / only-in-2 — near pairs share almost everything,
far pairs diverge by up to ~20-30% (kernel-variant selection shifts
with problem sizes).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.setups import BATCH_SIZE, scenario
from repro.hw.config import paper_config
from repro.hw.device import GpuDevice
from repro.profiling.comparison import kernel_overlap
from repro.profiling.profiler import Profiler

__all__ = ["run", "sl_pairs"]


def sl_pairs(network: str, scale: float = 1.0) -> list[tuple[int, int]]:
    """Two SL pairs per network, as the paper plots."""
    lengths = sorted(
        {sample.length for sample in scenario(network, scale).train_data.samples}
    )
    low = lengths[int(0.10 * (len(lengths) - 1))]
    mid = lengths[int(0.50 * (len(lengths) - 1))]
    high = lengths[int(0.95 * (len(lengths) - 1))]
    return [(low, mid), (mid, high)]


def run(scale: float = 1.0) -> ExperimentResult:
    device = GpuDevice(paper_config(1))
    rows: list[list[object]] = []
    for network in ("gnmt", "ds2"):
        profiler = Profiler(scenario(network, scale).model, device)
        for sl_a, sl_b in sl_pairs(network, scale):
            profile_a = profiler.profile_seq_len(sl_a, batch=BATCH_SIZE).profile
            profile_b = profiler.profile_seq_len(sl_b, batch=BATCH_SIZE).profile
            overlap = kernel_overlap(profile_a, profile_b)
            rows.append(
                [
                    network,
                    f"sl{sl_a} vs sl{sl_b}",
                    overlap.common,
                    overlap.only_in_first,
                    overlap.only_in_second,
                    f"{overlap.exclusive_fraction:.0%}",
                ]
            )
    return ExperimentResult(
        experiment_id="fig05",
        title="Unique-kernel overlap between iteration pairs",
        headers=["network", "pair", "common", "only-in-1", "only-in-2", "exclusive"],
        rows=rows,
        notes=["paper: up to ~20% of unique kernels appear in only one iteration"],
    )
