"""Command-line interface.

Four subcommands cover the common workflows:

``repro configs``
    Print the Table II hardware configurations.

``repro identify --network gnmt [--scale 0.1] [--threshold 1.0]``
    Simulate an identification epoch and print the SeqPoints.

``repro analyze --network gnmt [--targets 1,3] [--format json]``
    The full declarative pipeline: resolve an :class:`AnalysisSpec`
    (inline flags or ``--spec spec.json``), simulate, select, and
    project onto the requested hardware configurations.

``repro experiments [--scale 0.1] [--ids fig11,fig12] [--output F]``
    Regenerate paper tables/figures (all by default) and print (or
    write) the result tables.

(``repro`` is the installed entry point; ``python -m repro`` works
without installation.)
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.api.cache import TraceCache
from repro.api.engine import AnalysisEngine, AnalysisResult, default_engine
from repro.api.registry import BATCHING, DATASETS, MODELS, SELECTORS
from repro.api.spec import AnalysisSpec, ProjectionSpec
from repro.core.seqpoint import SeqPointSelector
from repro.errors import ReproError
from repro.experiments import registry
from repro.experiments.setups import epoch_trace
from repro.hw.config import PAPER_CONFIGS
from repro.util.tables import render_table
from repro.util.units import format_duration

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="SeqPoint (ISPASS 2020) reproduction harness",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("configs", help="list the Table II hardware configs")

    identify = commands.add_parser(
        "identify", help="identify SeqPoints for a network"
    )
    identify.add_argument("--network", choices=MODELS.available(), required=True)
    identify.add_argument(
        "--scale", type=float, default=0.1,
        help="corpus scale in (0, 1]; 1.0 is paper-sized (default 0.1)",
    )
    identify.add_argument(
        "--threshold", type=float, default=1.0,
        help="identification error threshold e, percent (default 1.0)",
    )
    identify.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default table)",
    )

    analyze = commands.add_parser(
        "analyze",
        help="run a declarative analysis (simulate, select, project)",
    )
    analyze.add_argument(
        "--spec", default=None, metavar="FILE",
        help="JSON AnalysisSpec file; mutually exclusive with inline flags",
    )
    analyze.add_argument("--network", choices=MODELS.available())
    analyze.add_argument(
        "--dataset", choices=DATASETS.available(),
        help="corpus (default: the network's paper dataset)",
    )
    analyze.add_argument(
        "--batching", choices=BATCHING.available(),
        help="input pipeline (default: the network's paper pipeline)",
    )
    analyze.add_argument("--batch-size", type=int, default=None)
    analyze.add_argument(
        "--config", type=int, default=None,
        help="Table II config the identification epoch runs on (default 1)",
    )
    analyze.add_argument(
        "--scale", type=float, default=None,
        help="corpus scale in (0, 1]; 1.0 is paper-sized (default 0.1)",
    )
    analyze.add_argument("--seed", type=int, default=None)
    analyze.add_argument("--selector", choices=SELECTORS.available())
    analyze.add_argument(
        "--selector-arg", action="append", default=[], metavar="KEY=VALUE",
        help="selector keyword argument (repeatable), e.g. "
        "--selector-arg error_threshold_pct=0.5",
    )
    analyze.add_argument(
        "--targets", default=None,
        help="comma-separated Table II configs to project onto, or 'all' "
        "(default: the identification config only)",
    )
    analyze.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default table)",
    )
    analyze.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist simulated traces to DIR and reuse them across runs",
    )

    experiments = commands.add_parser(
        "experiments", help="regenerate paper tables and figures"
    )
    experiments.add_argument(
        "--scale", type=float, default=0.1,
        help="corpus scale in (0, 1]; 1.0 is paper-sized (default 0.1)",
    )
    experiments.add_argument(
        "--ids", default=None,
        help="comma-separated experiment ids (default: all)",
    )
    experiments.add_argument(
        "--output", default=None, help="write tables to this file instead of stdout"
    )
    return parser


def _cmd_configs() -> int:
    for config in PAPER_CONFIGS.values():
        print(config.describe())
    return 0


def _cmd_identify(
    network: str, scale: float, threshold: float, fmt: str
) -> int:
    trace = epoch_trace(network, 1, scale)
    result = SeqPointSelector(error_threshold_pct=threshold).select(trace)
    if fmt == "json":
        payload = {
            "network": network,
            "iterations": len(trace),
            "unique_seq_lens": len(trace.unique_seq_lens()),
            "epoch_time_s": trace.total_time_s,
            "k": result.k,
            "identification_error_pct": result.identification_error_pct,
            "projected_total_s": result.projected_total_s,
            "actual_total_s": result.actual_total_s,
            "seqpoints": [
                {
                    "seq_len": point.seq_len,
                    "weight": point.weight,
                    "time_s": point.record.time_s,
                }
                for point in result.seqpoints
            ],
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"{network}: {len(trace)} iterations, "
        f"{len(trace.unique_seq_lens())} unique SLs, "
        f"epoch {format_duration(trace.total_time_s)}"
    )
    print(
        f"SeqPoints: {len(result.selection)} (k={result.k}, "
        f"identification error {result.identification_error_pct:.3f}%)"
    )
    for point in result.seqpoints:
        print(
            f"  SL {point.seq_len:>5}  weight {point.weight:>8.0f}  "
            f"runtime {format_duration(point.record.time_s)}"
        )
    return 0


def _parse_selector_args(pairs: list[str]) -> dict[str, object]:
    kwargs: dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ReproError(
                f"--selector-arg expects KEY=VALUE, got {pair!r}"
            )
        try:
            kwargs[key] = json.loads(raw)
        except json.JSONDecodeError:
            kwargs[key] = raw
    return kwargs


def _parse_targets(raw: str | None, fallback: int) -> tuple[int, ...]:
    if raw is None:
        return (fallback,)
    if raw.strip() == "all":
        return tuple(PAPER_CONFIGS)
    try:
        targets = tuple(
            int(token) for token in raw.split(",") if token.strip()
        )
    except ValueError:
        raise ReproError(
            f"--targets expects comma-separated config indices, got {raw!r}"
        ) from None
    if not targets:
        raise ReproError("--targets is empty")
    return targets


def _analyze_spec(args: argparse.Namespace) -> AnalysisSpec:
    inline = {
        "network": args.network,
        "dataset": args.dataset,
        "batching": args.batching,
        "batch_size": args.batch_size,
        "config": args.config,
        "scale": args.scale,
        "seed": args.seed,
        "selector": args.selector,
    }
    inline = {key: value for key, value in inline.items() if value is not None}
    selector_kwargs = _parse_selector_args(args.selector_arg)
    if selector_kwargs:
        inline["selector_kwargs"] = selector_kwargs

    if args.spec is not None:
        if inline:
            raise ReproError(
                "--spec and inline spec flags are mutually exclusive "
                f"(got inline: {', '.join(sorted(inline))})"
            )
        with open(args.spec, "r", encoding="utf-8") as handle:
            return AnalysisSpec.from_dict(json.load(handle))
    if "network" not in inline:
        raise ReproError("analyze needs --network (or --spec FILE)")
    inline.setdefault("scale", 0.1)
    return AnalysisSpec.from_dict(inline)


def _render_analysis(result: AnalysisResult) -> str:
    spec = result.spec
    parts = [
        f"{spec.network} on {spec.dataset} ({spec.batching}, "
        f"batch {spec.batch_size}, scale {spec.scale}, "
        f"identified on config#{spec.config})",
        f"{result.iterations} iterations, "
        f"{result.unique_seq_lens} unique SLs, "
        f"epoch {format_duration(result.actual_total_s)}",
        f"{result.method}: {len(result)} points"
        + (f" (k={result.k})" if result.k is not None else "")
        + f", identification error {result.identification_error_pct:.3f}%",
        "",
        render_table(
            ["seq_len", "tgt_len", "weight", "time_s"],
            [
                [p.seq_len, p.tgt_len if p.tgt_len is not None else "-",
                 round(p.weight, 1), p.time_s]
                for p in result.points
            ],
            title="selected points",
        ),
        "",
        render_table(
            ["config", "projected", "actual", "error %",
             "uplift % (proj)", "uplift % (actual)"],
            [
                [p.config_name, format_duration(p.projected_time_s),
                 format_duration(p.actual_time_s), round(p.error_pct, 3),
                 round(p.projected_uplift_pct, 2),
                 round(p.actual_uplift_pct, 2)]
                for p in result.projections
            ],
            title="projections",
        ),
    ]
    return "\n".join(parts)


def _cmd_analyze(args: argparse.Namespace) -> int:
    try:
        spec = _analyze_spec(args)
        projection = ProjectionSpec(targets=_parse_targets(args.targets, spec.config))
        if args.cache_dir is not None:
            engine = AnalysisEngine(cache=TraceCache(args.cache_dir))
        else:
            engine = default_engine()
        result = engine.run(spec, projection)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(_render_analysis(result))
    return 0


def _cmd_experiments(scale: float, ids: str | None, output: str | None) -> int:
    available = registry()
    if ids is None:
        chosen = list(available)
    else:
        chosen = [token.strip() for token in ids.split(",") if token.strip()]
        unknown = [token for token in chosen if token not in available]
        if unknown:
            print(
                f"unknown experiment ids: {', '.join(unknown)}; "
                f"available: {', '.join(available)}",
                file=sys.stderr,
            )
            return 2
    tables = []
    for experiment_id in chosen:
        tables.append(available[experiment_id](scale).render())
    text = "\n\n".join(tables) + "\n"
    if output is None:
        print(text, end="")
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(chosen)} experiment tables to {output}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "configs":
        return _cmd_configs()
    if args.command == "identify":
        return _cmd_identify(args.network, args.scale, args.threshold, args.format)
    if args.command == "analyze":
        return _cmd_analyze(args)
    return _cmd_experiments(args.scale, args.ids, args.output)
