"""Command-line interface.

Three subcommands cover the common workflows:

``python -m repro configs``
    Print the Table II hardware configurations.

``python -m repro identify --network gnmt [--scale 0.1] [--threshold 1.0]``
    Simulate an identification epoch and print the SeqPoints.

``python -m repro experiments [--scale 0.1] [--ids fig11,fig12] [--output F]``
    Regenerate paper tables/figures (all by default) and print (or
    write) the result tables.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.seqpoint import SeqPointSelector
from repro.experiments import registry
from repro.experiments.setups import NETWORKS, epoch_trace
from repro.hw.config import PAPER_CONFIGS
from repro.util.units import format_duration

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SeqPoint (ISPASS 2020) reproduction harness",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("configs", help="list the Table II hardware configs")

    identify = commands.add_parser(
        "identify", help="identify SeqPoints for a network"
    )
    identify.add_argument("--network", choices=NETWORKS, required=True)
    identify.add_argument(
        "--scale", type=float, default=0.1,
        help="corpus scale in (0, 1]; 1.0 is paper-sized (default 0.1)",
    )
    identify.add_argument(
        "--threshold", type=float, default=1.0,
        help="identification error threshold e, percent (default 1.0)",
    )

    experiments = commands.add_parser(
        "experiments", help="regenerate paper tables and figures"
    )
    experiments.add_argument(
        "--scale", type=float, default=0.1,
        help="corpus scale in (0, 1]; 1.0 is paper-sized (default 0.1)",
    )
    experiments.add_argument(
        "--ids", default=None,
        help="comma-separated experiment ids (default: all)",
    )
    experiments.add_argument(
        "--output", default=None, help="write tables to this file instead of stdout"
    )
    return parser


def _cmd_configs() -> int:
    for config in PAPER_CONFIGS.values():
        print(config.describe())
    return 0


def _cmd_identify(network: str, scale: float, threshold: float) -> int:
    trace = epoch_trace(network, 1, scale)
    result = SeqPointSelector(error_threshold_pct=threshold).select(trace)
    print(
        f"{network}: {len(trace)} iterations, "
        f"{len(trace.unique_seq_lens())} unique SLs, "
        f"epoch {format_duration(trace.total_time_s)}"
    )
    print(
        f"SeqPoints: {len(result.selection)} (k={result.k}, "
        f"identification error {result.identification_error_pct:.3f}%)"
    )
    for point in result.seqpoints:
        print(
            f"  SL {point.seq_len:>5}  weight {point.weight:>8.0f}  "
            f"runtime {format_duration(point.record.time_s)}"
        )
    return 0


def _cmd_experiments(scale: float, ids: str | None, output: str | None) -> int:
    available = registry()
    if ids is None:
        chosen = list(available)
    else:
        chosen = [token.strip() for token in ids.split(",") if token.strip()]
        unknown = [token for token in chosen if token not in available]
        if unknown:
            print(
                f"unknown experiment ids: {', '.join(unknown)}; "
                f"available: {', '.join(available)}",
                file=sys.stderr,
            )
            return 2
    tables = []
    for experiment_id in chosen:
        tables.append(available[experiment_id](scale).render())
    text = "\n\n".join(tables) + "\n"
    if output is None:
        print(text, end="")
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(chosen)} experiment tables to {output}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "configs":
        return _cmd_configs()
    if args.command == "identify":
        return _cmd_identify(args.network, args.scale, args.threshold)
    return _cmd_experiments(args.scale, args.ids, args.output)
