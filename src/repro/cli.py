"""Command-line interface.

Nine subcommands cover the common workflows:

``repro configs``
    Print the Table II hardware configurations.

``repro identify --network gnmt [--scale 0.1] [--threshold 1.0]``
    Simulate an identification epoch and print the SeqPoints.

``repro analyze --network gnmt [--targets 1,3] [--format json]``
    The full declarative pipeline: resolve an :class:`AnalysisSpec`
    (inline flags or ``--spec spec.json``), simulate, select, and
    project onto the requested hardware configurations.

``repro sweep --networks gnmt,ds2 [--seeds 0,1] [--workers 4]``
    A whole grid of analyses (inline axis flags or ``--spec
    sweep.json``), executed by the process-parallel sweep engine:
    every unique epoch simulates once into a shared trace cache, then
    per-point analyses fan out to worker processes.

``repro stream --network gnmt [--cadence 100] [--patience 3]``
    Online identification: replay the scenario's epoch as a simulated
    live feed, re-run the selector on a cadence, and stop as soon as
    the selection stabilises — reporting iterations consumed vs the
    epoch length and the projection error vs the full-trace ground
    truth.

``repro traffic --network gnmt [--arrival poisson --rate 64]``
    Traffic-driven inference serving: a seeded arrival process paces
    corpus-sampled requests through the dynamic batcher and the
    batched timing pipeline, reporting SLO-style latency percentiles,
    serving-time projections onto other configs, and the streaming
    identifier's convergence on the live batch stream.

``repro serve [--port 8742] [--workers 2] [--cache-dir DIR]``
    The always-on analysis service: an HTTP/JSON daemon that accepts
    analyze/sweep/stream/traffic jobs into an async queue, multiplexes
    streaming identification sessions, and serves cache/queue/latency
    metrics on ``/stats``.  ``--check`` runs a self-test instead of
    serving: bind, self-request ``/stats``, run one tiny analyze job
    end to end, and exit 0.

``repro trace convert SOURCE DEST [--to 3]``
    Migrate a trace artefact between storage versions (v1/v2 JSON and
    the v3 binary columnar container), verifying the converted file
    reloads bit-identically before reporting success.

``repro experiments [--scale 0.1] [--ids fig11,fig12] [--output F]``
    Regenerate paper tables/figures (all by default) and print (or
    write) the result tables.

(``repro`` is the installed entry point; ``python -m repro`` works
without installation.)  Library failures — unknown registry names,
malformed specs, bad files — exit with code 2 and a one-line message
on stderr, never a traceback.

Every spec-driven subcommand (``analyze``/``sweep``/``stream``/
``traffic``/``serve``) accepts ``--spec FILE`` with one precedence
rule: the JSON file is the base document and inline flags override its
fields one by one, so ``--spec base.json --batch-size 32`` runs the
file's scenario at batch 32.  All commands share one ``--format
{table,json}`` implementation.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.api.cache import TraceCache
from repro.api.engine import (
    AnalysisEngine,
    AnalysisResult,
    StreamingAnalysisResult,
    default_engine,
)
from repro.api.parallel import SWEEP_MODES, SweepRun, SweepSpec, run_sweep
from repro.api.registry import BATCHING, DATASETS, MODELS, SELECTORS
from repro.api.spec import AnalysisSpec, ProjectionSpec
from repro.core.seqpoint import SeqPointSelector
from repro.errors import ReproError
from repro.experiments import registry
from repro.experiments.setups import epoch_trace
from repro.hw.config import PAPER_CONFIGS
from repro.stream.spec import StreamSpec
from repro.traffic import ARRIVAL_KINDS, TrafficSpec
from repro.util.tables import render_table
from repro.util.units import format_duration

__all__ = ["main", "build_parser"]

#: The one precedence rule every ``--spec`` flag follows.
_SPEC_HELP = (
    "JSON %s file used as the base document; inline flags "
    "override its fields one by one (inline wins)"
)


def _add_format(parser: argparse.ArgumentParser) -> None:
    """The shared ``--format`` flag (one implementation for all)."""
    parser.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default table)",
    )


def _add_cache_dir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist simulated traces to DIR and reuse them across runs",
    )


def _add_analysis_flags(parser: argparse.ArgumentParser, verb: str) -> None:
    """The inline ``AnalysisSpec`` flags shared by spec-driven commands."""
    parser.add_argument("--network", choices=MODELS.available())
    parser.add_argument(
        "--dataset", choices=DATASETS.available(),
        help="corpus (default: the network's paper dataset)",
    )
    parser.add_argument(
        "--batching", choices=BATCHING.available(),
        help="input pipeline (default: the network's paper pipeline)",
    )
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument(
        "--config", type=int, default=None,
        help=f"Table II config the {verb} runs on (default 1)",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="corpus scale in (0, 1]; 1.0 is paper-sized (default 0.1)",
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--selector", choices=SELECTORS.available())
    parser.add_argument(
        "--selector-arg", action="append", default=[], metavar="KEY=VALUE",
        help="selector keyword argument (repeatable), e.g. "
        "--selector-arg error_threshold_pct=0.5",
    )


def _add_stream_knobs(
    parser: argparse.ArgumentParser, cadence_default: int
) -> None:
    """The streaming-identifier knobs shared by stream and traffic."""
    parser.add_argument(
        "--cadence", type=int, default=None,
        help=f"iterations between selector re-runs (default {cadence_default})",
    )
    parser.add_argument(
        "--patience", type=int, default=None,
        help="consecutive agreeing checks to converge (default 3)",
    )
    parser.add_argument(
        "--rtol", type=float, default=None,
        help="relative tolerance on the projected mean iteration time "
        "(default 0.005)",
    )
    parser.add_argument(
        "--drift-rtol", type=float, default=None,
        help="per-SL mean drift that resets the window (default 0.02)",
    )
    parser.add_argument(
        "--sl-rtol", type=float, default=None,
        help="pointwise SL tolerance between checks; 0 = exact "
        "(default 0.1)",
    )
    parser.add_argument(
        "--min-iterations", type=int, default=None,
        help="iterations to consume before the first check (default 0)",
    )


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="SeqPoint (ISPASS 2020) reproduction harness",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("configs", help="list the Table II hardware configs")

    identify = commands.add_parser(
        "identify", help="identify SeqPoints for a network"
    )
    identify.add_argument("--network", choices=MODELS.available(), required=True)
    identify.add_argument(
        "--scale", type=float, default=0.1,
        help="corpus scale in (0, 1]; 1.0 is paper-sized (default 0.1)",
    )
    identify.add_argument(
        "--threshold", type=float, default=1.0,
        help="identification error threshold e, percent (default 1.0)",
    )
    _add_format(identify)

    analyze = commands.add_parser(
        "analyze",
        help="run a declarative analysis (simulate, select, project)",
    )
    analyze.add_argument(
        "--spec", default=None, metavar="FILE",
        help=_SPEC_HELP % "AnalysisSpec",
    )
    _add_analysis_flags(analyze, "identification epoch")
    analyze.add_argument(
        "--targets", default=None,
        help="comma-separated Table II configs to project onto, or 'all' "
        "(default: the identification config only)",
    )
    _add_format(analyze)
    _add_cache_dir(analyze)

    sweep = commands.add_parser(
        "sweep",
        help="run a grid of analyses on the process-parallel sweep engine",
    )
    sweep.add_argument(
        "--spec", default=None, metavar="FILE",
        help=_SPEC_HELP % "SweepSpec",
    )
    sweep.add_argument(
        "--networks", default=None,
        help="comma-separated networks, e.g. gnmt,ds2",
    )
    sweep.add_argument(
        "--scales", default=None,
        help="comma-separated corpus scales in (0, 1] (default 0.1)",
    )
    sweep.add_argument(
        "--configs", default=None,
        help="comma-separated identification configs (default 1)",
    )
    sweep.add_argument(
        "--seeds", default=None,
        help="comma-separated data-order seeds (default 0)",
    )
    sweep.add_argument(
        "--batch-sizes", default=None,
        help="comma-separated batch sizes (default 64)",
    )
    sweep.add_argument(
        "--selectors", default=None,
        help="comma-separated selector names (default seqpoint); "
        "selector kwargs need a --spec file",
    )
    sweep.add_argument(
        "--targets", default=None,
        help="comma-separated Table II configs to project every point "
        "onto, or 'all' (default: each point's identification config)",
    )
    sweep.add_argument(
        "--workers", type=int, default=None,
        help="worker count (default: all CPUs)",
    )
    sweep.add_argument(
        "--mode", choices=SWEEP_MODES, default="process",
        help="executor: process (default), thread, or serial",
    )
    sweep.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared on-disk trace cache (default: a per-sweep temp dir)",
    )
    sweep.add_argument(
        "--plan-store-dir", default=None, metavar="DIR",
        help="shared on-disk plan store: each unique lowering compiles "
        "once per machine instead of once per worker process",
    )
    _add_format(sweep)

    stream = commands.add_parser(
        "stream",
        help="online identification over a simulated live feed",
    )
    stream.add_argument(
        "--spec", default=None, metavar="FILE",
        help=_SPEC_HELP % "StreamSpec",
    )
    _add_analysis_flags(stream, "streamed epoch")
    _add_stream_knobs(stream, cadence_default=64)
    stream.add_argument(
        "--chunk-size", type=int, default=None,
        help="arrival granularity of the replayed feed (default 1)",
    )
    _add_format(stream)
    _add_cache_dir(stream)

    traffic = commands.add_parser(
        "traffic",
        help="traffic-driven inference serving simulation",
    )
    traffic.add_argument(
        "--spec", default=None, metavar="FILE",
        help=_SPEC_HELP % "TrafficSpec",
    )
    _add_analysis_flags(traffic, "serving device")
    traffic.add_argument(
        "--arrival", choices=ARRIVAL_KINDS, default=None,
        help="request arrival process (default poisson)",
    )
    traffic.add_argument(
        "--rate", type=float, default=None,
        help="mean request rate in requests/second (default 64)",
    )
    traffic.add_argument(
        "--requests", type=int, default=None,
        help="total requests to serve (default 1024)",
    )
    traffic.add_argument(
        "--max-wait", type=float, default=None, dest="max_wait_s",
        help="dynamic batcher's max-wait trigger in seconds (default 0.5)",
    )
    traffic.add_argument(
        "--burst-factor", type=float, default=None,
        help="bursty arrivals: on-period rate multiplier (default 3.0)",
    )
    traffic.add_argument(
        "--on-fraction", type=float, default=None,
        help="bursty arrivals: fraction of each period on (default 0.25)",
    )
    traffic.add_argument(
        "--period-s", type=float, default=None,
        help="bursty arrivals: on/off period in seconds (default 1.0)",
    )
    traffic.add_argument(
        "--phases", default=None, metavar="JSON",
        help="mixture schedule as a JSON list of phase objects, e.g. "
        '\'[{"fraction": 0.5, "quantile_hi": 0.6}, '
        '{"fraction": 0.5, "quantile_lo": 0.4}]\'',
    )
    traffic.add_argument(
        "--pad-multiple", type=int, default=None,
        help="override the dataset's pad multiple (default: keep it)",
    )
    traffic.add_argument(
        "--targets", default=None,
        help="comma-separated Table II configs to project serving time "
        "onto, or 'all' (default: none)",
    )
    traffic.add_argument(
        "--plan-store-dir", default=None, metavar="DIR",
        help="shared on-disk plan store: repeated traffic simulations "
        "reuse each unique lowering machine-wide",
    )
    _add_stream_knobs(traffic, cadence_default=16)
    _add_format(traffic)
    _add_cache_dir(traffic)

    serve = commands.add_parser(
        "serve",
        help="run the always-on analysis service (HTTP/JSON daemon)",
    )
    serve.add_argument(
        "--spec", default=None, metavar="FILE",
        help=_SPEC_HELP % "server-options",
    )
    serve.add_argument(
        "--host", default=None,
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=None,
        help="bind port; 0 picks an ephemeral port (default 8742)",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="job worker threads (default 2)",
    )
    serve.add_argument(
        "--sweep-mode", choices=("serial", "process"), default=None,
        help="how sweep jobs execute (default process)",
    )
    serve.add_argument(
        "--sweep-workers", type=int, default=None,
        help="processes per sweep job (default: all CPUs)",
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist simulated traces to DIR (shared across jobs and "
        "sweep worker processes)",
    )
    serve.add_argument(
        "--plan-store-dir", default=None, metavar="DIR",
        help="shared on-disk plan store for the daemon and its sweep "
        "worker processes",
    )
    serve.add_argument(
        "--cache-max-bytes", type=int, default=None,
        help="in-memory trace cache budget in bytes (default unbounded)",
    )
    serve.add_argument(
        "--cache-max-entries", type=int, default=None,
        help="in-memory trace cache entry budget (default unbounded)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=None,
        help="max jobs pending before submissions are refused "
        "(default unbounded)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=None,
        help="max concurrently open streaming sessions (default unbounded)",
    )
    serve.add_argument(
        "--check", action="store_true",
        help="smoke mode: bind, self-request /stats, run one tiny "
        "analyze job end to end, then exit 0",
    )

    trace = commands.add_parser(
        "trace", help="manage on-disk trace artefacts"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    convert = trace_commands.add_parser(
        "convert",
        help="convert a trace artefact between storage format versions",
    )
    convert.add_argument("source", help="existing trace artefact (v1/v2/v3)")
    convert.add_argument("dest", help="output path")
    convert.add_argument(
        "--to", type=int, default=3, dest="to_version", metavar="VERSION",
        help="output format version: 3 binary columnar (default), "
        "2 columnar JSON, 1 row JSON",
    )

    experiments = commands.add_parser(
        "experiments", help="regenerate paper tables and figures"
    )
    experiments.add_argument(
        "--scale", type=float, default=0.1,
        help="corpus scale in (0, 1]; 1.0 is paper-sized (default 0.1)",
    )
    experiments.add_argument(
        "--ids", default=None,
        help="comma-separated experiment ids (default: all)",
    )
    experiments.add_argument(
        "--output", default=None, help="write tables to this file instead of stdout"
    )
    return parser


def _cmd_configs() -> int:
    for config in PAPER_CONFIGS.values():
        print(config.describe())
    return 0


def _cmd_identify(
    network: str, scale: float, threshold: float, fmt: str
) -> int:
    trace = epoch_trace(network, 1, scale)
    result = SeqPointSelector(error_threshold_pct=threshold).select(trace)
    if fmt == "json":
        payload = {
            "network": network,
            "iterations": len(trace),
            "unique_seq_lens": len(trace.unique_seq_lens()),
            "epoch_time_s": trace.total_time_s,
            "k": result.k,
            "identification_error_pct": result.identification_error_pct,
            "projected_total_s": result.projected_total_s,
            "actual_total_s": result.actual_total_s,
            "seqpoints": [
                {
                    "seq_len": point.seq_len,
                    "weight": point.weight,
                    "time_s": point.record.time_s,
                }
                for point in result.seqpoints
            ],
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"{network}: {len(trace)} iterations, "
        f"{len(trace.unique_seq_lens())} unique SLs, "
        f"epoch {format_duration(trace.total_time_s)}"
    )
    print(
        f"SeqPoints: {len(result.selection)} (k={result.k}, "
        f"identification error {result.identification_error_pct:.3f}%)"
    )
    for point in result.seqpoints:
        print(
            f"  SL {point.seq_len:>5}  weight {point.weight:>8.0f}  "
            f"runtime {format_duration(point.record.time_s)}"
        )
    return 0


def _parse_selector_args(pairs: list[str]) -> dict[str, object]:
    kwargs: dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ReproError(
                f"--selector-arg expects KEY=VALUE, got {pair!r}"
            )
        try:
            kwargs[key] = json.loads(raw)
        except json.JSONDecodeError:
            kwargs[key] = raw
    return kwargs


def _parse_targets(raw: str | None, fallback: int) -> tuple[int, ...]:
    if raw is None:
        return (fallback,)
    if raw.strip() == "all":
        return tuple(PAPER_CONFIGS)
    try:
        targets = tuple(
            int(token) for token in raw.split(",") if token.strip()
        )
    except ValueError:
        raise ReproError(
            f"--targets expects comma-separated config indices, got {raw!r}"
        ) from None
    if not targets:
        raise ReproError("--targets is empty")
    return targets


def _spec_payload(path: str | None) -> dict[str, object]:
    """Load a ``--spec`` JSON file as the base document for merging."""
    if path is None:
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ReproError(
            f"--spec {path} must contain a JSON object, "
            f"got {type(payload).__name__}"
        )
    return payload


def _emit(fmt: str, result: object, render) -> int:
    """The shared ``--format`` implementation: one JSON/table emitter."""
    if fmt == "json":
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(render(result))
    return 0


def _merge_nested(
    command: str,
    base: dict[str, object],
    inline: dict[str, object],
    knobs: dict[str, object],
) -> dict[str, object]:
    """Overlay inline flags onto a spec document with a nested analysis.

    The file is the base; inline analysis flags override fields of its
    ``analysis`` object, top-level knob flags override its top-level
    fields.  (The one precedence rule every ``--spec`` flag follows.)
    """
    analysis = base.get("analysis", {})
    if not isinstance(analysis, dict):
        raise ReproError(
            f"--spec 'analysis' must be a JSON object, "
            f"got {type(analysis).__name__}"
        )
    analysis = {**analysis, **inline}
    if "network" not in analysis:
        raise ReproError(f"{command} needs --network (or --spec FILE)")
    merged = {key: value for key, value in base.items() if key != "analysis"}
    merged.update(knobs)
    merged["analysis"] = analysis
    return merged


def _inline_analysis(args: argparse.Namespace) -> dict[str, object]:
    """The inline AnalysisSpec fields a command was given, as a dict."""
    inline = {
        "network": args.network,
        "dataset": args.dataset,
        "batching": args.batching,
        "batch_size": args.batch_size,
        "config": args.config,
        "scale": args.scale,
        "seed": args.seed,
        "selector": args.selector,
    }
    inline = {key: value for key, value in inline.items() if value is not None}
    selector_kwargs = _parse_selector_args(args.selector_arg)
    if selector_kwargs:
        inline["selector_kwargs"] = selector_kwargs
    return inline


def _analyze_spec(args: argparse.Namespace) -> AnalysisSpec:
    merged = {**_spec_payload(args.spec), **_inline_analysis(args)}
    if "network" not in merged:
        raise ReproError("analyze needs --network (or --spec FILE)")
    if args.spec is None:
        merged.setdefault("scale", 0.1)
    return AnalysisSpec.from_dict(merged)


def _render_analysis(result: AnalysisResult) -> str:
    spec = result.spec
    parts = [
        f"{spec.network} on {spec.dataset} ({spec.batching}, "
        f"batch {spec.batch_size}, scale {spec.scale}, "
        f"identified on config#{spec.config})",
        f"{result.iterations} iterations, "
        f"{result.unique_seq_lens} unique SLs, "
        f"epoch {format_duration(result.actual_total_s)}",
        f"{result.method}: {len(result)} points"
        + (f" (k={result.k})" if result.k is not None else "")
        + f", identification error {result.identification_error_pct:.3f}%",
        "",
        render_table(
            ["seq_len", "tgt_len", "weight", "time_s"],
            [
                [p.seq_len, p.tgt_len if p.tgt_len is not None else "-",
                 round(p.weight, 1), p.time_s]
                for p in result.points
            ],
            title="selected points",
        ),
        "",
        render_table(
            ["config", "projected", "actual", "error %",
             "uplift % (proj)", "uplift % (actual)"],
            [
                [p.config_name, format_duration(p.projected_time_s),
                 format_duration(p.actual_time_s), round(p.error_pct, 3),
                 round(p.projected_uplift_pct, 2),
                 round(p.actual_uplift_pct, 2)]
                for p in result.projections
            ],
            title="projections",
        ),
    ]
    return "\n".join(parts)


def _cmd_analyze(args: argparse.Namespace) -> int:
    try:
        spec = _analyze_spec(args)
        projection = ProjectionSpec(targets=_parse_targets(args.targets, spec.config))
        if args.cache_dir is not None:
            engine = AnalysisEngine(cache=TraceCache(args.cache_dir))
        else:
            engine = default_engine()
        result = engine.run(spec, projection)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        return _unknown_name("analyze", exc)
    return _emit(args.format, result, _render_analysis)


def _stream_knobs(args: argparse.Namespace) -> dict[str, object]:
    knobs = {
        "cadence": args.cadence,
        "patience": args.patience,
        "rtol": args.rtol,
        "drift_rtol": args.drift_rtol,
        "sl_rtol": args.sl_rtol,
        "min_iterations": args.min_iterations,
    }
    return {key: value for key, value in knobs.items() if value is not None}


def _stream_spec(args: argparse.Namespace) -> StreamSpec:
    knobs = _stream_knobs(args)
    if args.chunk_size is not None:
        knobs["chunk_size"] = args.chunk_size
    merged = _merge_nested(
        "stream", _spec_payload(args.spec), _inline_analysis(args), knobs
    )
    if args.spec is None:
        merged["analysis"].setdefault("scale", 0.1)
    return StreamSpec.from_dict(merged)


def _render_stream(result: StreamingAnalysisResult) -> str:
    spec = result.spec.analysis
    status = (
        f"converged after {len(result.checks)} checks"
        if result.converged
        else "stream exhausted without convergence"
    )
    parts = [
        f"{spec.network} on {spec.dataset} ({spec.batching}, "
        f"batch {spec.batch_size}, scale {spec.scale}, "
        f"config#{spec.config}, selector {spec.selector})",
        f"consumed {result.iterations_consumed} of "
        f"{result.epoch_iterations} iterations "
        f"({100.0 * result.fraction_consumed:.1f}% of the epoch) — {status}",
    ]
    if result.checks and result.checks[-1].segments_closed:
        closed = result.checks[-1].segments_closed
        open_mean = result.checks[-1].open_segment_mean_s
        parts.append(
            f"quasi-stationary segments: {closed} closed + 1 open "
            f"(open-segment mean {open_mean:.6f} s/iteration)"
        )
    parts += [
        f"{result.method}: {len(result)} points"
        + (f" (k={result.k})" if result.k is not None else "")
        + f", prefix identification error "
        f"{result.identification_error_pct:.3f}%",
        "",
        render_table(
            ["seq_len", "tgt_len", "weight", "time_s"],
            [
                [p.seq_len, p.tgt_len if p.tgt_len is not None else "-",
                 round(p.weight, 1), p.time_s]
                for p in result.points
            ],
            title="selected points",
        ),
        "",
        f"projected epoch {format_duration(result.projected_epoch_time_s)} "
        f"vs actual {format_duration(result.actual_total_s)} "
        f"(error {result.projection_error_pct:.3f}%)",
        f"batch analysis of the full epoch: identification error "
        f"{result.batch_identification_error_pct:.3f}%, selection "
        + ("matches" if result.matches_batch_selection else "differs"),
    ]
    return "\n".join(parts)


def _cmd_stream(args: argparse.Namespace) -> int:
    try:
        stream = _stream_spec(args)
        if args.cache_dir is not None:
            engine = AnalysisEngine(cache=TraceCache(args.cache_dir))
        else:
            engine = default_engine()
        result = engine.run_streaming(stream)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"stream: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        return _unknown_name("stream", exc)
    return _emit(args.format, result, _render_stream)


def _unknown_name(command: str, exc: KeyError) -> int:
    """One-line exit for registry ``KeyError``s from declarative specs.

    Registry lookups raise :class:`ConfigurationError` for unknown
    names, but downstream-registered components can still surface a
    bare ``KeyError``; the spec-driven commands keep the one-line,
    exit-2 contract for those too.  (Scoped to ``analyze``/``sweep``
    deliberately — a blanket handler in ``main`` would silence genuine
    bugs.)
    """
    name = exc.args[0] if exc.args else exc
    print(f"{command}: unknown name: {name}", file=sys.stderr)
    return 2


def _split(raw: str) -> list[str]:
    return [token.strip() for token in raw.split(",") if token.strip()]


def _sweep_spec(args: argparse.Namespace) -> SweepSpec:
    inline: dict[str, object] = {}
    if args.networks is not None:
        inline["networks"] = _split(args.networks)
    try:
        if args.scales is not None:
            inline["scales"] = [float(t) for t in _split(args.scales)]
        if args.configs is not None:
            inline["configs"] = [int(t) for t in _split(args.configs)]
        if args.seeds is not None:
            inline["seeds"] = [int(t) for t in _split(args.seeds)]
        if args.batch_sizes is not None:
            inline["batch_sizes"] = [int(t) for t in _split(args.batch_sizes)]
    except ValueError:
        raise ReproError(
            "sweep axis flags expect comma-separated numbers"
        ) from None
    if args.selectors is not None:
        inline["selectors"] = _split(args.selectors)
    if args.targets is not None:
        inline["targets"] = _parse_targets(args.targets, 1)

    merged = {**_spec_payload(args.spec), **inline}
    if "networks" not in merged:
        raise ReproError("sweep needs --networks (or --spec FILE)")
    if args.spec is None:
        merged.setdefault("scales", [0.1])
    return SweepSpec.from_dict(merged)


def _render_sweep(run: SweepRun) -> str:
    rows = []
    for result in run.results:
        spec = result.spec
        worst = max(abs(p.error_pct) for p in result.projections)
        rows.append(
            [
                spec.network, spec.scale, spec.batch_size, spec.config,
                spec.seed, spec.selector, len(result),
                result.k if result.k is not None else "-",
                round(result.identification_error_pct, 3),
                round(worst, 3),
            ]
        )
    summary = (
        f"{len(run)} analysis points, {run.unique_traces} unique traces, "
        f"mode {run.mode} ({run.workers} workers)"
    )
    table = render_table(
        ["network", "scale", "batch", "cfg", "seed", "selector",
         "points", "k", "ident err %", "worst proj err %"],
        rows,
        title="sweep results",
    )
    return f"{summary}\n\n{table}"


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        sweep = _sweep_spec(args)
        run = run_sweep(
            sweep,
            mode=args.mode,
            workers=args.workers,
            cache_dir=args.cache_dir,
            plan_store_dir=args.plan_store_dir,
        )
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        return _unknown_name("sweep", exc)
    return _emit(args.format, run, _render_sweep)


def _traffic_spec(args: argparse.Namespace) -> TrafficSpec:
    knobs = _stream_knobs(args)
    traffic_knobs = {
        "arrival": args.arrival,
        "rate": args.rate,
        "requests": args.requests,
        "max_wait_s": args.max_wait_s,
        "burst_factor": args.burst_factor,
        "on_fraction": args.on_fraction,
        "period_s": args.period_s,
        "pad_multiple": args.pad_multiple,
    }
    knobs.update(
        {k: v for k, v in traffic_knobs.items() if v is not None}
    )
    if args.phases is not None:
        try:
            knobs["phases"] = json.loads(args.phases)
        except json.JSONDecodeError:
            raise ReproError(
                f"--phases expects a JSON list of phase objects, "
                f"got {args.phases!r}"
            ) from None
    if args.targets is not None:
        knobs["targets"] = list(_parse_targets(args.targets, 1))
    merged = _merge_nested(
        "traffic", _spec_payload(args.spec), _inline_analysis(args), knobs
    )
    if args.spec is None:
        merged["analysis"].setdefault("scale", 0.1)
    return TrafficSpec.from_dict(merged)


def _render_traffic(result: "object") -> str:
    spec = result.spec
    analysis = spec.analysis
    status = (
        f"identifier converged after {len(result.checks)} checks"
        if result.converged
        else "identifier did not converge on the stream"
    )
    latency = result.latency
    queue = result.queue_wait
    parts = [
        f"{analysis.network} on {analysis.dataset} ({analysis.batching}, "
        f"batch {analysis.batch_size}, config#{analysis.config}, "
        f"{spec.arrival} arrivals, {len(spec.phases)} phase(s))",
        f"served {result.requests} requests in {result.batches} batches "
        f"({result.unique_seq_lens} unique SLs, device time "
        f"{format_duration(result.actual_total_s)}, makespan "
        f"{format_duration(result.makespan_s)})",
        f"{result.method}: {len(result)} points"
        + (f" (k={result.k})" if result.k is not None else "")
        + f", identification error {result.identification_error_pct:.3f}%",
        "",
        render_table(
            ["seq_len", "tgt_len", "weight", "time_s"],
            [
                [p.seq_len, p.tgt_len if p.tgt_len is not None else "-",
                 round(p.weight, 1), p.time_s]
                for p in result.points
            ],
            title="selected points",
        ),
        "",
        render_table(
            ["metric", "mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms"],
            [
                ["latency", latency["mean_ms"], latency["p50_ms"],
                 latency["p95_ms"], latency["p99_ms"], latency["max_ms"]],
                ["queue wait", queue["mean_ms"], queue["p50_ms"],
                 queue["p95_ms"], queue["p99_ms"], queue["max_ms"]],
            ],
            title="request latency (SLO view)",
        ),
        "",
        f"streaming: consumed {result.iterations_consumed} of "
        f"{result.batches} batches — {status}, "
        f"{result.drift_resets} drift reset(s), projected serving time "
        f"error {result.streaming_projection_error_pct:.3f}%, selection "
        + ("matches" if result.matches_batch_selection else "differs from")
        + " the batch analysis",
    ]
    if result.projections:
        parts += [
            "",
            render_table(
                ["config", "projected", "actual", "error %"],
                [
                    [p.config_name,
                     format_duration(p.projected_serving_s),
                     format_duration(p.actual_serving_s),
                     round(p.error_pct, 3)]
                    for p in result.projections
                ],
                title="serving-time projections",
            ),
        ]
    return "\n".join(parts)


def _cmd_traffic(args: argparse.Namespace) -> int:
    try:
        traffic = _traffic_spec(args)
        if args.cache_dir is not None:
            engine = AnalysisEngine(cache=TraceCache(args.cache_dir))
        else:
            engine = default_engine()
        result = engine.run_traffic(
            traffic, plan_store_dir=args.plan_store_dir
        )
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"traffic: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        return _unknown_name("traffic", exc)
    return _emit(args.format, result, _render_traffic)


def _serve_check(server: "object") -> int:
    """Self-test an already-constructed server: stats + one tiny job."""
    import time
    import urllib.request

    def request(path: str, payload: dict | None = None) -> dict:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        with urllib.request.urlopen(
            urllib.request.Request(
                f"{server.url}{path}",
                data=data,
                headers={"Content-Type": "application/json"},
            ),
            timeout=30,
        ) as response:
            return json.loads(response.read())

    with server:
        stats = request("/stats")
        if not stats.get("ok"):
            raise ReproError(f"/stats returned a failure envelope: {stats}")
        spec = AnalysisSpec(network="gnmt", scale=0.02)
        job = request(
            "/jobs", {"kind": "analyze", "spec": spec.to_dict()}
        )["job"]
        deadline = time.monotonic() + 60
        while job["state"] not in ("done", "failed", "cancelled"):
            if time.monotonic() > deadline:
                raise ReproError(
                    f"check job {job['id']} still {job['state']} after 60s"
                )
            time.sleep(0.05)
            job = request(f"/jobs/{job['id']}")["job"]
        if job["state"] != "done":
            error = job.get("error", {}).get("message", "no error recorded")
            raise ReproError(f"check job {job['state']}: {error}")
        result = request(f"/jobs/{job['id']}/result")["result"]
        print(
            f"serve check ok: {server.url} answered /stats and ran "
            f"{job['id']} (gnmt scale 0.02, k={result['k']})"
        )
    return 0


#: Every server option a serve --spec file may set (= the inline flags).
_SERVE_OPTION_KEYS = (
    "host", "port", "workers", "sweep_mode", "sweep_workers", "cache_dir",
    "plan_store_dir", "cache_max_bytes", "cache_max_entries",
    "queue_depth", "max_sessions",
)
_SERVE_DEFAULTS = {
    "host": "127.0.0.1", "port": 8742, "workers": 2, "sweep_mode": "process",
}


def _serve_options(args: argparse.Namespace) -> dict[str, object]:
    """serve's --spec merge: file is the base, inline flags win."""
    base = _spec_payload(args.spec)
    base.pop("v", None)
    unknown = sorted(set(base) - set(_SERVE_OPTION_KEYS))
    if unknown:
        raise ReproError(
            f"unknown serve --spec fields: {', '.join(unknown)}; expected "
            f"a subset of: {', '.join(_SERVE_OPTION_KEYS)}"
        )
    options: dict[str, object] = dict.fromkeys(_SERVE_OPTION_KEYS)
    options.update(_SERVE_DEFAULTS)
    options.update(base)
    options.update(
        {
            key: getattr(args, key)
            for key in _SERVE_OPTION_KEYS
            if getattr(args, key) is not None
        }
    )
    if options["sweep_mode"] not in ("serial", "process"):
        raise ReproError(
            f"sweep_mode must be 'serial' or 'process', "
            f"got {options['sweep_mode']!r}"
        )
    return options


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ReproServer

    try:
        options = _serve_options(args)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    try:
        server = ReproServer(
            options["host"],
            0 if args.check else options["port"],
            cache_dir=options["cache_dir"],
            cache_max_bytes=options["cache_max_bytes"],
            cache_max_entries=options["cache_max_entries"],
            workers=options["workers"],
            sweep_mode=options["sweep_mode"],
            sweep_workers=options["sweep_workers"],
            queue_depth=options["queue_depth"],
            max_sessions=options["max_sessions"],
            plan_store_dir=options["plan_store_dir"],
        )
    except OSError as exc:
        print(
            f"serve: cannot bind {options['host']}:{options['port']}: {exc}",
            file=sys.stderr,
        )
        return 2
    except (TypeError, ValueError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    if args.check:
        return _serve_check(server)
    print(f"repro serve listening on {server.url}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    """Convert a trace artefact between versions, verifying bit-identity."""
    from repro.train.trace import TrainingTrace

    try:
        trace = TrainingTrace.load(args.source)
        original = json.dumps(trace.frame().to_payload(), sort_keys=True)
        trace.save(args.dest, version=args.to_version)
        reloaded = TrainingTrace.load(args.dest)
        if json.dumps(reloaded.frame().to_payload(), sort_keys=True) != original:
            raise ReproError(
                f"{args.dest}: round-trip mismatch — converted artefact "
                "does not reload bit-identically"
            )
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 2
    print(
        f"converted {args.source} -> {args.dest} "
        f"(v{args.to_version}, {len(trace.frame())} iterations, "
        "round trip verified)"
    )
    return 0


def _cmd_experiments(scale: float, ids: str | None, output: str | None) -> int:
    available = registry()
    if ids is None:
        chosen = list(available)
    else:
        chosen = [token.strip() for token in ids.split(",") if token.strip()]
        unknown = [token for token in chosen if token not in available]
        if unknown:
            print(
                f"unknown experiment ids: {', '.join(unknown)}; "
                f"available: {', '.join(available)}",
                file=sys.stderr,
            )
            return 2
    tables = []
    for experiment_id in chosen:
        tables.append(available[experiment_id](scale).render())
    text = "\n\n".join(tables) + "\n"
    if output is None:
        print(text, end="")
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(chosen)} experiment tables to {output}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "configs":
            return _cmd_configs()
        if args.command == "identify":
            return _cmd_identify(
                args.network, args.scale, args.threshold, args.format
            )
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "stream":
            return _cmd_stream(args)
        if args.command == "traffic":
            return _cmd_traffic(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "trace":
            return _cmd_trace_convert(args)
        return _cmd_experiments(args.scale, args.ids, args.output)
    except ReproError as exc:
        # Deliberate library failures (bad ranges, unknown names) exit
        # cleanly from every subcommand; genuine bugs still traceback.
        print(f"repro: {exc}", file=sys.stderr)
        return 2
