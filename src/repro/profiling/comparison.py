"""Profile-to-profile comparison metrics.

Two views the paper uses to demonstrate iteration heterogeneity and
nearby-SL similarity:

* unique-kernel overlap (Fig 5): of the union of kernel names two
  iterations launch, what fraction is common vs. exclusive to each;
* runtime-share distance (Figs 6 and 8): how far apart two iterations'
  kernel-group runtime distributions are (half L1 distance — total
  variation — so 0 means identical and 1 means disjoint).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.profiling.profiles import ExecutionProfile

__all__ = ["KernelOverlap", "kernel_overlap", "runtime_share_distance"]


@dataclass(frozen=True)
class KernelOverlap:
    """Unique-kernel breakdown between two profiles (the Fig 5 bars)."""

    common: int
    only_in_first: int
    only_in_second: int

    @property
    def union(self) -> int:
        return self.common + self.only_in_first + self.only_in_second

    @property
    def common_fraction(self) -> float:
        return self.common / self.union if self.union else 1.0

    @property
    def exclusive_fraction(self) -> float:
        """Fraction of unique kernels present in only one iteration."""
        return 1.0 - self.common_fraction


def kernel_overlap(
    first: ExecutionProfile, second: ExecutionProfile
) -> KernelOverlap:
    """Unique-kernel overlap between two profiles."""
    a = first.unique_kernel_names()
    b = second.unique_kernel_names()
    return KernelOverlap(
        common=len(a & b),
        only_in_first=len(a - b),
        only_in_second=len(b - a),
    )


def runtime_share_distance(
    first: ExecutionProfile, second: ExecutionProfile, by: str = "group"
) -> float:
    """Total-variation distance between runtime distributions.

    ``by="group"`` compares kernel-group shares (the granularity of
    Figs 6 and 8); ``by="kernel"`` compares individual kernel names.
    """
    if by == "group":
        shares_a = first.runtime_share_by_group()
        shares_b = second.runtime_share_by_group()
    elif by == "kernel":
        shares_a = first.runtime_share_by_kernel()
        shares_b = second.runtime_share_by_kernel()
    else:
        raise ValueError(f"by must be 'group' or 'kernel', got {by!r}")
    keys = set(shares_a) | set(shares_b)
    return 0.5 * sum(
        abs(shares_a.get(key, 0.0) - shares_b.get(key, 0.0)) for key in keys
    )
