"""Simulation export (paper §VII-A).

The paper positions SeqPoint as "a stepping stone to enabling
network-level simulations": once the representative iterations are
known, *those* — not the full run — can be ported to a cycle-level
simulator.  This module serialises a selection into a self-contained
JSON manifest: per SeqPoint, its weight and the complete lowered kernel
schedule (names, logical ops, shapes, launch counts, FLOPs and traffic
parameters) that a downstream simulator would replay.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.core.selection import Selection
from repro.hw.config import HardwareConfig
from repro.models.spec import IterationInputs, Model
from repro.util.serialize import dump_json, load_json

__all__ = ["export_selection", "load_manifest", "MANIFEST_SCHEMA"]

MANIFEST_SCHEMA = "repro.simulation-manifest.v1"


def _schedule_payload(
    model: Model, inputs: IterationInputs, config: HardwareConfig
) -> list[dict[str, Any]]:
    schedule = model.lower_iteration(inputs, config).merged()
    entries = []
    for invocation, count in schedule:
        work = invocation.work
        entries.append(
            {
                "kernel": invocation.name,
                "op": invocation.op,
                "group": invocation.group,
                "shape": list(invocation.shape),
                "launches": count,
                "flops": work.compute.flops,
                "work_items": work.compute.work_items,
                "issue_efficiency": work.compute.issue_efficiency,
                "read_bytes": work.traffic.read_bytes,
                "write_bytes": work.traffic.write_bytes,
                "l1_working_set": work.traffic.l1_working_set,
                "l2_working_set": work.traffic.l2_working_set,
            }
        )
    return entries


def export_selection(
    selection: Selection,
    model: Model,
    batch_size: int,
    config: HardwareConfig,
    path: str | Path,
) -> None:
    """Write a simulation manifest for ``selection`` to ``path``."""
    iterations = []
    for point in selection.points:
        inputs = IterationInputs(
            batch=batch_size, seq_len=point.seq_len, tgt_len=point.tgt_len
        )
        iterations.append(
            {
                "seq_len": point.seq_len,
                "tgt_len": point.tgt_len,
                "weight": point.weight,
                "schedule": _schedule_payload(model, inputs, config),
            }
        )
    dump_json(
        {
            "model": model.name,
            "method": selection.method,
            "batch_size": batch_size,
            "config": config.name,
            "iterations": iterations,
        },
        path,
        MANIFEST_SCHEMA,
    )


def load_manifest(path: str | Path) -> dict[str, Any]:
    """Read a manifest back (schema-checked)."""
    return load_json(path, MANIFEST_SCHEMA)
