"""Profiling-time accounting (paper §VI-F).

The paper's final claim: profiling the SeqPoints instead of a full
epoch cuts profiling time by 72x/40x (DS2/GNMT), and because each
SeqPoint is an independent iteration they can run on separate machines,
stretching the reduction to 345x/214x.  This module computes those
ratios from a trace and a selection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.selection import Selection
from repro.errors import ProjectionError
from repro.train.trace import TrainingTrace

__all__ = ["ProfilingCostModel", "ProfilingSpeedups"]


@dataclass(frozen=True)
class ProfilingSpeedups:
    """Profiling-time reductions of a selection vs. a full epoch."""

    full_epoch_s: float
    selection_serial_s: float
    selection_parallel_s: float

    @property
    def serial_speedup(self) -> float:
        return self.full_epoch_s / self.selection_serial_s

    @property
    def parallel_speedup(self) -> float:
        return self.full_epoch_s / self.selection_parallel_s


@dataclass(frozen=True)
class ProfilingCostModel:
    """Converts iteration runtimes into profiling wall time.

    ``overhead_multiplier`` is the profiler's slowdown; ``setup_s`` is
    the per-process fixed cost (profiler attach, first-kernel replay),
    paid once per machine.
    """

    overhead_multiplier: float = 8.0
    setup_s: float = 5.0

    def __post_init__(self) -> None:
        if self.overhead_multiplier < 1.0:
            raise ProjectionError("profiling cannot be faster than running")
        if self.setup_s < 0.0:
            raise ProjectionError("setup time cannot be negative")

    def epoch_profiling_s(self, trace: TrainingTrace) -> float:
        """Profiling a whole epoch, serially on one machine."""
        return self.setup_s + trace.total_time_s * self.overhead_multiplier

    def selection_profiling_s(self, selection: Selection) -> float:
        """Profiling just the selected iterations, serially."""
        iteration_time = sum(
            point.record.time_s
            for point in selection.points
        )
        return self.setup_s + iteration_time * self.overhead_multiplier

    def selection_parallel_s(self, selection: Selection) -> float:
        """Profiling the selected iterations, one machine each.

        Wall time is the slowest single iteration plus one setup.
        """
        slowest = max(point.record.time_s for point in selection.points)
        return self.setup_s + slowest * self.overhead_multiplier

    def speedups(
        self, trace: TrainingTrace, selection: Selection
    ) -> ProfilingSpeedups:
        return ProfilingSpeedups(
            full_epoch_s=self.epoch_profiling_s(trace),
            selection_serial_s=self.selection_profiling_s(selection),
            selection_parallel_s=self.selection_parallel_s(selection),
        )
