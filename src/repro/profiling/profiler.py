"""Profiler facade: run chosen iterations and capture their profiles.

Wraps a model + device pair the way a profiling session wraps a
training process.  Profiling is not free: collecting per-kernel
counters replays kernels and serialises the pipeline, inflating wall
time by ``overhead_multiplier`` (GPU profilers commonly cost 5-15x; the
paper's motivation §III calls these "often-significant overheads").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.counters import CounterSet
from repro.hw.device import GpuDevice
from repro.models.spec import IterationInputs, Model
from repro.profiling.profiles import ExecutionProfile

__all__ = ["Profiler", "IterationProfile", "DEFAULT_PROFILING_OVERHEAD"]

DEFAULT_PROFILING_OVERHEAD = 8.0


@dataclass(frozen=True)
class IterationProfile:
    """Everything the profiler captures for one iteration."""

    inputs: IterationInputs
    time_s: float
    profile: ExecutionProfile
    counters: CounterSet

    @property
    def seq_len(self) -> int:
        return self.inputs.seq_len

    def mean_counters_per_kernel(self) -> dict[str, float]:
        """Counters averaged across kernel launches (the Fig 4 view)."""
        launches = max(self.profile.total_launches, 1)
        return {
            name: value / launches
            for name, value in self.counters.as_dict().items()
        }


class Profiler:
    """Profiles iterations of one model on one device."""

    def __init__(
        self,
        model: Model,
        device: GpuDevice,
        overhead_multiplier: float = DEFAULT_PROFILING_OVERHEAD,
    ):
        if overhead_multiplier < 1.0:
            raise ValueError("profiling cannot be faster than running")
        self.model = model
        self.device = device
        self.overhead_multiplier = overhead_multiplier

    def profile_iteration(self, inputs: IterationInputs) -> IterationProfile:
        """Run one training iteration under the profiler."""
        schedule = self.model.lower_iteration(inputs, self.device.config)
        profile = ExecutionProfile()
        counters = CounterSet.zero()
        time_s = 0.0
        for invocation, count in schedule.merged():
            measurement = self.device.run(invocation.work)
            profile.record(
                name=invocation.name,
                group=invocation.group,
                time_s=measurement.time_s * count,
                flops=invocation.flops * count,
                launches=count,
            )
            counters = counters + measurement.counters.scaled(count)
            time_s += measurement.time_s * count
        return IterationProfile(
            inputs=inputs, time_s=time_s, profile=profile, counters=counters
        )

    def profile_seq_len(
        self, seq_len: int, batch: int, tgt_len: int | None = None
    ) -> IterationProfile:
        """Convenience: profile one iteration at a given sequence length."""
        return self.profile_iteration(
            IterationInputs(batch=batch, seq_len=seq_len, tgt_len=tgt_len)
        )

    def profiling_cost_s(self, profiles: list[IterationProfile]) -> float:
        """Wall time spent profiling these iterations."""
        return sum(p.time_s for p in profiles) * self.overhead_multiplier
