"""Execution profiles: what a kernel-level profiler reports.

The paper defines an iteration's *execution profile* as "the
distribution of invoked kernels and their runtimes" (§IV-A).
:class:`ExecutionProfile` is exactly that: per-kernel-name launch
counts and device time, with helpers for the share-of-runtime views the
figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TraceError

__all__ = ["KernelStat", "ExecutionProfile"]


@dataclass
class KernelStat:
    """Aggregate statistics of one kernel name within a profile."""

    name: str
    group: str
    launches: int = 0
    time_s: float = 0.0
    flops: float = 0.0

    def add(self, time_s: float, flops: float, launches: int = 1) -> None:
        self.launches += launches
        self.time_s += time_s
        self.flops += flops


@dataclass
class ExecutionProfile:
    """Kernel distribution of one iteration (or aggregate of several).

    Entries are keyed by ``(kernel name, group)`` because one compiled
    kernel can serve several logical roles (the same GEMM variant runs
    both recurrent and batched projections); unique-kernel statistics
    (Fig 5) collapse back to names, as a real profiler would see them.
    """

    kernels: dict[tuple[str, str], KernelStat] = field(default_factory=dict)

    def record(
        self, name: str, group: str, time_s: float, flops: float, launches: int = 1
    ) -> None:
        key = (name, group)
        stat = self.kernels.get(key)
        if stat is None:
            stat = KernelStat(name=name, group=group)
            self.kernels[key] = stat
        stat.add(time_s=time_s, flops=flops, launches=launches)

    @property
    def total_time_s(self) -> float:
        return sum(stat.time_s for stat in self.kernels.values())

    @property
    def total_launches(self) -> int:
        return sum(stat.launches for stat in self.kernels.values())

    def unique_kernel_names(self) -> frozenset[str]:
        return frozenset(stat.name for stat in self.kernels.values())

    def runtime_share_by_group(self) -> dict[str, float]:
        """Fraction of device time per kernel group (Fig 6 / Fig 8)."""
        total = self.total_time_s
        if total <= 0:
            raise TraceError("profile has no device time")
        shares: dict[str, float] = {}
        for stat in self.kernels.values():
            shares[stat.group] = shares.get(stat.group, 0.0) + stat.time_s / total
        return shares

    def runtime_share_by_kernel(self) -> dict[str, float]:
        """Fraction of device time per kernel name."""
        total = self.total_time_s
        if total <= 0:
            raise TraceError("profile has no device time")
        shares: dict[str, float] = {}
        for stat in self.kernels.values():
            shares[stat.name] = shares.get(stat.name, 0.0) + stat.time_s / total
        return shares

    def top_kernels(self, count: int = 10) -> list[KernelStat]:
        """The heaviest kernels by device time."""
        ranked = sorted(
            self.kernels.values(), key=lambda stat: stat.time_s, reverse=True
        )
        return ranked[:count]
