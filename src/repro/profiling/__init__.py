"""Profiling layer: execution profiles, comparisons, and cost accounting.

Stands in for the Radeon Compute Profiler workflow: run chosen
iterations under a hardware config, collect kernel-level runtimes and
counters, compare profiles across iterations (Figs 4-6, 8), and account
for how long profiling *itself* takes (§VI-F's 40-345x reductions).
"""

from repro.profiling.comparison import kernel_overlap, runtime_share_distance
from repro.profiling.cost import ProfilingCostModel, ProfilingSpeedups
from repro.profiling.profiler import IterationProfile, Profiler
from repro.profiling.profiles import ExecutionProfile, KernelStat

__all__ = [
    "kernel_overlap",
    "runtime_share_distance",
    "ProfilingCostModel",
    "ProfilingSpeedups",
    "IterationProfile",
    "Profiler",
    "ExecutionProfile",
    "KernelStat",
]
