"""Fixed-input convolutional network (the Fig 3 contrast).

CNNs consume fixed-size inputs — every image is scaled to the same
resolution — so every training iteration performs identical work.  This
model exists to demonstrate that contrast: its lowering ignores the
iteration's sequence length entirely, making ``sequence_dependent``
``False`` and its per-iteration runtime constant.
"""

from __future__ import annotations

from repro.models.layers.base import Layer
from repro.models.layers.conv2d import Conv2dLayer
from repro.models.layers.dense import DenseLayer
from repro.models.layers.losses import SoftmaxCrossEntropyLayer
from repro.models.sequential import SequentialModel
from repro.models.spec import IterationInputs

__all__ = ["CnnModel", "build_cnn"]

_IMAGE_SIZE = 224
_NUM_CLASSES = 1000


class _GlobalPoolClassifier(DenseLayer):
    """Classifier applied after global pooling: one position per image."""

    def out_steps(self, in_steps: int) -> int:
        return 1

    def forward(self, batch, steps, config):
        return super().forward(batch, 1, config)

    def backward(self, batch, steps, config):
        return super().backward(batch, 1, config)


class CnnModel(SequentialModel):
    """A ResNet-style stack at a fixed 224x224 input."""

    def __init__(self, image_size: int = _IMAGE_SIZE, classes: int = _NUM_CLASSES):
        heights = [image_size]
        convs: list[Layer] = []
        plan = [
            # (c_in, c_out, kernel, stride)
            (3, 64, 7, 2),
            (64, 128, 3, 2),
            (128, 256, 3, 2),
            (256, 256, 3, 1),
            (256, 512, 3, 2),
            (512, 512, 3, 2),
        ]
        height = image_size
        for index, (c_in, c_out, kernel, stride) in enumerate(plan):
            conv = Conv2dLayer(
                f"conv{index}", c_in=c_in, c_out=c_out, height=height,
                kernel_h=kernel, kernel_w=kernel,
                stride_h=stride, stride_w=stride,
                pad_h=kernel // 2, pad_w=kernel // 2,
            )
            convs.append(conv)
            height = conv.out_height
            heights.append(height)

        classifier = _GlobalPoolClassifier("classifier", 512, classes)
        super().__init__(
            "cnn", [*convs, classifier], SoftmaxCrossEntropyLayer("ce", classes)
        )
        self.image_size = image_size
        self.classes = classes

    def plan_fingerprint(self) -> dict:
        return {
            "family": "cnn",
            "image_size": self.image_size,
            "classes": self.classes,
        }

    def input_steps(self, inputs: IterationInputs) -> int:
        # Images are rescaled to a fixed size: the iteration's sequence
        # length never reaches the layers.
        return self.image_size

    @property
    def sequence_dependent(self) -> bool:
        return False


def build_cnn(image_size: int = _IMAGE_SIZE) -> CnnModel:
    """The fixed-input CNN used for the Fig 3 comparison."""
    return CnnModel(image_size=image_size)
