"""Convolutional sequence model (paper §VII-B's ConvS2S family).

A stack of 1-D convolutions over the time axis with gated linear units.
Like DS2's front-end — and unlike RNNs — all kernels are batched, but
the receptive-field convolutions still scale directly with sequence
length, so SeqPoint's SL-binning applies unchanged.
"""

from __future__ import annotations

from repro.models.layers.conv2d import Conv2dLayer
from repro.models.layers.dense import DenseLayer
from repro.models.layers.embedding import EmbeddingLayer
from repro.models.layers.losses import SoftmaxCrossEntropyLayer
from repro.models.sequential import SequentialModel

__all__ = ["ConvS2SModel", "build_convs2s"]


class _GluConv(Conv2dLayer):
    """1-D convolution emitting 2x channels, halved by a GLU gate.

    Modelled as a height-1 2-D convolution whose width axis is time;
    "same" padding keeps the sequence length unchanged.
    """

    def __init__(self, name: str, channels: int, kernel_width: int):
        super().__init__(
            name,
            c_in=channels,
            c_out=2 * channels,
            height=1,
            kernel_h=1,
            kernel_w=kernel_width,
            pad_w=kernel_width // 2,
        )

    def out_steps(self, in_steps: int) -> int:
        # Same padding with stride 1: GLU halves channels, not time.
        return in_steps


class ConvS2SModel(SequentialModel):
    """Embedding -> N gated conv blocks -> vocabulary classifier."""

    def __init__(
        self,
        vocab: int = 30_000,
        hidden: int = 512,
        layers: int = 8,
        kernel_width: int = 5,
    ):
        stack = [EmbeddingLayer("embedding", vocab=vocab, hidden=hidden)]
        for index in range(layers):
            stack.append(_GluConv(f"conv{index}", hidden, kernel_width))
        stack.append(DenseLayer("classifier", hidden, vocab))
        super().__init__(
            "convs2s", stack, SoftmaxCrossEntropyLayer("ce", vocab)
        )
        self.vocab = vocab
        self.hidden = hidden
        # ``self.layers`` is the SequentialModel layer stack.
        self.num_layers = layers
        self.kernel_width = kernel_width

    def plan_fingerprint(self) -> dict:
        return {
            "family": "convs2s",
            "vocab": self.vocab,
            "hidden": self.hidden,
            "layers": self.num_layers,
            "kernel_width": self.kernel_width,
        }


def build_convs2s(
    vocab: int = 30_000, hidden: int = 512, layers: int = 8
) -> ConvS2SModel:
    """A ConvS2S-style gated convolutional sequence model."""
    return ConvS2SModel(vocab=vocab, hidden=hidden, layers=layers)
