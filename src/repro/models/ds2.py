"""Baidu's DeepSpeech2 model (paper §VI-B).

Layers as the paper lists them: two convolutional layers, one
batch-normalization layer, five bidirectional GRU layers, and one
fully-connected layer, trained with CTC.  Dimensions follow the MLPerf
reference: 161 spectrogram frequency bins, GRU hidden 800 (so the
bidirectional feature width is 1600 — Table I's ``K``), and a
29-character alphabet (Table I's ``M=29``).

The convolutional front-end strides 2 along time, so an utterance with
``SL`` spectrogram frames reaches the GRUs as ``(SL-1)//2 + 1`` steps —
SL 804 lowers the classifier GEMM with ``N = 64 * 402 = 25728``,
matching Table I exactly.
"""

from __future__ import annotations

from repro.models.layers.batchnorm import BatchNormLayer
from repro.models.layers.conv2d import Conv2dLayer
from repro.models.layers.dense import DenseLayer
from repro.models.layers.losses import CTCLossLayer
from repro.models.layers.recurrent import GRULayer
from repro.models.sequential import SequentialModel

__all__ = ["Ds2Model", "build_ds2", "DS2_ALPHABET", "DS2_HIDDEN", "DS2_FREQ_BINS"]

DS2_ALPHABET = 29
DS2_HIDDEN = 800
DS2_FREQ_BINS = 161
_GRU_LAYERS = 5
_CONV1_CHANNELS = 32
_CONV2_CHANNELS = 32


class Ds2Model(SequentialModel):
    """DeepSpeech2 as a sequential stack."""

    def __init__(
        self,
        alphabet: int = DS2_ALPHABET,
        hidden: int = DS2_HIDDEN,
        freq_bins: int = DS2_FREQ_BINS,
        gru_layers: int = _GRU_LAYERS,
    ):
        conv1 = Conv2dLayer(
            "conv1", c_in=1, c_out=_CONV1_CHANNELS, height=freq_bins,
            kernel_h=41, kernel_w=11, stride_h=2, stride_w=2,
            pad_h=20, pad_w=5,
        )
        bn = BatchNormLayer(
            "bn1", channels=_CONV1_CHANNELS, spatial_per_step=conv1.out_height
        )
        conv2 = Conv2dLayer(
            "conv2", c_in=_CONV1_CHANNELS, c_out=_CONV2_CHANNELS,
            height=conv1.out_height,
            kernel_h=21, kernel_w=11, stride_h=2, stride_w=1,
            pad_h=10, pad_w=5,
        )
        gru_input = _CONV2_CHANNELS * conv2.out_height

        layers = [conv1, bn, conv2]
        features = gru_input
        for index in range(gru_layers):
            layers.append(
                GRULayer(f"gru{index}", features, hidden, bidirectional=True)
            )
            features = 2 * hidden
        layers.append(DenseLayer("classifier", features, alphabet))

        super().__init__("ds2", layers, CTCLossLayer("ctc", alphabet))
        self.alphabet = alphabet
        self.hidden = hidden
        self.freq_bins = freq_bins
        self.gru_layers = gru_layers

    def plan_fingerprint(self) -> dict:
        return {
            "family": "ds2",
            "alphabet": self.alphabet,
            "hidden": self.hidden,
            "freq_bins": self.freq_bins,
            "gru_layers": self.gru_layers,
        }


def build_ds2(
    alphabet: int = DS2_ALPHABET, hidden: int = DS2_HIDDEN
) -> Ds2Model:
    """The paper's DS2 configuration."""
    return Ds2Model(alphabet=alphabet, hidden=hidden)
