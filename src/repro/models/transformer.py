"""Transformer encoder model (paper §VII-B).

A BERT-base-shaped encoder used by the generality experiments: the
paper argues SeqPoint extends to "attention (e.g., Transformer, BERT)"
because their work, too, is dictated by input sequence length — here
partly quadratically.
"""

from __future__ import annotations

from repro.models.layers.dense import DenseLayer
from repro.models.layers.embedding import EmbeddingLayer
from repro.models.layers.losses import SoftmaxCrossEntropyLayer
from repro.models.layers.transformer import TransformerEncoderLayer
from repro.models.sequential import SequentialModel

__all__ = ["TransformerModel", "build_transformer"]


class TransformerModel(SequentialModel):
    """Embedding -> N encoder layers -> vocabulary classifier (MLM-style)."""

    def __init__(
        self,
        vocab: int = 30_522,
        hidden: int = 768,
        layers: int = 12,
        heads: int = 12,
    ):
        stack = [EmbeddingLayer("embedding", vocab=vocab, hidden=hidden)]
        for index in range(layers):
            stack.append(
                TransformerEncoderLayer(f"encoder{index}", hidden, heads)
            )
        stack.append(DenseLayer("mlm_head", hidden, vocab))
        super().__init__(
            "transformer", stack, SoftmaxCrossEntropyLayer("mlm_ce", vocab)
        )
        self.vocab = vocab
        self.hidden = hidden
        # ``self.layers`` is the SequentialModel layer stack.
        self.num_layers = layers
        self.heads = heads

    def plan_fingerprint(self) -> dict:
        return {
            "family": "transformer",
            "vocab": self.vocab,
            "hidden": self.hidden,
            "layers": self.num_layers,
            "heads": self.heads,
        }


def build_transformer(
    vocab: int = 30_522, hidden: int = 768, layers: int = 12, heads: int = 12
) -> TransformerModel:
    """A BERT-base-shaped encoder."""
    return TransformerModel(vocab=vocab, hidden=hidden, layers=layers, heads=heads)
