"""Model abstraction and per-iteration input description.

A :class:`Model` turns :class:`IterationInputs` (batch size plus the
padded sequence length of the batch) into a
:class:`~repro.models.schedule.KernelSchedule` for a full training
iteration (forward, backward, optimizer) or for a forward-only
evaluation pass.  Lowering depends *only* on the inputs and hardware
config — the paper's Key Observation 4 (all iterations at a given SL
behave the same) is a structural property here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from itertools import count

from repro.errors import LoweringError
from repro.hw.config import HardwareConfig
from repro.models.schedule import KernelSchedule

__all__ = ["IterationInputs", "Model"]

#: Monotonic per-instance tokens for plan-cache keys.  Unlike ``id()``,
#: a token is never reused after garbage collection, so a stale plan
#: can never be served to a new model that happens to land on a
#: recycled address.
_PLAN_TOKENS = count()


@dataclass(frozen=True)
class IterationInputs:
    """Inputs of one training iteration after batching and padding.

    ``seq_len`` is the padded sequence length the whole batch runs at
    (most SQNN frameworks pad every sample to the batch maximum — paper
    §IV-B1); it is the quantity SeqPoint bins.  For sequence-to-sequence
    models ``tgt_len`` is the decoder-side length; models that have no
    decoder ignore it.
    """

    batch: int
    seq_len: int
    tgt_len: int | None = None

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise LoweringError(f"batch must be positive, got {self.batch}")
        if self.seq_len <= 0:
            raise LoweringError(f"seq_len must be positive, got {self.seq_len}")
        if self.tgt_len is not None and self.tgt_len <= 0:
            raise LoweringError(f"tgt_len must be positive, got {self.tgt_len}")


class Model(ABC):
    """A trainable network that lowers iterations to kernel schedules."""

    def __init__(self, name: str):
        self.name = name
        self._plan_token = next(_PLAN_TOKENS)

    def __getstate__(self):
        # Tokens are only unique within one process: an unpickled model
        # must draw a fresh one, or its plan_key() could collide with a
        # locally constructed model in the receiving process and be
        # served that model's compiled plans.
        state = dict(self.__dict__)
        state.pop("_plan_token", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._plan_token = next(_PLAN_TOKENS)

    @abstractmethod
    def lower_iteration(
        self, inputs: IterationInputs, config: HardwareConfig
    ) -> KernelSchedule:
        """Kernel schedule of one full training iteration."""

    @abstractmethod
    def lower_forward(
        self, inputs: IterationInputs, config: HardwareConfig
    ) -> KernelSchedule:
        """Kernel schedule of a forward-only (evaluation) pass."""

    @abstractmethod
    def param_count(self) -> int:
        """Total trainable parameters."""

    @property
    def sequence_dependent(self) -> bool:
        """Whether iteration work varies with sequence length.

        CNNs override this to ``False`` — the Fig 3 distinction.
        """
        return True

    def plan_key(self) -> tuple:
        """Identity for the process-wide plan cache.

        Two models with equal keys must lower identically for every
        ``(inputs, config)`` pair.  The default is a per-instance token
        — always correct, and plans still deduplicate everywhere it
        matters because the analysis engine resolves one model instance
        per scenario and shares it across configs, seeds, and sweep
        points.  A subclass may override this with a *structural* tuple
        (every hyperparameter lowering depends on) to additionally
        share plans across separately constructed but identical models;
        hashing a subset of the hyperparameters (e.g. a parameter count
        alone, which misses head counts and similar shape-only knobs)
        would silently serve one model's plans to another.
        """
        return (
            type(self).__module__,
            type(self).__qualname__,
            self.name,
            self._plan_token,
        )

    def plan_fingerprint(self) -> dict | None:
        """Structural identity for the cross-process plan store.

        Unlike :meth:`plan_key` (which may lean on a per-process token),
        a fingerprint must be stable across processes and machines: a
        JSON-serialisable mapping capturing *every* hyperparameter that
        lowering depends on, discriminated by model family.  Two models
        with equal fingerprints must lower identically for every
        ``(inputs, config)`` pair.  The default ``None`` opts the model
        out of the on-disk store (plans still cache per-process) —
        safer than a guessed subset of hyperparameters, which would
        silently serve one model's plans to another.
        """
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
