"""Model abstraction and per-iteration input description.

A :class:`Model` turns :class:`IterationInputs` (batch size plus the
padded sequence length of the batch) into a
:class:`~repro.models.schedule.KernelSchedule` for a full training
iteration (forward, backward, optimizer) or for a forward-only
evaluation pass.  Lowering depends *only* on the inputs and hardware
config — the paper's Key Observation 4 (all iterations at a given SL
behave the same) is a structural property here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import LoweringError
from repro.hw.config import HardwareConfig
from repro.models.schedule import KernelSchedule

__all__ = ["IterationInputs", "Model"]


@dataclass(frozen=True)
class IterationInputs:
    """Inputs of one training iteration after batching and padding.

    ``seq_len`` is the padded sequence length the whole batch runs at
    (most SQNN frameworks pad every sample to the batch maximum — paper
    §IV-B1); it is the quantity SeqPoint bins.  For sequence-to-sequence
    models ``tgt_len`` is the decoder-side length; models that have no
    decoder ignore it.
    """

    batch: int
    seq_len: int
    tgt_len: int | None = None

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise LoweringError(f"batch must be positive, got {self.batch}")
        if self.seq_len <= 0:
            raise LoweringError(f"seq_len must be positive, got {self.seq_len}")
        if self.tgt_len is not None and self.tgt_len <= 0:
            raise LoweringError(f"tgt_len must be positive, got {self.tgt_len}")


class Model(ABC):
    """A trainable network that lowers iterations to kernel schedules."""

    def __init__(self, name: str):
        self.name = name

    @abstractmethod
    def lower_iteration(
        self, inputs: IterationInputs, config: HardwareConfig
    ) -> KernelSchedule:
        """Kernel schedule of one full training iteration."""

    @abstractmethod
    def lower_forward(
        self, inputs: IterationInputs, config: HardwareConfig
    ) -> KernelSchedule:
        """Kernel schedule of a forward-only (evaluation) pass."""

    @abstractmethod
    def param_count(self) -> int:
        """Total trainable parameters."""

    @property
    def sequence_dependent(self) -> bool:
        """Whether iteration work varies with sequence length.

        CNNs override this to ``False`` — the Fig 3 distinction.
        """
        return True

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
