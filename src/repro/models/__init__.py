"""Network models and their lowering to kernel schedules.

The three networks the paper uses:

* :func:`~repro.models.gnmt.build_gnmt` — Google's Neural Machine
  Translation: encoder of seven unidirectional plus one bidirectional
  LSTM layers, eight-layer unidirectional LSTM decoder, attention, and
  a fully connected classifier (paper §VI-B).
* :func:`~repro.models.ds2.build_ds2` — DeepSpeech2: two convolutional
  layers, five bidirectional GRU layers, one batch-normalization and
  one fully-connected layer.
* :func:`~repro.models.cnn.build_cnn` — a fixed-input convolutional
  network used only for the Fig 3 contrast (homogeneous iterations).
"""

from repro.models.cnn import build_cnn
from repro.models.convs2s import build_convs2s
from repro.models.ds2 import build_ds2
from repro.models.gnmt import build_gnmt
from repro.models.plan import PLAN_CACHE, PlanCache, SchedulePlan, compile_plan
from repro.models.schedule import KernelSchedule
from repro.models.sequential import SequentialModel
from repro.models.spec import IterationInputs, Model
from repro.models.transformer import build_transformer

__all__ = [
    "build_cnn",
    "build_convs2s",
    "build_ds2",
    "build_gnmt",
    "build_transformer",
    "KernelSchedule",
    "SchedulePlan",
    "compile_plan",
    "PlanCache",
    "PLAN_CACHE",
    "SequentialModel",
    "IterationInputs",
    "Model",
]
