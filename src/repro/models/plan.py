"""Columnar kernel IR: the compiled, batchable form of a schedule.

A :class:`~repro.models.schedule.KernelSchedule` is what lowering
produces — an ordered list of per-invocation Python dataclasses.  That
shape is convenient to build but expensive to *consume*: timing it
means a Python loop over entries with per-entry hashing, dataclass
construction, and counter arithmetic.  A :class:`SchedulePlan` is the
same information compiled once into parallel numpy columns:

* one row per **merged** entry (identical invocations coalesced with
  summed counts, in first-appearance order — exactly
  :meth:`KernelSchedule.merged`), carrying the ten
  :class:`~repro.hw.timing.WorkBatch` work columns plus launch counts;
* interned string tables for kernel-group and kernel-variant names,
  with integer id columns (``group_id``/``name_id``) mapping rows onto
  them;
* the GEMM problem dims in original launch order (autotune accounting
  follows launch order, not merged order).

Plans are frozen; the batched executor times one with a single
:meth:`~repro.hw.device.GpuDevice.run_batch` call and reduces with the
same left-to-right accumulation the scalar reference loop performs, so
results are bit-identical (asserted in tests/test_plan_equivalence.py).

:class:`PlanCache` is the process-wide store keyed by
``(model plan key, pass kind, batch, seq_len, tgt_len, hardware
config)``.  Lowering is deterministic in exactly those inputs (the
paper's Key Observation 4 as a structural property), so every executor,
simulator, and sweep worker in the process shares one compiled plan per
unique shape instead of re-lowering it.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from pathlib import Path
from threading import Lock
from typing import Any

import numpy as np

from repro.hw.timing import WorkBatch
from repro.models.schedule import KernelSchedule
from repro.util.filelock import file_lock
from repro.util.npt import ColumnStore, write_columns

__all__ = [
    "SchedulePlan",
    "compile_plan",
    "PlanCache",
    "PlanStore",
    "PLAN_CACHE",
    "PLAN_SCHEMA",
]

PLAN_SCHEMA = "repro.schedule-plan.v1"

#: WorkBatch columns in serialisation order.
_WORK_COLUMNS = (
    "flops",
    "work_items",
    "issue_efficiency",
    "workgroup_size",
    "read_bytes",
    "write_bytes",
    "l1_reuse_fraction",
    "l1_working_set",
    "l2_reuse_fraction",
    "l2_working_set",
)


@dataclass(frozen=True, eq=False)
class SchedulePlan:
    """Frozen columnar form of one lowered pass.

    Compares by identity (``eq=False``): the :data:`PLAN_CACHE` hands
    out one object per unique plan, which also lets the device memoise
    batch measurements by plan identity.
    """

    work: WorkBatch
    #: Launches per row (the merged entry's repeat count).
    counts: np.ndarray
    #: Row -> index into :attr:`groups` / :attr:`names`.
    group_id: np.ndarray
    name_id: np.ndarray
    #: Interned tables, in first-appearance order over merged entries.
    groups: tuple[str, ...]
    names: tuple[str, ...]
    #: GEMM problem dims in launch order (unmerged), for autotune cost.
    gemm_shapes: tuple[tuple[int, int, int], ...]

    def __len__(self) -> int:
        return int(self.counts.size)

    @property
    def launch_count(self) -> int:
        """Total kernel launches including per-step repetitions."""
        return int(self.counts.sum())

    @property
    def total_flops(self) -> float:
        return float((self.work.flops * self.counts).sum())


def compile_plan(schedule: KernelSchedule) -> SchedulePlan:
    """Compile a lowered schedule into its frozen columnar plan.

    Merging runs in two passes: a vectorized pre-merge keyed on object
    *identity* (kernel constructors are memoised, so repeated launches
    of one kernel are almost always the same object — no hashing of
    nested dataclasses, and the per-entry work is numpy grouping), then
    an equality merge over the few surviving distinct objects.
    First-appearance order is preserved through both and integer counts
    add associatively, so the result coalesces exactly like
    :meth:`KernelSchedule.merged`.
    """
    entries = list(schedule)
    n = len(entries)
    invocations = [entry[0] for entry in entries]
    id_column = np.fromiter(map(id, invocations), np.int64, n)
    count_column = np.fromiter((entry[1] for entry in entries), np.int64, n)

    # Group by identity, ranked by first appearance (the dedupe_shapes
    # idiom from repro.train.frame).
    _, first_index, inverse = np.unique(
        id_column, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1)
    appearance = np.argsort(first_index, kind="stable")
    rank = np.empty(appearance.size, dtype=np.int64)
    rank[appearance] = np.arange(appearance.size)
    object_row = rank[inverse]
    # Integer-valued float sums below 2**53 are exact.
    object_counts = np.bincount(
        object_row, weights=count_column, minlength=appearance.size
    ).astype(np.int64)
    unique_invocations = [
        invocations[i] for i in first_index[appearance].tolist()
    ]

    # Equality merge across distinct-but-equal objects (rare).
    totals: dict = {}
    rows: list = []
    row_counts: list[int] = []
    for position, invocation in enumerate(unique_invocations):
        row = totals.get(invocation)
        if row is None:
            totals[invocation] = len(rows)
            rows.append(invocation)
            row_counts.append(int(object_counts[position]))
        else:
            row_counts[row] += int(object_counts[position])

    # GEMM dims in launch order: a gemm invocation's shape IS (m, n, k).
    is_gemm = np.fromiter(
        (inv.op == "gemm" for inv in unique_invocations),
        np.bool_,
        len(unique_invocations),
    )
    shapes = [inv.shape for inv in unique_invocations]
    gemm_entries = np.flatnonzero(is_gemm[object_row])
    gemm_shapes = tuple(
        shapes[position] for position in object_row[gemm_entries].tolist()
    )

    group_table: dict[str, int] = {}
    name_table: dict[str, int] = {}
    group_id = np.empty(len(rows), dtype=np.int64)
    name_id = np.empty(len(rows), dtype=np.int64)
    for row, invocation in enumerate(rows):
        group_id[row] = group_table.setdefault(
            invocation.group, len(group_table)
        )
        name_id[row] = name_table.setdefault(invocation.name, len(name_table))

    return SchedulePlan(
        work=WorkBatch.from_profiles([inv.work for inv in rows]),
        counts=np.array(row_counts, dtype=np.int64),
        group_id=group_id,
        name_id=name_id,
        groups=tuple(group_table),
        names=tuple(name_table),
        gemm_shapes=gemm_shapes,
    )


def _plan_columns(
    plan: SchedulePlan,
) -> tuple[dict[str, Any], list[tuple[str, np.ndarray]]]:
    """The (meta, columns) serialisation of one plan."""
    meta = {"groups": list(plan.groups), "names": list(plan.names)}
    columns: list[tuple[str, np.ndarray]] = [
        (name, getattr(plan.work, name)) for name in _WORK_COLUMNS
    ]
    columns.append(("counts", plan.counts))
    columns.append(("group_id", plan.group_id))
    columns.append(("name_id", plan.name_id))
    columns.append(
        (
            "gemm_shapes",
            np.asarray(plan.gemm_shapes, dtype=np.int64).reshape(
                len(plan.gemm_shapes), 3
            ),
        )
    )
    return meta, columns


def _plan_from_store(store: ColumnStore) -> SchedulePlan:
    """Rebuild a plan over a container's zero-copy column views.

    WorkBatch columns come back as contiguous read-only views into the
    mapping; the timing engine only reads them, so mmap-backed plans
    time bit-identically to freshly compiled ones.
    """
    return SchedulePlan(
        work=WorkBatch(**{name: store.column(name) for name in _WORK_COLUMNS}),
        counts=store.column("counts"),
        group_id=store.column("group_id"),
        name_id=store.column("name_id"),
        groups=tuple(store.meta["groups"]),
        names=tuple(store.meta["names"]),
        gemm_shapes=tuple(
            tuple(row) for row in store.column("gemm_shapes").tolist()
        ),
    )


class PlanStore:
    """Content-addressed on-disk store of compiled plans.

    Keys are stable hashes of structural plan fingerprints (model
    hyperparameters + pass kind + shape + hardware config — see
    :meth:`~repro.models.spec.Model.plan_fingerprint`), so *any*
    process on the machine that needs the same lowering finds the
    artefact instead of recompiling.  Writes follow the trace cache's
    protocol: a per-key advisory file lock for the duration of a miss
    plus atomic temp-file + rename publication, so racing spawn workers
    lower each unique plan exactly once machine-wide.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self._lock = Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(fingerprint: Mapping[str, Any]) -> str:
        """Stable content hash of a plan fingerprint mapping."""
        canonical = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.npt"

    def get_or_compute(
        self,
        fingerprint: Mapping[str, Any],
        build: Callable[[], SchedulePlan],
    ) -> SchedulePlan:
        """The stored plan for ``fingerprint``, building it on a miss.

        The whole miss runs under the per-key file lock, so concurrent
        processes racing on one fingerprint produce exactly one
        lowering — the loser blocks, then loads the winner's artefact.
        """
        key = self.key_for(fingerprint)
        path = self._path(key)
        with file_lock(self.directory, key):
            if path.exists():
                with self._lock:
                    self.hits += 1
                return _plan_from_store(ColumnStore(path))
            plan = build()
            meta, columns = _plan_columns(plan)
            staging = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            write_columns(staging, PLAN_SCHEMA, meta, columns)
            os.replace(staging, path)
            with self._lock:
                self.misses += 1
            return plan

    def stats(self) -> dict[str, int]:
        entries = 0
        if self.directory.is_dir():
            entries = sum(1 for _ in self.directory.glob("*.npt"))
        with self._lock:
            return {"entries": entries, "hits": self.hits, "misses": self.misses}

    def __repr__(self) -> str:
        return f"PlanStore({str(self.directory)!r})"


class PlanCache:
    """Process-wide store of compiled plans, with hit/miss counters.

    Thread-safe; compilation happens under the lock so every caller of
    one key observes the *same* plan object (identity matters — the
    device's batch-measurement memo keys on it).  Compiles are pure and
    GIL-bound, so holding the lock costs no parallelism.

    A :class:`PlanStore` may be attached, in which case memory misses
    whose caller supplies a structural fingerprint fall through to the
    on-disk tier before compiling — that is what lets a pool of spawn
    workers share lowerings machine-wide.
    """

    def __init__(self) -> None:
        self._plans: dict[tuple, SchedulePlan] = {}
        self._lock = Lock()
        self._hits = 0
        self._misses = 0
        self._store: PlanStore | None = None

    def attach_store(self, store: PlanStore | None) -> PlanStore | None:
        """Attach (or detach with ``None``) the on-disk tier.

        Returns the previously attached store so callers scoping a
        store to one operation can restore the prior state in a
        ``finally`` block.
        """
        with self._lock:
            previous = self._store
            self._store = store
            return previous

    def get_or_compile(
        self,
        key: tuple,
        build: Callable[[], SchedulePlan],
        fingerprint: Mapping[str, Any] | None = None,
    ) -> SchedulePlan:
        """The plan under ``key``, compiling (and storing) it on a miss.

        When a store is attached and ``fingerprint`` is not ``None``,
        the miss path delegates to the store, which loads a previously
        persisted lowering or compiles-and-publishes exactly once
        across processes.
        """
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._hits += 1
                return plan
            self._misses += 1
            store = self._store
            if store is not None and fingerprint is not None:
                plan = store.get_or_compute(fingerprint, build)
            else:
                plan = build()
            self._plans[key] = plan
            return plan

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._plans),
                "hits": self._hits,
                "misses": self._misses,
            }

    def clear(self) -> None:
        """Drop all plans and counters (for cold benchmarking)."""
        with self._lock:
            self._plans.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


#: The process-wide cache every executor and sweep worker shares.
PLAN_CACHE = PlanCache()
