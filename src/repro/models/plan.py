"""Columnar kernel IR: the compiled, batchable form of a schedule.

A :class:`~repro.models.schedule.KernelSchedule` is what lowering
produces — an ordered list of per-invocation Python dataclasses.  That
shape is convenient to build but expensive to *consume*: timing it
means a Python loop over entries with per-entry hashing, dataclass
construction, and counter arithmetic.  A :class:`SchedulePlan` is the
same information compiled once into parallel numpy columns:

* one row per **merged** entry (identical invocations coalesced with
  summed counts, in first-appearance order — exactly
  :meth:`KernelSchedule.merged`), carrying the ten
  :class:`~repro.hw.timing.WorkBatch` work columns plus launch counts;
* interned string tables for kernel-group and kernel-variant names,
  with integer id columns (``group_id``/``name_id``) mapping rows onto
  them;
* the GEMM problem dims in original launch order (autotune accounting
  follows launch order, not merged order).

Plans are frozen; the batched executor times one with a single
:meth:`~repro.hw.device.GpuDevice.run_batch` call and reduces with the
same left-to-right accumulation the scalar reference loop performs, so
results are bit-identical (asserted in tests/test_plan_equivalence.py).

:class:`PlanCache` is the process-wide store keyed by
``(model plan key, pass kind, batch, seq_len, tgt_len, hardware
config)``.  Lowering is deterministic in exactly those inputs (the
paper's Key Observation 4 as a structural property), so every executor,
simulator, and sweep worker in the process shares one compiled plan per
unique shape instead of re-lowering it.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from threading import Lock

import numpy as np

from repro.hw.timing import WorkBatch
from repro.models.schedule import KernelSchedule

__all__ = ["SchedulePlan", "compile_plan", "PlanCache", "PLAN_CACHE"]


@dataclass(frozen=True, eq=False)
class SchedulePlan:
    """Frozen columnar form of one lowered pass.

    Compares by identity (``eq=False``): the :data:`PLAN_CACHE` hands
    out one object per unique plan, which also lets the device memoise
    batch measurements by plan identity.
    """

    work: WorkBatch
    #: Launches per row (the merged entry's repeat count).
    counts: np.ndarray
    #: Row -> index into :attr:`groups` / :attr:`names`.
    group_id: np.ndarray
    name_id: np.ndarray
    #: Interned tables, in first-appearance order over merged entries.
    groups: tuple[str, ...]
    names: tuple[str, ...]
    #: GEMM problem dims in launch order (unmerged), for autotune cost.
    gemm_shapes: tuple[tuple[int, int, int], ...]

    def __len__(self) -> int:
        return int(self.counts.size)

    @property
    def launch_count(self) -> int:
        """Total kernel launches including per-step repetitions."""
        return int(self.counts.sum())

    @property
    def total_flops(self) -> float:
        return float((self.work.flops * self.counts).sum())


def compile_plan(schedule: KernelSchedule) -> SchedulePlan:
    """Compile a lowered schedule into its frozen columnar plan.

    Merging runs in two passes: a vectorized pre-merge keyed on object
    *identity* (kernel constructors are memoised, so repeated launches
    of one kernel are almost always the same object — no hashing of
    nested dataclasses, and the per-entry work is numpy grouping), then
    an equality merge over the few surviving distinct objects.
    First-appearance order is preserved through both and integer counts
    add associatively, so the result coalesces exactly like
    :meth:`KernelSchedule.merged`.
    """
    entries = list(schedule)
    n = len(entries)
    invocations = [entry[0] for entry in entries]
    id_column = np.fromiter(map(id, invocations), np.int64, n)
    count_column = np.fromiter((entry[1] for entry in entries), np.int64, n)

    # Group by identity, ranked by first appearance (the dedupe_shapes
    # idiom from repro.train.frame).
    _, first_index, inverse = np.unique(
        id_column, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1)
    appearance = np.argsort(first_index, kind="stable")
    rank = np.empty(appearance.size, dtype=np.int64)
    rank[appearance] = np.arange(appearance.size)
    object_row = rank[inverse]
    # Integer-valued float sums below 2**53 are exact.
    object_counts = np.bincount(
        object_row, weights=count_column, minlength=appearance.size
    ).astype(np.int64)
    unique_invocations = [
        invocations[i] for i in first_index[appearance].tolist()
    ]

    # Equality merge across distinct-but-equal objects (rare).
    totals: dict = {}
    rows: list = []
    row_counts: list[int] = []
    for position, invocation in enumerate(unique_invocations):
        row = totals.get(invocation)
        if row is None:
            totals[invocation] = len(rows)
            rows.append(invocation)
            row_counts.append(int(object_counts[position]))
        else:
            row_counts[row] += int(object_counts[position])

    # GEMM dims in launch order: a gemm invocation's shape IS (m, n, k).
    is_gemm = np.fromiter(
        (inv.op == "gemm" for inv in unique_invocations),
        np.bool_,
        len(unique_invocations),
    )
    shapes = [inv.shape for inv in unique_invocations]
    gemm_entries = np.flatnonzero(is_gemm[object_row])
    gemm_shapes = tuple(
        shapes[position] for position in object_row[gemm_entries].tolist()
    )

    group_table: dict[str, int] = {}
    name_table: dict[str, int] = {}
    group_id = np.empty(len(rows), dtype=np.int64)
    name_id = np.empty(len(rows), dtype=np.int64)
    for row, invocation in enumerate(rows):
        group_id[row] = group_table.setdefault(
            invocation.group, len(group_table)
        )
        name_id[row] = name_table.setdefault(invocation.name, len(name_table))

    return SchedulePlan(
        work=WorkBatch.from_profiles([inv.work for inv in rows]),
        counts=np.array(row_counts, dtype=np.int64),
        group_id=group_id,
        name_id=name_id,
        groups=tuple(group_table),
        names=tuple(name_table),
        gemm_shapes=gemm_shapes,
    )


class PlanCache:
    """Process-wide store of compiled plans, with hit/miss counters.

    Thread-safe; compilation happens under the lock so every caller of
    one key observes the *same* plan object (identity matters — the
    device's batch-measurement memo keys on it).  Compiles are pure and
    GIL-bound, so holding the lock costs no parallelism.
    """

    def __init__(self) -> None:
        self._plans: dict[tuple, SchedulePlan] = {}
        self._lock = Lock()
        self._hits = 0
        self._misses = 0

    def get_or_compile(
        self, key: tuple, build: Callable[[], SchedulePlan]
    ) -> SchedulePlan:
        """The plan under ``key``, compiling (and storing) it on a miss."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._hits += 1
                return plan
            self._misses += 1
            plan = build()
            self._plans[key] = plan
            return plan

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._plans),
                "hits": self._hits,
                "misses": self._misses,
            }

    def clear(self) -> None:
        """Drop all plans and counters (for cold benchmarking)."""
        with self._lock:
            self._plans.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


#: The process-wide cache every executor and sweep worker shares.
PLAN_CACHE = PlanCache()
