"""Recurrent layers: LSTM and GRU, unidirectional or bidirectional.

The lowering follows the standard library implementation (cuDNN/MIOpen
RNN): the *input* projection for all time steps is batched into one
large GEMM (its size grows with SL — "GEMM-1" in the paper's kernel
distribution figures), while the *recurrent* projection and the gate
fusion launch once per step (their count grows with SL — "GEMM-2" and
the scalar-op group).  This split is precisely the mechanism behind Key
Observations 1-3: SL changes both the proportion of kernel groups and
the sizes of individual kernels.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hw.config import HardwareConfig
from repro.kernels.base import KernelInvocation
from repro.kernels.elementwise import elementwise
from repro.kernels.gemm import gemm
from repro.kernels.memops import copy_transform
from repro.kernels.reduction import reduction
from repro.models.layers.base import KernelStream, Layer

__all__ = ["RecurrentLayer", "LSTMLayer", "GRULayer"]


class RecurrentLayer(Layer):
    """Shared lowering for gated recurrent cells.

    Subclasses fix ``gates`` (4 for LSTM, 3 for GRU) and the gate-math
    cost.  ``bidirectional`` doubles every kernel (two directions) and
    adds a concat of the two output halves.
    """

    #: Gate matrices per cell (LSTM: i, f, g, o; GRU: r, z, n).
    gates: int
    #: FP32 operands read/written and flops per element of gate fusion.
    gate_reads: int
    gate_writes: int
    gate_flops: float

    def __init__(
        self, name: str, in_features: int, hidden: int, bidirectional: bool = False
    ):
        super().__init__(name)
        if in_features <= 0 or hidden <= 0:
            raise ConfigurationError(
                f"{name}: features must be positive, got {in_features}/{hidden}"
            )
        self.in_features = in_features
        self.hidden = hidden
        self.bidirectional = bidirectional

    @property
    def directions(self) -> int:
        return 2 if self.bidirectional else 1

    @property
    def out_features(self) -> int:
        return self.hidden * self.directions

    def _gate_fusion(self, batch: int, op: str) -> KernelInvocation:
        return elementwise(
            op, batch * self.hidden,
            reads_per_element=self.gate_reads,
            writes_per_element=self.gate_writes,
            flops_per_element=self.gate_flops,
        )

    def forward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        gate_width = self.gates * self.hidden
        for _ in range(self.directions):
            # Batched input projection: one GEMM over every time step.
            yield gemm(
                batch * steps, gate_width, self.in_features, config,
                group="GEMM-1",
            ), 1
            # Recurrent projection and gate math: once per step.
            yield gemm(batch, gate_width, self.hidden, config, group="GEMM-2"), steps
            yield self._gate_fusion(batch, f"{self.cell_kind}_gates"), steps
        if self.bidirectional:
            yield copy_transform(
                "concat", batch * steps * self.out_features
            ), 1

    def backward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        gate_width = self.gates * self.hidden
        positions = batch * steps
        if self.bidirectional:
            yield copy_transform("slice", positions * self.out_features), 1
        for _ in range(self.directions):
            # Per-step: gate gradients, then gradient through recurrence.
            yield self._gate_fusion(batch, f"{self.cell_kind}_gates_grad"), steps
            yield gemm(batch, self.hidden, gate_width, config, group="GEMM-2"), steps
            # Batched: input dgrad plus the two weight gradients.
            yield gemm(
                positions, self.in_features, gate_width, config, group="GEMM-1"
            ), 1
            yield gemm(
                self.in_features, gate_width, positions, config, group="GEMM-1"
            ), 1
            yield gemm(
                self.hidden, gate_width, positions, config, group="GEMM-1"
            ), 1
            yield reduction("bias_grad", gate_width, positions), 1

    def param_count(self) -> int:
        per_direction = self.gates * self.hidden * (
            self.in_features + self.hidden + 1
        )
        return per_direction * self.directions

    @property
    def cell_kind(self) -> str:
        raise NotImplementedError


class LSTMLayer(RecurrentLayer):
    """Long Short-Term Memory layer."""

    gates = 4
    # Gate fusion reads 4+4 pre-activations plus previous cell state,
    # writes new cell and hidden states; sigmoid/tanh dominate flops.
    gate_reads = 9
    gate_writes = 2
    gate_flops = 30.0

    @property
    def cell_kind(self) -> str:
        return "lstm"


class GRULayer(RecurrentLayer):
    """Gated Recurrent Unit layer."""

    gates = 3
    gate_reads = 7
    gate_writes = 1
    gate_flops = 24.0

    @property
    def cell_kind(self) -> str:
        return "gru"
