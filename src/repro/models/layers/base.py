"""Layer abstraction.

A layer knows its static dimensions (constructor) and lowers one
iteration's worth of work given the dynamic dimensions (batch size and
time steps).  Lowering yields ``(invocation, count)`` pairs; a count of
``T`` means the kernel launches once per time step, which is the
paper's core heterogeneity mechanism — per-step kernels scale in
*count*, batched kernels scale in *size* (§IV-B1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator

from repro.hw.config import HardwareConfig
from repro.kernels.base import KernelInvocation

__all__ = ["Layer", "KernelStream"]

KernelStream = Iterator[tuple[KernelInvocation, int]]


class Layer(ABC):
    """One network layer, lowerable to kernels."""

    def __init__(self, name: str):
        self.name = name

    def out_steps(self, in_steps: int) -> int:
        """Time steps this layer emits given ``in_steps`` (convs shrink)."""
        return in_steps

    @abstractmethod
    def forward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        """Forward-pass kernels for a ``batch x steps`` input."""

    @abstractmethod
    def backward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        """Backward-pass kernels (``steps`` is this layer's input steps)."""

    def param_count(self) -> int:
        """Trainable parameters (drives optimizer-update kernels)."""
        return 0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
