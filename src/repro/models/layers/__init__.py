"""Layer library: each layer lowers to forward/backward kernel streams."""

from repro.models.layers.attention import AttentionLayer
from repro.models.layers.base import Layer
from repro.models.layers.batchnorm import BatchNormLayer
from repro.models.layers.conv2d import Conv2dLayer
from repro.models.layers.dense import DenseLayer
from repro.models.layers.embedding import EmbeddingLayer
from repro.models.layers.losses import CTCLossLayer, SoftmaxCrossEntropyLayer
from repro.models.layers.recurrent import GRULayer, LSTMLayer
from repro.models.layers.optimizer import sgd_update_kernels

__all__ = [
    "Layer",
    "DenseLayer",
    "EmbeddingLayer",
    "Conv2dLayer",
    "BatchNormLayer",
    "LSTMLayer",
    "GRULayer",
    "AttentionLayer",
    "SoftmaxCrossEntropyLayer",
    "CTCLossLayer",
    "sgd_update_kernels",
]
