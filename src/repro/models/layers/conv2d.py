"""2-D convolution layer (im2col + GEMM lowering).

For DS2 the "width" axis is time: strides along it shrink the sequence,
so :meth:`out_steps` is how the GRU stack below sees fewer steps than
the spectrogram has (SL 804 → 402 post-conv, reproducing Table I's
``N = 64 * 402``).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hw.config import HardwareConfig
from repro.kernels.conv import Conv2dShape, conv2d_im2col
from repro.kernels.elementwise import elementwise
from repro.kernels.gemm import gemm
from repro.kernels.memops import copy_transform
from repro.models.layers.base import KernelStream, Layer

__all__ = ["Conv2dLayer"]


class Conv2dLayer(Layer):
    """Convolution over ``[batch, c_in, height, width(=steps)]``.

    ``height`` is a fixed spatial axis (frequency bins for DS2, image
    rows for the CNN); ``width`` is the dynamic axis fed from ``steps``.
    Padding is symmetric ("same"-style) per axis.
    """

    def __init__(
        self,
        name: str,
        c_in: int,
        c_out: int,
        height: int,
        kernel_h: int,
        kernel_w: int,
        stride_h: int = 1,
        stride_w: int = 1,
        pad_h: int = 0,
        pad_w: int = 0,
    ):
        super().__init__(name)
        if min(c_in, c_out, height, kernel_h, kernel_w, stride_h, stride_w) <= 0:
            raise ConfigurationError(f"{name}: conv dimensions must be positive")
        if pad_h < 0 or pad_w < 0:
            raise ConfigurationError(f"{name}: padding cannot be negative")
        self.c_in = c_in
        self.c_out = c_out
        self.height = height
        self.kernel_h = kernel_h
        self.kernel_w = kernel_w
        self.stride_h = stride_h
        self.stride_w = stride_w
        self.pad_h = pad_h
        self.pad_w = pad_w

    @property
    def out_height(self) -> int:
        return (self.height + 2 * self.pad_h - self.kernel_h) // self.stride_h + 1

    def out_steps(self, in_steps: int) -> int:
        return (in_steps + 2 * self.pad_w - self.kernel_w) // self.stride_w + 1

    def _shape(self, batch: int, steps: int) -> Conv2dShape:
        return Conv2dShape(
            batch=batch,
            c_in=self.c_in,
            c_out=self.c_out,
            in_h=self.height + 2 * self.pad_h,
            in_w=steps + 2 * self.pad_w,
            kernel_h=self.kernel_h,
            kernel_w=self.kernel_w,
            stride_h=self.stride_h,
            stride_w=self.stride_w,
        )

    def forward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        shape = self._shape(batch, steps)
        for kernel in conv2d_im2col(shape, config, group="conv"):
            yield kernel, 1
        yield elementwise(
            "bias_relu", self.c_out * shape.output_positions,
            reads_per_element=2, writes_per_element=1, flops_per_element=2,
            inner_dim=shape.out_w,
        ), 1

    def backward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        shape = self._shape(batch, steps)
        positions = shape.output_positions
        yield elementwise(
            "relu_grad", self.c_out * positions,
            reads_per_element=2, writes_per_element=1, flops_per_element=1,
            inner_dim=shape.out_w,
        ), 1
        # dW = dY @ columns^T
        yield gemm(self.c_out, shape.patch_size, positions, config, group="conv"), 1
        # dX = W^T @ dY, then fold columns back (col2im).
        yield gemm(shape.patch_size, positions, self.c_out, config, group="conv"), 1
        yield copy_transform("pad", positions * shape.patch_size), 1

    def param_count(self) -> int:
        return self.c_out * (self.c_in * self.kernel_h * self.kernel_w + 1)
