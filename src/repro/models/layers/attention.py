"""Attention layer (GNMT's encoder-decoder attention).

Scores every decoder step against every encoder position, so its work
grows with the *product* of source and target lengths — the strongest
SL dependence in the network.  Score/context kernels launch once per
decoder step (like the recurrent group); the output projection is one
batched GEMM.
"""

from __future__ import annotations

import threading

from repro.errors import ConfigurationError, LoweringError
from repro.hw.config import HardwareConfig
from repro.kernels.elementwise import elementwise
from repro.kernels.gemm import gemm
from repro.kernels.reduction import reduction
from repro.models.layers.base import KernelStream, Layer

__all__ = ["AttentionLayer"]


class AttentionLayer(Layer):
    """Dot-product attention from decoder states to encoder outputs."""

    def __init__(self, name: str, hidden: int):
        super().__init__(name)
        if hidden <= 0:
            raise ConfigurationError(f"{name}: hidden must be positive")
        self.hidden = hidden
        # Thread-local: the bound length is per-iteration scratch state,
        # and models are shared across an engine's runners — concurrent
        # lowering of different configs (run_many, sweep thread mode)
        # must not see each other's bindings.
        self._source = threading.local()

    def bind_source(self, src_steps: int) -> None:
        """Set the encoder length for the current iteration."""
        if src_steps <= 0:
            raise LoweringError(f"{self.name}: src_steps must be positive")
        self._source.src_steps = src_steps

    def _require_source(self) -> int:
        src_steps = getattr(self._source, "src_steps", None)
        if src_steps is None:
            raise LoweringError(
                f"{self.name}: bind_source() must be called before lowering"
            )
        return src_steps

    def forward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        src = self._require_source()
        # Per decoder step (Bahdanau additive scoring): project the
        # query, broadcast-add it to the precomputed key tensor
        # [B, src, H] under a tanh — the quadratic-traffic term that
        # makes attention's share of the iteration grow with SL — then
        # reduce with the scoring vector, softmax, and form the context.
        yield gemm(batch, self.hidden, self.hidden, config, group="GEMM-2"), steps
        yield elementwise(
            "attn_tanh_add", batch * src * self.hidden,
            reads_per_element=2, writes_per_element=1, flops_per_element=3,
        ), steps
        yield gemm(batch * src, 1, self.hidden, config, group="GEMM-2"), steps
        yield reduction("attn_softmax", batch, src), steps
        yield elementwise(
            "attn_scale", batch * src,
            reads_per_element=2, writes_per_element=1, flops_per_element=2,
            inner_dim=src,
        ), steps
        yield gemm(batch, self.hidden, src, config, group="GEMM-2"), steps
        # Attentional hidden state: combine context with decoder output.
        yield gemm(
            batch * steps, self.hidden, 2 * self.hidden, config, group="GEMM-1"
        ), 1

    def backward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        src = self._require_source()
        yield gemm(
            2 * self.hidden, self.hidden, batch * steps, config, group="GEMM-1"
        ), 1
        yield gemm(
            batch * steps, 2 * self.hidden, self.hidden, config, group="GEMM-1"
        ), 1
        # Per step: gradients through context, softmax, scores, and the
        # additive tanh (re-touching the [B, src, H] tensor).
        yield gemm(batch, src, self.hidden, config, group="GEMM-2"), steps
        yield elementwise(
            "attn_softmax_grad", batch * src,
            reads_per_element=3, writes_per_element=1, flops_per_element=4,
            inner_dim=src,
        ), steps
        yield elementwise(
            "attn_tanh_grad", batch * src * self.hidden,
            reads_per_element=2, writes_per_element=1, flops_per_element=2,
        ), steps
        yield gemm(batch, self.hidden, src, config, group="GEMM-2"), steps

    def param_count(self) -> int:
        # Query projection [H -> H], scoring vector, combine [2H -> H].
        return self.hidden * self.hidden + self.hidden + 2 * self.hidden * self.hidden
