"""Optimizer-update kernels (SGD with momentum).

One fused update kernel per parameterised layer, as frameworks emit.
Update work is independent of sequence length, which *dilutes* relative
iteration-to-iteration variation for short sequences — part of why
runtime-vs-SL (Fig 9) has a positive intercept rather than passing
through the origin.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.kernels.elementwise import elementwise
from repro.models.layers.base import KernelStream, Layer

__all__ = ["sgd_update_kernels"]


def sgd_update_kernels(layers: Iterable[Layer]) -> KernelStream:
    """Yield one momentum-SGD update kernel per parameterised layer."""
    for layer in layers:
        params = layer.param_count()
        if params <= 0:
            continue
        # Reads weight, gradient, momentum; writes weight and momentum.
        yield elementwise(
            "sgd_momentum", params,
            reads_per_element=3, writes_per_element=2, flops_per_element=4,
        ), 1
