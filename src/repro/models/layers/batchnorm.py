"""Batch-normalization layer (per-channel statistics over batch x space)."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hw.config import HardwareConfig
from repro.kernels.elementwise import elementwise
from repro.kernels.reduction import reduction
from repro.models.layers.base import KernelStream, Layer

__all__ = ["BatchNormLayer"]


class BatchNormLayer(Layer):
    """Normalises ``channels`` feature maps of ``spatial_per_step`` values.

    Per-step spatial size is fixed (frequency bins x 1 for DS2); the
    reduction span is ``batch * steps * spatial_per_step``, so both the
    statistics kernels and the normalisation kernel scale with SL.
    """

    def __init__(self, name: str, channels: int, spatial_per_step: int):
        super().__init__(name)
        if channels <= 0 or spatial_per_step <= 0:
            raise ConfigurationError(
                f"{name}: channels/spatial must be positive"
            )
        self.channels = channels
        self.spatial_per_step = spatial_per_step

    def _span(self, batch: int, steps: int) -> int:
        return batch * steps * self.spatial_per_step

    def forward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        span = self._span(batch, steps)
        yield reduction("bn_mean", self.channels, span), 1
        yield reduction("bn_var", self.channels, span, flops_per_element=2), 1
        yield elementwise(
            "bn_norm", self.channels * span,
            reads_per_element=2, writes_per_element=1, flops_per_element=5,
            inner_dim=steps,
        ), 1

    def backward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        span = self._span(batch, steps)
        yield reduction("bn_dgamma", self.channels, span, flops_per_element=2), 1
        yield reduction("bn_dbeta", self.channels, span), 1
        yield elementwise(
            "bn_dx", self.channels * span,
            reads_per_element=3, writes_per_element=1, flops_per_element=7,
            inner_dim=steps,
        ), 1

    def param_count(self) -> int:
        return 2 * self.channels
