"""Loss layers: softmax cross-entropy (GNMT) and CTC (DS2).

The softmax CE works over ``[batch*steps, vocab]`` logits, so with
GNMT's 36549-word vocabulary it moves more bytes than any other
non-GEMM kernel — the paper's Key Observation 6 (vocabulary size is a
considerable fraction of iteration time) falls out of this layer.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hw.config import HardwareConfig
from repro.kernels.elementwise import elementwise
from repro.kernels.reduction import reduction
from repro.models.layers.base import KernelStream, Layer

__all__ = ["SoftmaxCrossEntropyLayer", "CTCLossLayer"]


class SoftmaxCrossEntropyLayer(Layer):
    """Softmax + cross-entropy over a ``vocab``-wide classifier output."""

    def __init__(self, name: str, vocab: int):
        super().__init__(name)
        if vocab <= 0:
            raise ConfigurationError(f"{name}: vocab must be positive")
        self.vocab = vocab

    def forward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        rows = batch * steps
        yield reduction("softmax_max", rows, self.vocab), 1
        yield reduction("softmax_sum", rows, self.vocab, flops_per_element=2), 1
        yield elementwise(
            "softmax_norm", rows * self.vocab,
            reads_per_element=1, writes_per_element=1, flops_per_element=3,
        ), 1
        yield reduction("ce_loss", batch, steps, flops_per_element=2), 1

    def backward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        rows = batch * steps
        yield elementwise(
            "softmax_grad", rows * self.vocab,
            reads_per_element=2, writes_per_element=1, flops_per_element=2,
        ), 1


class CTCLossLayer(Layer):
    """Connectionist temporal classification loss (DS2).

    The alpha/beta recursions walk the time axis step by step over a
    label lattice whose width tracks the transcript length (modelled as
    a fixed fraction of the sequence length).
    """

    #: Transcript symbols per acoustic step, empirically ~1 char per
    #: 4 post-conv frames for read speech.
    LABEL_FRACTION = 0.25

    def __init__(self, name: str, alphabet: int):
        super().__init__(name)
        if alphabet <= 0:
            raise ConfigurationError(f"{name}: alphabet must be positive")
        self.alphabet = alphabet

    def _lattice_width(self, steps: int) -> int:
        return max(2, int(steps * self.LABEL_FRACTION) * 2 + 1)

    def forward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        rows = batch * steps
        yield reduction("ctc_softmax", rows, self.alphabet), 1
        yield elementwise(
            "ctc_prob", rows * self.alphabet,
            reads_per_element=1, writes_per_element=1, flops_per_element=2,
        ), 1
        width = self._lattice_width(steps)
        # Alpha and beta recursions: one launch per time step each.
        for op in ("ctc_alpha", "ctc_beta"):
            yield elementwise(
                op, batch * width,
                reads_per_element=3, writes_per_element=1, flops_per_element=8,
                inner_dim=width,
            ), steps

    def backward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        rows = batch * steps
        yield elementwise(
            "ctc_grad", rows * self.alphabet,
            reads_per_element=3, writes_per_element=1, flops_per_element=4,
        ), 1
