"""Fully connected (classifier / projection) layer.

Applied position-wise over the whole sequence, so its GEMM's ``N``
dimension is ``batch * steps`` — the paper's Table I shapes
(GNMT: ``M=36549, K=1024``; DS2: ``M=29, K=1600``) with ``N`` varying
per iteration.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hw.config import HardwareConfig
from repro.kernels.elementwise import elementwise
from repro.kernels.gemm import gemm
from repro.kernels.reduction import reduction
from repro.models.layers.base import KernelStream, Layer

__all__ = ["DenseLayer"]


class DenseLayer(Layer):
    """``out_features x in_features`` affine map over every position."""

    def __init__(
        self,
        name: str,
        in_features: int,
        out_features: int,
        gemm_group: str = "GEMM-1",
    ):
        super().__init__(name)
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError(
                f"{name}: features must be positive, got "
                f"{in_features}x{out_features}"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.gemm_group = gemm_group

    def forward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        positions = batch * steps
        yield gemm(
            self.out_features, positions, self.in_features, config,
            group=self.gemm_group,
        ), 1
        yield elementwise(
            "bias_add", self.out_features * positions,
            reads_per_element=2, writes_per_element=1, flops_per_element=1,
        ), 1

    def backward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        positions = batch * steps
        # dX = W^T dY  — Table I's GEMM-b (e.g. GNMT M=1024, K=36549).
        yield gemm(
            self.in_features, positions, self.out_features, config,
            group=self.gemm_group,
        ), 1
        # dW = dY X^T
        yield gemm(
            self.out_features, self.in_features, positions, config,
            group=self.gemm_group,
        ), 1
        yield reduction("bias_grad", self.out_features, positions), 1

    def param_count(self) -> int:
        return self.out_features * (self.in_features + 1)
