"""Token-embedding layer (lookup table, vocab x hidden)."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hw.config import HardwareConfig
from repro.kernels.embedding import embedding_gather, embedding_scatter_grad
from repro.models.layers.base import KernelStream, Layer

__all__ = ["EmbeddingLayer"]


class EmbeddingLayer(Layer):
    """Gathers one ``hidden``-wide vector per input token."""

    def __init__(self, name: str, vocab: int, hidden: int):
        super().__init__(name)
        if vocab <= 0 or hidden <= 0:
            raise ConfigurationError(
                f"{name}: vocab/hidden must be positive, got {vocab}/{hidden}"
            )
        self.vocab = vocab
        self.hidden = hidden

    def forward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        yield embedding_gather(batch * steps, self.hidden, self.vocab), 1

    def backward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        yield embedding_scatter_grad(batch * steps, self.hidden, self.vocab), 1

    def param_count(self) -> int:
        return self.vocab * self.hidden
