"""Transformer encoder layer (paper §VII-B's attention-family SQNN).

SeqPoint's insight — sequence length drives iteration heterogeneity —
applies beyond RNNs: a Transformer layer's self-attention computes
``T x T`` score matrices, so its work grows *quadratically* with SL
while its FFN grows linearly.  Unlike recurrent layers nothing launches
per time step; every kernel is batched and scales in *size*.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hw.config import HardwareConfig
from repro.kernels.elementwise import elementwise
from repro.kernels.gemm import gemm
from repro.kernels.reduction import reduction
from repro.models.layers.base import KernelStream, Layer

__all__ = ["TransformerEncoderLayer"]


class TransformerEncoderLayer(Layer):
    """Multi-head self-attention + feed-forward block."""

    def __init__(self, name: str, hidden: int, heads: int, ffn_multiple: int = 4):
        super().__init__(name)
        if hidden <= 0 or heads <= 0 or ffn_multiple <= 0:
            raise ConfigurationError(f"{name}: dimensions must be positive")
        if hidden % heads:
            raise ConfigurationError(
                f"{name}: hidden {hidden} not divisible by {heads} heads"
            )
        self.hidden = hidden
        self.heads = heads
        self.ffn_hidden = ffn_multiple * hidden

    def _attention(self, batch: int, steps: int, config: HardwareConfig) -> KernelStream:
        positions = batch * steps
        # Fused QKV projection.
        yield gemm(positions, 3 * self.hidden, self.hidden, config, group="GEMM-1"), 1
        # Scores (B*T x T at hidden depth) and context — the quadratic terms.
        yield gemm(positions, steps, self.hidden, config, group="GEMM-2"), 1
        yield reduction("mha_softmax", batch * self.heads * steps, steps), 1
        yield elementwise(
            "mha_scale", batch * self.heads * steps * steps,
            reads_per_element=1, writes_per_element=1, flops_per_element=2,
            inner_dim=steps,
        ), 1
        yield gemm(positions, self.hidden, steps, config, group="GEMM-2"), 1
        # Output projection.
        yield gemm(positions, self.hidden, self.hidden, config, group="GEMM-1"), 1

    def _ffn(self, batch: int, steps: int, config: HardwareConfig) -> KernelStream:
        positions = batch * steps
        yield gemm(positions, self.ffn_hidden, self.hidden, config, group="GEMM-1"), 1
        yield elementwise(
            "gelu", positions * self.ffn_hidden,
            reads_per_element=1, writes_per_element=1, flops_per_element=8,
        ), 1
        yield gemm(positions, self.hidden, self.ffn_hidden, config, group="GEMM-1"), 1

    def _layernorm(self, batch: int, steps: int) -> KernelStream:
        positions = batch * steps
        yield reduction("ln_stats", positions, self.hidden, flops_per_element=2), 1
        yield elementwise(
            "ln_norm", positions * self.hidden,
            reads_per_element=2, writes_per_element=1, flops_per_element=5,
        ), 1

    def forward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        yield from self._layernorm(batch, steps)
        yield from self._attention(batch, steps, config)
        yield from self._layernorm(batch, steps)
        yield from self._ffn(batch, steps, config)
        yield elementwise(
            "residual_add", 2 * batch * steps * self.hidden,
            reads_per_element=2, writes_per_element=1, flops_per_element=1,
        ), 1

    def backward(
        self, batch: int, steps: int, config: HardwareConfig
    ) -> KernelStream:
        positions = batch * steps
        # Attention gradients: dgrads and wgrads of the four projections
        # plus the two quadratic score/context products.
        yield gemm(positions, self.hidden, 3 * self.hidden, config, group="GEMM-1"), 1
        yield gemm(3 * self.hidden, self.hidden, positions, config, group="GEMM-1"), 1
        yield gemm(positions, steps, self.hidden, config, group="GEMM-2"), 1
        yield gemm(positions, self.hidden, steps, config, group="GEMM-2"), 1
        yield elementwise(
            "mha_softmax_grad", batch * self.heads * steps * steps,
            reads_per_element=2, writes_per_element=1, flops_per_element=3,
            inner_dim=steps,
        ), 1
        yield gemm(positions, self.hidden, self.hidden, config, group="GEMM-1"), 1
        yield gemm(self.hidden, self.hidden, positions, config, group="GEMM-1"), 1
        # FFN gradients.
        yield gemm(positions, self.hidden, self.ffn_hidden, config, group="GEMM-1"), 1
        yield gemm(self.ffn_hidden, self.hidden, positions, config, group="GEMM-1"), 1
        yield gemm(positions, self.ffn_hidden, self.hidden, config, group="GEMM-1"), 1
        yield elementwise(
            "gelu_grad", positions * self.ffn_hidden,
            reads_per_element=2, writes_per_element=1, flops_per_element=4,
        ), 1
        # LayerNorm gradients.
        yield reduction("ln_grad_stats", positions, self.hidden, flops_per_element=2), 2
        yield elementwise(
            "ln_grad", positions * self.hidden,
            reads_per_element=3, writes_per_element=1, flops_per_element=6,
        ), 2

    def param_count(self) -> int:
        attention = 4 * self.hidden * self.hidden + 4 * self.hidden
        ffn = 2 * self.hidden * self.ffn_hidden + self.hidden + self.ffn_hidden
        norms = 4 * self.hidden
        return attention + ffn + norms
