"""Sequential model: a layer stack with automatic step tracking.

Handles the common case (DS2, the Fig 3 CNN) where layers feed one
another in order and convolutional strides shrink the time axis on the
way down.  The backward pass revisits layers in reverse with the step
counts each saw on the way forward.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import LoweringError
from repro.hw.config import HardwareConfig
from repro.models.layers.base import Layer
from repro.models.layers.optimizer import sgd_update_kernels
from repro.models.schedule import KernelSchedule
from repro.models.spec import IterationInputs, Model

__all__ = ["SequentialModel"]


class SequentialModel(Model):
    """A straight-line stack of layers plus an optional loss layer."""

    def __init__(self, name: str, layers: Sequence[Layer], loss: Layer | None):
        super().__init__(name)
        if not layers:
            raise LoweringError(f"{name}: a model needs at least one layer")
        self.layers = list(layers)
        self.loss = loss

    def input_steps(self, inputs: IterationInputs) -> int:
        """Time steps entering the first layer (overridable; CNN fixes it)."""
        return inputs.seq_len

    def _forward_plan(self, inputs: IterationInputs) -> list[tuple[Layer, int]]:
        """(layer, in_steps) pairs in forward order."""
        plan: list[tuple[Layer, int]] = []
        steps = self.input_steps(inputs)
        for layer in self.layers:
            plan.append((layer, steps))
            steps = layer.out_steps(steps)
        return plan

    def final_steps(self, inputs: IterationInputs) -> int:
        """Steps emitted by the last layer (the loss's time axis)."""
        steps = self.input_steps(inputs)
        for layer in self.layers:
            steps = layer.out_steps(steps)
        return steps

    def lower_forward(
        self, inputs: IterationInputs, config: HardwareConfig
    ) -> KernelSchedule:
        schedule = KernelSchedule()
        for layer, steps in self._forward_plan(inputs):
            schedule.extend(layer.forward(inputs.batch, steps, config))
        if self.loss is not None:
            schedule.extend(
                self.loss.forward(inputs.batch, self.final_steps(inputs), config)
            )
        return schedule

    def lower_iteration(
        self, inputs: IterationInputs, config: HardwareConfig
    ) -> KernelSchedule:
        schedule = self.lower_forward(inputs, config)
        if self.loss is not None:
            schedule.extend(
                self.loss.backward(inputs.batch, self.final_steps(inputs), config)
            )
        for layer, steps in reversed(self._forward_plan(inputs)):
            schedule.extend(layer.backward(inputs.batch, steps, config))
        schedule.extend(sgd_update_kernels(self.layers))
        return schedule

    def param_count(self) -> int:
        total = sum(layer.param_count() for layer in self.layers)
        if self.loss is not None:
            total += self.loss.param_count()
        return total
