"""Kernel schedule: the lowered form of an iteration.

A schedule is an ordered list of ``(invocation, count)`` entries.
Counts capture repeated launches of an identical kernel — an LSTM
launches its recurrent GEMM once per time step — without materialising
thousands of identical objects, which keeps whole-epoch simulation
cheap (the executor measures each distinct invocation once and
multiplies).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import LoweringError
from repro.kernels.base import KernelInvocation

__all__ = ["KernelSchedule"]


class KernelSchedule:
    """Ordered ``(invocation, count)`` entries for one pass."""

    def __init__(
        self, entries: Iterable[tuple[KernelInvocation, int]] = ()
    ) -> None:
        self._entries: list[tuple[KernelInvocation, int]] = []
        for invocation, count in entries:
            self.add(invocation, count)

    def add(self, invocation: KernelInvocation, count: int = 1) -> None:
        if count <= 0:
            raise LoweringError(
                f"kernel count must be positive, got {count} for {invocation.name}"
            )
        self._entries.append((invocation, count))

    def extend(self, entries: Iterable[tuple[KernelInvocation, int]]) -> None:
        # Inlined add(): lowering funnels every kernel through here, so
        # the per-entry method call is measurable on the epoch hot path.
        append = self._entries.append
        for entry in entries:
            if entry[1] <= 0:
                raise LoweringError(
                    f"kernel count must be positive, got {entry[1]} "
                    f"for {entry[0].name}"
                )
            append(entry)

    def __iter__(self) -> Iterator[tuple[KernelInvocation, int]]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def launch_count(self) -> int:
        """Total kernel launches including per-step repetitions."""
        return sum(count for _, count in self._entries)

    @property
    def total_flops(self) -> float:
        return sum(inv.flops * count for inv, count in self._entries)

    def unique_kernel_names(self) -> set[str]:
        """Distinct kernel variants launched (the Fig 5 statistic)."""
        return {invocation.name for invocation, _ in self._entries}

    def merged(self) -> "KernelSchedule":
        """Schedule with identical invocations coalesced (summed counts).

        Order is first-appearance; useful for compact trace storage.
        """
        totals: dict[KernelInvocation, int] = {}
        for invocation, count in self._entries:
            totals[invocation] = totals.get(invocation, 0) + count
        return KernelSchedule(totals.items())

    def gemm_shapes(self) -> list[tuple[int, int, int]]:
        """All GEMM problem shapes in launch order (for autotune cost)."""
        return [
            (inv.shape[0], inv.shape[1], inv.shape[2])
            for inv, _ in self._entries
            if inv.op == "gemm"
        ]

    def compiled(self):
        """Compile into a frozen columnar :class:`~repro.models.plan.SchedulePlan`.

        The plan merges identical invocations exactly like
        :meth:`merged` and is what the batched timing pipeline consumes.
        """
        from repro.models.plan import compile_plan

        return compile_plan(self)
