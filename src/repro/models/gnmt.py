"""Google's Neural Machine Translation model (paper §VI-B).

Components as the paper lists them: an encoder with seven
unidirectional and one bidirectional LSTM layers, a decoder with eight
unidirectional LSTM layers, an attention network connecting them, and a
fully-connected classifier over the vocabulary.  Default dimensions
match the paper's Table I shapes: hidden 1024, vocabulary 36549.

Source and target lengths differ per iteration; the dataset supplies
``tgt_len``, and when absent it is derived from the source length with
the corpus' average expansion ratio so that lowering stays a pure
function of the logged sequence length (Key Observation 4).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hw.config import HardwareConfig
from repro.models.layers.attention import AttentionLayer
from repro.models.layers.base import Layer
from repro.models.layers.dense import DenseLayer
from repro.models.layers.embedding import EmbeddingLayer
from repro.models.layers.losses import SoftmaxCrossEntropyLayer
from repro.models.layers.optimizer import sgd_update_kernels
from repro.models.layers.recurrent import LSTMLayer
from repro.models.schedule import KernelSchedule
from repro.models.spec import IterationInputs, Model

__all__ = ["GnmtModel", "build_gnmt", "GNMT_VOCAB", "GNMT_HIDDEN"]

GNMT_VOCAB = 36549
GNMT_HIDDEN = 1024

#: Average target/source token ratio used when a dataset does not give
#: an explicit decoder length (English→Vietnamese expands slightly).
_TGT_RATIO = 1.1


class GnmtModel(Model):
    """GNMT: bi/uni LSTM encoder, LSTM decoder, attention, classifier."""

    def __init__(
        self,
        vocab: int = GNMT_VOCAB,
        hidden: int = GNMT_HIDDEN,
        encoder_layers: int = 8,
        decoder_layers: int = 8,
    ):
        super().__init__("gnmt")
        if encoder_layers < 2 or decoder_layers < 1:
            raise ConfigurationError(
                "GNMT needs >=2 encoder layers (first is bidirectional) "
                "and >=1 decoder layer"
            )
        self.vocab = vocab
        self.hidden = hidden

        self.src_embedding = EmbeddingLayer("src_embedding", vocab, hidden)
        self.tgt_embedding = EmbeddingLayer("tgt_embedding", vocab, hidden)

        self.encoder: list[Layer] = [
            LSTMLayer("enc0_bi", hidden, hidden, bidirectional=True)
        ]
        # The bidirectional layer emits 2H; the first stacked layer
        # consumes it, the rest run at H.
        self.encoder.append(LSTMLayer("enc1", 2 * hidden, hidden))
        for index in range(2, encoder_layers):
            self.encoder.append(LSTMLayer(f"enc{index}", hidden, hidden))

        # Input feeding: the previous attentional state is concatenated
        # with the target embedding, so the first decoder layer sees 2H.
        self.decoder: list[Layer] = [LSTMLayer("dec0", 2 * hidden, hidden)]
        for index in range(1, decoder_layers):
            self.decoder.append(LSTMLayer(f"dec{index}", hidden, hidden))

        self.attention = AttentionLayer("attention", hidden)
        self.classifier = DenseLayer("classifier", hidden, vocab)
        self.loss = SoftmaxCrossEntropyLayer("softmax_ce", vocab)

    def plan_fingerprint(self) -> dict:
        return {
            "family": "gnmt",
            "vocab": self.vocab,
            "hidden": self.hidden,
            "encoder_layers": len(self.encoder),
            "decoder_layers": len(self.decoder),
        }

    def target_steps(self, inputs: IterationInputs) -> int:
        if inputs.tgt_len is not None:
            return inputs.tgt_len
        return max(2, round(inputs.seq_len * _TGT_RATIO))

    def _all_layers(self) -> list[Layer]:
        return [
            self.src_embedding,
            *self.encoder,
            self.tgt_embedding,
            *self.decoder,
            self.attention,
            self.classifier,
        ]

    def lower_forward(
        self, inputs: IterationInputs, config: HardwareConfig
    ) -> KernelSchedule:
        batch, src = inputs.batch, inputs.seq_len
        tgt = self.target_steps(inputs)
        self.attention.bind_source(src)

        schedule = KernelSchedule()
        schedule.extend(self.src_embedding.forward(batch, src, config))
        for layer in self.encoder:
            schedule.extend(layer.forward(batch, src, config))
        schedule.extend(self.tgt_embedding.forward(batch, tgt, config))
        for layer in self.decoder:
            schedule.extend(layer.forward(batch, tgt, config))
        schedule.extend(self.attention.forward(batch, tgt, config))
        schedule.extend(self.classifier.forward(batch, tgt, config))
        schedule.extend(self.loss.forward(batch, tgt, config))
        return schedule

    def lower_iteration(
        self, inputs: IterationInputs, config: HardwareConfig
    ) -> KernelSchedule:
        batch, src = inputs.batch, inputs.seq_len
        tgt = self.target_steps(inputs)

        schedule = self.lower_forward(inputs, config)
        schedule.extend(self.loss.backward(batch, tgt, config))
        schedule.extend(self.classifier.backward(batch, tgt, config))
        schedule.extend(self.attention.backward(batch, tgt, config))
        for layer in reversed(self.decoder):
            schedule.extend(layer.backward(batch, tgt, config))
        schedule.extend(self.tgt_embedding.backward(batch, tgt, config))
        for layer in reversed(self.encoder):
            schedule.extend(layer.backward(batch, src, config))
        schedule.extend(self.src_embedding.backward(batch, src, config))
        schedule.extend(sgd_update_kernels(self._all_layers()))
        return schedule

    def param_count(self) -> int:
        return sum(layer.param_count() for layer in self._all_layers())


def build_gnmt(
    vocab: int = GNMT_VOCAB, hidden: int = GNMT_HIDDEN
) -> GnmtModel:
    """The paper's GNMT configuration."""
    return GnmtModel(vocab=vocab, hidden=hidden)
