"""Embedding lookup kernels.

A lookup gathers one ``hidden``-wide row per token from a
``vocab x hidden`` table.  Row addresses are data-dependent, so spatial
locality is poor and the only cache help comes from the table itself
staying resident — which it does not for realistic vocabularies
(GNMT: 36549 x 1024 x 4 B ≈ 150 MB).  That is the paper's Key
Observation 6: vocabulary size determines a real fraction of iteration
time, so sampled runs must keep the full vocabulary.
"""

from __future__ import annotations

from functools import lru_cache

from repro.kernels.base import FLOAT_BYTES, KernelInvocation, make_invocation

__all__ = ["embedding_gather", "embedding_scatter_grad"]


@lru_cache(maxsize=1 << 14)
def embedding_gather(
    tokens: int, hidden: int, vocab: int, group: str = "embedding"
) -> KernelInvocation:
    """Forward lookup of ``tokens`` rows from the table."""
    if min(tokens, hidden, vocab) <= 0:
        raise ValueError(f"embedding dims must be positive: {(tokens, hidden, vocab)}")
    row_bytes = hidden * FLOAT_BYTES
    table_bytes = vocab * row_bytes
    gathered = tokens * row_bytes
    return make_invocation(
        name="embedding_gather_rows",
        op="embedding",
        group=group,
        shape=(tokens, hidden, vocab),
        flops=0.0,
        work_items=tokens * hidden,
        read_bytes=gathered + tokens * FLOAT_BYTES,  # rows plus indices
        write_bytes=gathered,
        issue_efficiency=0.5,
        # Repeated tokens (stop words) re-hit their rows — if the hot
        # subset of the table fits.
        l1_reuse_fraction=0.02,
        l1_working_set=row_bytes,
        l2_reuse_fraction=0.25,
        l2_working_set=table_bytes,
    )


@lru_cache(maxsize=1 << 14)
def embedding_scatter_grad(
    tokens: int, hidden: int, vocab: int, group: str = "embedding"
) -> KernelInvocation:
    """Backward scatter-add of token gradients into the table."""
    if min(tokens, hidden, vocab) <= 0:
        raise ValueError(f"embedding dims must be positive: {(tokens, hidden, vocab)}")
    row_bytes = hidden * FLOAT_BYTES
    moved = tokens * row_bytes
    return make_invocation(
        name="embedding_scatter_add",
        op="embedding_grad",
        group=group,
        shape=(tokens, hidden, vocab),
        flops=tokens * hidden,  # one add per gathered element
        work_items=tokens * hidden,
        read_bytes=2 * moved,  # gradient plus read-modify-write of rows
        write_bytes=moved,
        issue_efficiency=0.4,
        l1_reuse_fraction=0.02,
        l1_working_set=row_bytes,
        l2_reuse_fraction=0.25,
        l2_working_set=vocab * row_bytes,
    )
