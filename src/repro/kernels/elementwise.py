"""Pointwise kernel family (activations, gate math, optimizer updates).

Pointwise kernels are bandwidth-streaming: they read their operands
once, apply a few VALU ops per element, and write the result.  Like real
DNN libraries, the family has vectorised and scalar variants plus
grid-size specialisations, so the concrete kernel *name* depends on the
element count and alignment — another source of the Fig 5 effect.
"""

from __future__ import annotations

from functools import lru_cache

from repro.kernels.base import FLOAT_BYTES, KernelInvocation, make_invocation

__all__ = ["elementwise"]


def _variant_name(op: str, elements: int, inner_dim: int) -> str:
    # Vectorised loads need the contiguous (innermost) dimension aligned.
    vector_width = 4 if inner_dim % 4 == 0 else 1
    if elements >= 1 << 22:
        grid_class = "persistent"
    elif elements >= 1 << 16:
        grid_class = "tiled"
    else:
        grid_class = "small"
    return f"ew_{op}_v{vector_width}_{grid_class}"


@lru_cache(maxsize=1 << 16)
def elementwise(
    op: str,
    elements: int,
    *,
    reads_per_element: int = 1,
    writes_per_element: int = 1,
    flops_per_element: float = 1.0,
    group: str = "scalar-op",
    inner_dim: int | None = None,
) -> KernelInvocation:
    """A pointwise kernel over ``elements`` values.

    Memoised (pure in its arguments): pointwise kernels are requested
    per layer per shape, and the hit path skips name formatting and
    profile assembly on the lowering hot path.

    ``reads_per_element``/``writes_per_element`` count FP32 operands:
    an LSTM gate fusion reads four pre-activations plus the previous
    cell state, a SGD update reads a weight and a gradient and writes
    the weight, and so on.  ``inner_dim`` is the tensor's contiguous
    dimension; its alignment decides whether the vectorised variant can
    dispatch (sequence-length-dependent for sequence-major tensors).
    """
    if elements <= 0:
        raise ValueError(f"elementwise kernel needs elements > 0, got {elements}")
    if inner_dim is None:
        inner_dim = elements
    read_bytes = elements * reads_per_element * FLOAT_BYTES
    write_bytes = elements * writes_per_element * FLOAT_BYTES
    return make_invocation(
        name=_variant_name(op, elements, inner_dim),
        op=op,
        group=group,
        shape=(elements,),
        flops=elements * flops_per_element,
        work_items=elements,
        read_bytes=read_bytes,
        write_bytes=write_bytes,
        # Streaming kernels barely reuse; transcendental-heavy ops issue
        # more slowly than pure FMA code.
        issue_efficiency=0.50,
        workgroup_size=256,
        l1_reuse_fraction=0.05,
        l1_working_set=256 * FLOAT_BYTES * reads_per_element,
        l2_reuse_fraction=0.0,
        l2_working_set=read_bytes,
    )
