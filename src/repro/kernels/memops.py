"""Data-movement kernels: copies, transposes, concatenations, padding.

Frameworks surround every recurrent layer with layout shuffles (time-
major to batch-major, bidirectional concat, sequence padding); these are
pure bandwidth kernels but they launch in numbers that scale with the
network depth, so they matter for short sequences where launch overhead
is a visible fraction of the iteration.
"""

from __future__ import annotations

from functools import lru_cache

from repro.kernels.base import FLOAT_BYTES, KernelInvocation, make_invocation

__all__ = ["copy_transform"]

_KNOWN_TRANSFORMS = ("copy", "transpose", "concat", "pad", "slice")


@lru_cache(maxsize=1 << 16)
def copy_transform(
    transform: str, elements: int, group: str = "memops"
) -> KernelInvocation:
    """A data-movement kernel over ``elements`` FP32 values.

    Memoised (pure in its arguments), like the other kernel families.
    """
    if transform not in _KNOWN_TRANSFORMS:
        raise ValueError(
            f"unknown transform {transform!r}; expected one of {_KNOWN_TRANSFORMS}"
        )
    if elements <= 0:
        raise ValueError(f"transform needs elements > 0, got {elements}")
    bytes_moved = elements * FLOAT_BYTES
    # Transposes lose coalescing on one side: model as extra read traffic.
    read_multiplier = 2.0 if transform == "transpose" else 1.0
    return make_invocation(
        name=f"tensor_{transform}_v4",
        op=transform,
        group=group,
        shape=(elements,),
        flops=0.0,
        work_items=max(elements // 4, 1),
        read_bytes=bytes_moved * read_multiplier,
        write_bytes=bytes_moved,
        issue_efficiency=0.6,
        l1_reuse_fraction=0.25 if transform == "transpose" else 0.0,
        l1_working_set=64 * 64 * FLOAT_BYTES,  # transpose tile
        l2_reuse_fraction=0.0,
        l2_working_set=bytes_moved,
    )
