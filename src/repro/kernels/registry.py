"""Registry of kernel families and their compiled variants.

Provides the introspection surface the profiling layer needs: which
variant names exist per family (the library's "binary catalogue"), and
which family a concrete invocation name belongs to.  Mirrors how a
profiler maps mangled kernel names back to library operations.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.kernels.gemm import GEMM_VARIANTS

__all__ = ["KernelRegistry", "default_registry"]


class KernelRegistry:
    """Maps kernel families to variant-name prefixes and vice versa."""

    def __init__(self) -> None:
        self._families: dict[str, list[str]] = {}

    def register_family(self, family: str, prefixes: Iterable[str]) -> None:
        names = list(prefixes)
        if not names:
            raise ValueError(f"family {family!r} needs at least one prefix")
        if family in self._families:
            raise ValueError(f"family {family!r} already registered")
        self._families[family] = names

    @property
    def families(self) -> tuple[str, ...]:
        return tuple(self._families)

    def prefixes(self, family: str) -> tuple[str, ...]:
        try:
            return tuple(self._families[family])
        except KeyError:
            raise KeyError(f"unknown kernel family {family!r}") from None

    def family_of(self, kernel_name: str) -> str:
        """Classify a concrete kernel name; 'unknown' if unrecognised."""
        for family, prefixes in self._families.items():
            if any(kernel_name.startswith(prefix) for prefix in prefixes):
                return family
        return "unknown"


def default_registry() -> KernelRegistry:
    """Registry covering every kernel family this library emits."""
    registry = KernelRegistry()
    registry.register_family("gemm", [variant.name for variant in GEMM_VARIANTS])
    registry.register_family("elementwise", ["ew_"])
    registry.register_family("reduction", ["reduce_"])
    registry.register_family("im2col", ["im2col_"])
    registry.register_family("embedding", ["embedding_"])
    registry.register_family("memops", ["tensor_"])
    return registry
