"""Kernel zoo: the library layer between models and the GPU model.

Models lower to :class:`~repro.kernels.base.KernelInvocation` streams;
each invocation names a concrete kernel *variant* (as a BLAS/DNN library
would) and carries the :class:`~repro.hw.timing.WorkProfile` the GPU
model times.  Variant selection is size-dependent — exactly like
rocBLAS/MIOpen tile selection — which is what makes different sequence
lengths invoke different kernel sets (paper Fig 5) and shift the kernel
runtime distribution (Figs 6 and 8).
"""

from repro.kernels.base import KernelInvocation, make_invocation
from repro.kernels.gemm import clear_gemm_caches, gemm, gemm_variants
from repro.kernels.elementwise import elementwise
from repro.kernels.reduction import reduction
from repro.kernels.conv import _im2col, conv2d_im2col
from repro.kernels.embedding import embedding_gather, embedding_scatter_grad
from repro.kernels.memops import copy_transform
from repro.kernels.registry import KernelRegistry, default_registry

__all__ = [
    "KernelInvocation",
    "gemm",
    "gemm_variants",
    "elementwise",
    "reduction",
    "conv2d_im2col",
    "embedding_gather",
    "embedding_scatter_grad",
    "copy_transform",
    "KernelRegistry",
    "default_registry",
    "clear_lowering_caches",
]


def clear_lowering_caches() -> None:
    """Drop every lowering-side memo in the kernel zoo.

    Benchmarks that measure genuinely *cold* epoch simulation call this
    (plus :func:`repro.hw.device.clear_measure_caches` and
    ``PLAN_CACHE.clear()``) so no prior run's invocations, variant
    races, or dispatch decisions leak into the measurement.
    """
    clear_gemm_caches()
    make_invocation.cache_clear()
    elementwise.cache_clear()
    reduction.cache_clear()
    copy_transform.cache_clear()
    embedding_gather.cache_clear()
    embedding_scatter_grad.cache_clear()
    _im2col.cache_clear()
