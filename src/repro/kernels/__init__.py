"""Kernel zoo: the library layer between models and the GPU model.

Models lower to :class:`~repro.kernels.base.KernelInvocation` streams;
each invocation names a concrete kernel *variant* (as a BLAS/DNN library
would) and carries the :class:`~repro.hw.timing.WorkProfile` the GPU
model times.  Variant selection is size-dependent — exactly like
rocBLAS/MIOpen tile selection — which is what makes different sequence
lengths invoke different kernel sets (paper Fig 5) and shift the kernel
runtime distribution (Figs 6 and 8).
"""

from repro.kernels.base import KernelInvocation
from repro.kernels.gemm import gemm, gemm_variants
from repro.kernels.elementwise import elementwise
from repro.kernels.reduction import reduction
from repro.kernels.conv import conv2d_im2col
from repro.kernels.embedding import embedding_gather, embedding_scatter_grad
from repro.kernels.memops import copy_transform
from repro.kernels.registry import KernelRegistry, default_registry

__all__ = [
    "KernelInvocation",
    "gemm",
    "gemm_variants",
    "elementwise",
    "reduction",
    "conv2d_im2col",
    "embedding_gather",
    "embedding_scatter_grad",
    "copy_transform",
    "KernelRegistry",
    "default_registry",
]
