"""GEMM kernel family with rocBLAS-style macro-tile variants.

A GEMM ``C[M,N] = A[M,K] @ B[K,N]`` is served by one of several compiled
variants, each specialised for a macro-tile ``MT_m x MT_n``.  Variant
choice is size-dependent: big square tiles amortise loads best but waste
lanes on small or skinny problems, so a 64-token classifier GEMM and a
6000-token one select *different kernels* — the mechanism behind the
paper's Fig 5 (kernel sets differ across sequence lengths) and Key
Observation 3 (one kernel, different dims across iterations).

Selection is by predicted runtime on the target device (the library's
autotune ground truth); :mod:`repro.kernels.autotune` layers the "first
epoch tries everything" behaviour on top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import KernelSelectionError
from repro.hw.config import HardwareConfig
from repro.hw.timing import time_work
from repro.kernels.base import FLOAT_BYTES, KernelInvocation, make_invocation

__all__ = ["GemmVariant", "GEMM_VARIANTS", "gemm", "gemm_variants", "build_gemm"]


@dataclass(frozen=True)
class GemmVariant:
    """A compiled GEMM kernel specialised for one macro-tile."""

    tile_m: int
    tile_n: int
    #: K-slice streamed through LDS per buffer swap.
    depth_u: int
    #: Fraction of peak a fully utilised tile reaches (bigger tiles
    #: have denser inner loops).
    issue_efficiency: float

    @property
    def name(self) -> str:
        return f"Cijk_Ailk_Bljk_SB_MT{self.tile_m}x{self.tile_n}x{self.depth_u}"


#: The variant family.  Tile sizes and efficiencies follow the usual
#: rocBLAS assembly-kernel ladder: large square tiles near peak, small
#: and skinny tiles progressively cheaper per tile but less efficient.
GEMM_VARIANTS: tuple[GemmVariant, ...] = (
    GemmVariant(tile_m=128, tile_n=128, depth_u=16, issue_efficiency=0.88),
    GemmVariant(tile_m=128, tile_n=64, depth_u=16, issue_efficiency=0.84),
    GemmVariant(tile_m=64, tile_n=128, depth_u=16, issue_efficiency=0.84),
    GemmVariant(tile_m=64, tile_n=64, depth_u=16, issue_efficiency=0.78),
    GemmVariant(tile_m=64, tile_n=32, depth_u=32, issue_efficiency=0.70),
    GemmVariant(tile_m=32, tile_n=64, depth_u=32, issue_efficiency=0.70),
    GemmVariant(tile_m=32, tile_n=32, depth_u=32, issue_efficiency=0.60),
    GemmVariant(tile_m=16, tile_n=64, depth_u=32, issue_efficiency=0.52),
    GemmVariant(tile_m=16, tile_n=16, depth_u=64, issue_efficiency=0.40),
)


def build_gemm(
    variant: GemmVariant, m: int, n: int, k: int, group: str = "gemm"
) -> KernelInvocation:
    """Materialise ``variant`` for a concrete ``M x N x K`` problem."""
    if min(m, n, k) <= 0:
        raise KernelSelectionError(f"GEMM dims must be positive, got {(m, n, k)}")
    tiles_m = math.ceil(m / variant.tile_m)
    tiles_n = math.ceil(n / variant.tile_n)
    workgroups = tiles_m * tiles_n
    padded_m = tiles_m * variant.tile_m
    padded_n = tiles_n * variant.tile_n
    # Libraries compile separate exact-tile and edge-tile kernels; which
    # one dispatches depends on whether the problem divides the tile —
    # a per-sequence-length property (one source of the Fig 5 effect).
    edge_suffix = "" if (m % variant.tile_m == 0 and n % variant.tile_n == 0) else "_edge"

    # Each workgroup streams an A panel (tile_m x K) and a B panel
    # (K x tile_n) through LDS; L1 sees each panel once per workgroup.
    read_bytes = workgroups * (variant.tile_m + variant.tile_n) * k * FLOAT_BYTES
    unique_bytes = (m * k + k * n) * FLOAT_BYTES
    l2_reuse = 0.0
    if read_bytes > 0:
        l2_reuse = max(0.0, 1.0 - unique_bytes / read_bytes)

    return make_invocation(
        name=variant.name + edge_suffix,
        op="gemm",
        group=group,
        shape=(m, n, k),
        # Padded tiles execute wasted lanes: they cost time and VALU
        # instructions just like the real kernels do.
        flops=2.0 * padded_m * padded_n * k,
        work_items=workgroups * 256,
        read_bytes=read_bytes,
        write_bytes=m * n * FLOAT_BYTES,
        issue_efficiency=variant.issue_efficiency,
        # Line-granularity locality within a K-slice of both panels.
        l1_reuse_fraction=0.30,
        l1_working_set=(variant.tile_m + variant.tile_n)
        * variant.depth_u
        * FLOAT_BYTES,
        l2_reuse_fraction=l2_reuse,
        l2_working_set=unique_bytes,
    )


def gemm_variants(m: int, n: int, k: int, group: str = "gemm") -> list[KernelInvocation]:
    """All candidate invocations for this problem (the autotune menu)."""
    return [build_gemm(variant, m, n, k, group) for variant in GEMM_VARIANTS]


@lru_cache(maxsize=65536)
def _select(m: int, n: int, k: int, config: HardwareConfig) -> GemmVariant:
    """Pick the fastest variant for this shape on ``config``."""
    best: GemmVariant | None = None
    best_time = math.inf
    for variant in GEMM_VARIANTS:
        candidate = build_gemm(variant, m, n, k)
        elapsed, _, _ = time_work(candidate.work, config)
        if elapsed < best_time:
            best, best_time = variant, elapsed
    assert best is not None  # GEMM_VARIANTS is non-empty
    return best


def gemm(
    m: int, n: int, k: int, config: HardwareConfig, group: str = "gemm"
) -> KernelInvocation:
    """The invocation the library would dispatch for this GEMM."""
    return build_gemm(_select(m, n, k, config), m, n, k, group)
