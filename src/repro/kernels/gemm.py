"""GEMM kernel family with rocBLAS-style macro-tile variants.

A GEMM ``C[M,N] = A[M,K] @ B[K,N]`` is served by one of several compiled
variants, each specialised for a macro-tile ``MT_m x MT_n``.  Variant
choice is size-dependent: big square tiles amortise loads best but waste
lanes on small or skinny problems, so a 64-token classifier GEMM and a
6000-token one select *different kernels* — the mechanism behind the
paper's Fig 5 (kernel sets differ across sequence lengths) and Key
Observation 3 (one kernel, different dims across iterations).

Selection is by predicted runtime on the target device (the library's
autotune ground truth); :mod:`repro.kernels.autotune` layers the "first
epoch tries everything" behaviour on top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import KernelSelectionError
from repro.hw.cache import capacity_factor
from repro.hw.compute import _LATENCY_HIDING_WAVES
from repro.hw.config import HardwareConfig
from repro.hw.timing import _INFLIGHT_BYTES_PER_WAVE, time_work
from repro.kernels.base import FLOAT_BYTES, KernelInvocation, make_invocation

__all__ = [
    "GemmVariant",
    "GEMM_VARIANTS",
    "gemm",
    "gemm_variants",
    "build_gemm",
    "candidate_times",
    "clear_gemm_caches",
]


@dataclass(frozen=True)
class GemmVariant:
    """A compiled GEMM kernel specialised for one macro-tile."""

    tile_m: int
    tile_n: int
    #: K-slice streamed through LDS per buffer swap.
    depth_u: int
    #: Fraction of peak a fully utilised tile reaches (bigger tiles
    #: have denser inner loops).
    issue_efficiency: float

    @property
    def name(self) -> str:
        return f"Cijk_Ailk_Bljk_SB_MT{self.tile_m}x{self.tile_n}x{self.depth_u}"


#: Line-granularity locality within a K-slice of both panels — shared
#: by :func:`build_gemm` and the constant-folded race in
#: :func:`_race_env`, which must agree bit for bit.
_L1_REUSE_FRACTION = 0.30

#: The variant family.  Tile sizes and efficiencies follow the usual
#: rocBLAS assembly-kernel ladder: large square tiles near peak, small
#: and skinny tiles progressively cheaper per tile but less efficient.
GEMM_VARIANTS: tuple[GemmVariant, ...] = (
    GemmVariant(tile_m=128, tile_n=128, depth_u=16, issue_efficiency=0.88),
    GemmVariant(tile_m=128, tile_n=64, depth_u=16, issue_efficiency=0.84),
    GemmVariant(tile_m=64, tile_n=128, depth_u=16, issue_efficiency=0.84),
    GemmVariant(tile_m=64, tile_n=64, depth_u=16, issue_efficiency=0.78),
    GemmVariant(tile_m=64, tile_n=32, depth_u=32, issue_efficiency=0.70),
    GemmVariant(tile_m=32, tile_n=64, depth_u=32, issue_efficiency=0.70),
    GemmVariant(tile_m=32, tile_n=32, depth_u=32, issue_efficiency=0.60),
    GemmVariant(tile_m=16, tile_n=64, depth_u=32, issue_efficiency=0.52),
    GemmVariant(tile_m=16, tile_n=16, depth_u=64, issue_efficiency=0.40),
)


@lru_cache(maxsize=65536)
def build_gemm(
    variant: GemmVariant, m: int, n: int, k: int, group: str = "gemm"
) -> KernelInvocation:
    """Materialise ``variant`` for a concrete ``M x N x K`` problem.

    Memoised: invocations are frozen values, models re-request the same
    problem every epoch, and the four nested dataclass constructions
    dominate lowering cost for recurrent networks.
    """
    if min(m, n, k) <= 0:
        raise KernelSelectionError(f"GEMM dims must be positive, got {(m, n, k)}")
    tiles_m = math.ceil(m / variant.tile_m)
    tiles_n = math.ceil(n / variant.tile_n)
    workgroups = tiles_m * tiles_n
    padded_m = tiles_m * variant.tile_m
    padded_n = tiles_n * variant.tile_n
    # Libraries compile separate exact-tile and edge-tile kernels; which
    # one dispatches depends on whether the problem divides the tile —
    # a per-sequence-length property (one source of the Fig 5 effect).
    edge_suffix = "" if (m % variant.tile_m == 0 and n % variant.tile_n == 0) else "_edge"

    # Each workgroup streams an A panel (tile_m x K) and a B panel
    # (K x tile_n) through LDS; L1 sees each panel once per workgroup.
    read_bytes = workgroups * (variant.tile_m + variant.tile_n) * k * FLOAT_BYTES
    unique_bytes = (m * k + k * n) * FLOAT_BYTES
    l2_reuse = 0.0
    if read_bytes > 0:
        l2_reuse = max(0.0, 1.0 - unique_bytes / read_bytes)

    return make_invocation(
        name=variant.name + edge_suffix,
        op="gemm",
        group=group,
        shape=(m, n, k),
        # Padded tiles execute wasted lanes: they cost time and VALU
        # instructions just like the real kernels do.
        flops=2.0 * padded_m * padded_n * k,
        work_items=workgroups * 256,
        read_bytes=read_bytes,
        write_bytes=m * n * FLOAT_BYTES,
        issue_efficiency=variant.issue_efficiency,
        l1_reuse_fraction=_L1_REUSE_FRACTION,
        l1_working_set=(variant.tile_m + variant.tile_n)
        * variant.depth_u
        * FLOAT_BYTES,
        l2_reuse_fraction=l2_reuse,
        l2_working_set=unique_bytes,
    )


def gemm_variants(m: int, n: int, k: int, group: str = "gemm") -> list[KernelInvocation]:
    """All candidate invocations for this problem (the autotune menu)."""
    return [build_gemm(variant, m, n, k, group) for variant in GEMM_VARIANTS]


@lru_cache(maxsize=64)
def _race_env(config: HardwareConfig):
    """Constant-folded per-variant/config terms of the candidate race.

    Everything here depends only on the variant's tile constants and the
    hardware configuration, never on the problem dims, so the race loop
    in :func:`candidate_times` recomputes none of it.  Each folded value
    is produced by the *same* expression the scalar pipeline evaluates
    (e.g. ``l1_hit = l1_reuse_fraction * capacity_factor(...)``), so
    folding preserves bit-identity.
    """
    wave_slots = config.num_cus * _LATENCY_HIDING_WAVES
    resident_cap = float(config.num_cus * config.max_waves_per_cu)
    peak_flops = config.peak_flops
    l1_bandwidth = config.l1_bandwidth
    l2_bandwidth = config.l2_bandwidth
    per_variant = []
    for variant in GEMM_VARIANTS:
        l1_working_set = (
            (variant.tile_m + variant.tile_n) * variant.depth_u * FLOAT_BYTES
        )
        l1_capture = capacity_factor(l1_working_set, config.l1_bytes)
        l1_hit = _L1_REUSE_FRACTION * l1_capture if config.l1_enabled else 0.0
        spilled = _L1_REUSE_FRACTION - l1_hit
        # _average_latency_cycles' L1 term: hit fraction x L1 latency.
        l1_latency_term = l1_hit * config.l1_latency_cycles
        per_variant.append(
            (
                variant.tile_m,
                variant.tile_n,
                l1_working_set,
                variant.issue_efficiency,
                l1_hit,
                spilled,
                l1_latency_term,
            )
        )
    return wave_slots, resident_cap, peak_flops, l1_bandwidth, l2_bandwidth, per_variant


@lru_cache(maxsize=65536)
def candidate_times(
    m: int, n: int, k: int, config: HardwareConfig
) -> np.ndarray:
    """Predicted runtime of every variant on this problem (one entry per
    :data:`GEMM_VARIANTS` row).

    The shared primitive behind library dispatch (:func:`gemm` takes the
    argmin) and the autotune phase (:class:`~repro.kernels.autotune.Autotuner`
    sums its pruned candidate subset).  Each entry is bit-identical to
    ``time_work(build_gemm(variant, m, n, k).work, config)[0]`` —
    asserted in tests/test_kernels_gemm.py.

    Nine candidates sit below numpy's dispatch break-even, so the race
    is a constant-folded scalar loop rather than a
    :func:`~repro.hw.timing.time_work_batch` call: every
    problem-independent term is precomputed per config by
    :func:`_race_env`, and the remaining expressions replicate
    :func:`build_gemm` + :func:`~repro.hw.timing.time_work` literally
    (integer intermediates stay integers, same association order, and
    only the runtime is computed — no breakdown or counters).
    """
    if min(m, n, k) <= 0:
        raise KernelSelectionError(f"GEMM dims must be positive, got {(m, n, k)}")
    env = _race_env(config)
    wave_slots, resident_cap, peak_flops, l1_bandwidth, l2_bandwidth, variants = env
    # Hoist every config scalar and builtin out of the 9-way loop.
    wave_size = config.wave_size
    num_cus = config.num_cus
    l1_enabled = config.l1_enabled
    l2_enabled = config.l2_enabled
    l2_bytes = config.l2_bytes
    dram_bandwidth = config.dram_bandwidth
    l2_latency = config.l2_latency_cycles
    dram_latency = config.dram_latency_cycles
    gclk_hz = config.gclk_hz
    launch_s = config.kernel_launch_s
    ceil = math.ceil

    unique_bytes = (m * k + k * n) * FLOAT_BYTES
    write_bytes = m * n * FLOAT_BYTES
    values = []
    for (
        tile_m,
        tile_n,
        l1_working_set,
        issue_efficiency,
        l1_hit,
        spilled,
        l1_latency_term,
    ) in variants:
        # build_gemm's geometry (all-integer, exact).
        tiles_m = ceil(m / tile_m)
        tiles_n = ceil(n / tile_n)
        workgroups = tiles_m * tiles_n
        padded_m = tiles_m * tile_m
        padded_n = tiles_n * tile_n
        flops = 2.0 * padded_m * padded_n * k
        work_items = workgroups * 256
        read_bytes = workgroups * (tile_m + tile_n) * k * FLOAT_BYTES
        l2_reuse = 0.0
        if read_bytes > 0:
            l2_reuse = max(0.0, 1.0 - unique_bytes / read_bytes)

        # resolve_traffic.  capacity_factor is inlined for the enabled
        # case; its working set max(unique, l1_ws) is always positive.
        l2_reads = read_bytes * (1.0 - l1_hit)
        if l2_enabled:
            l2_candidate = min(1.0, l2_reuse + spilled)
            l2_capture = min(
                1.0, l2_bytes / max(unique_bytes, l1_working_set)
            )
            l2_hit = l2_candidate * l2_capture
        else:
            l2_hit = 0.0
        dram_reads = l2_reads * (1.0 - l2_hit)

        # compute_time (flops > 0 for any valid problem).
        waves = max(1.0, work_items / wave_size)
        occupancy = min(1.0, waves / wave_slots)
        workgroup_count = max(1, ceil(work_items / 256))
        rounds = ceil(workgroup_count / num_cus)
        tail = workgroup_count / (rounds * num_cus)
        efficiency = issue_efficiency * (occupancy * tail)
        achievable = peak_flops * max(efficiency, 1e-6)
        compute_s = flops / achievable

        # _bandwidth_time.
        bandwidth_s = (dram_reads + write_bytes) / dram_bandwidth
        if l2_enabled:
            bandwidth_s = max(
                bandwidth_s, (l2_reads + write_bytes) / l2_bandwidth
            )
        if l1_enabled:
            bandwidth_s = max(bandwidth_s, read_bytes / l1_bandwidth)

        # _latency_time (read_bytes > 0 for any valid problem).
        l2_served = (l2_reads - dram_reads) / max(read_bytes, 1e-30)
        dram_fraction = dram_reads / read_bytes
        cycles_per_round = (
            l1_latency_term
            + max(l2_served, 0.0) * l2_latency
            + dram_fraction * dram_latency
        )
        resident_waves = min(waves, resident_cap)
        inflight_bytes = max(resident_waves * _INFLIGHT_BYTES_PER_WAVE, 1.0)
        latency_s = read_bytes / inflight_bytes * cycles_per_round / gclk_hz

        values.append(launch_s + max(compute_s, bandwidth_s, latency_s))
    times = np.array(values, dtype=np.float64)
    times.setflags(write=False)
    return times


def _select_reference(m: int, n: int, k: int, config: HardwareConfig) -> GemmVariant:
    """The pre-vectorized selection loop, kept as the bit-identity
    reference for :func:`_select` (tests assert they agree)."""
    best: GemmVariant | None = None
    best_time = math.inf
    for variant in GEMM_VARIANTS:
        candidate = build_gemm(variant, m, n, k)
        elapsed, _, _ = time_work(candidate.work, config)
        if elapsed < best_time:
            best, best_time = variant, elapsed
    assert best is not None  # GEMM_VARIANTS is non-empty
    return best


@lru_cache(maxsize=65536)
def _select(m: int, n: int, k: int, config: HardwareConfig) -> GemmVariant:
    """Pick the fastest variant for this shape on ``config``.

    ``np.argmin`` returns the first minimum, matching the reference
    loop's strict ``<`` (keep the earliest winner on ties).
    """
    return GEMM_VARIANTS[int(np.argmin(candidate_times(m, n, k, config)))]


def clear_gemm_caches() -> None:
    """Drop every memo in this module (for cold benchmarks)."""
    build_gemm.cache_clear()
    candidate_times.cache_clear()
    _select.cache_clear()
    _race_env.cache_clear()
    gemm.cache_clear()


@lru_cache(maxsize=65536)
def gemm(
    m: int, n: int, k: int, config: HardwareConfig, group: str = "gemm"
) -> KernelInvocation:
    """The invocation the library would dispatch for this GEMM.

    Memoised on the full request: recurrent models re-request the same
    dispatch thousands of times per epoch, and even two warm cache
    lookups (selection + build) per call are measurable on the lowering
    hot path.
    """
    return build_gemm(_select(m, n, k, config), m, n, k, group)
