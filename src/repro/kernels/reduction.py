"""Reduction kernel family (softmax partials, norms, loss sums).

Reductions read a large input and emit a small output.  The family is
specialised on reduction *span* (how many elements fold into each
output), because short spans use one-workgroup-per-row kernels while
long spans need multi-pass tree kernels — size-dependent names again.
"""

from __future__ import annotations

from functools import lru_cache

from repro.kernels.base import FLOAT_BYTES, KernelInvocation, make_invocation

__all__ = ["reduction"]


def _variant_name(op: str, span: int) -> str:
    if span >= 1 << 14:
        return f"reduce_{op}_multipass"
    if span >= 1 << 11:
        return f"reduce_{op}_wg512"
    if span >= 1 << 8:
        return f"reduce_{op}_wg256"
    if span >= 1 << 7:
        return f"reduce_{op}_wg128"
    return f"reduce_{op}_warp"


@lru_cache(maxsize=1 << 16)
def reduction(
    op: str,
    rows: int,
    span: int,
    *,
    flops_per_element: float = 1.0,
    group: str = "reduce",
) -> KernelInvocation:
    """Reduce ``rows`` independent spans of ``span`` elements each.

    Memoised (pure in its arguments), like the other kernel families.
    """
    if rows <= 0 or span <= 0:
        raise ValueError(f"reduction needs positive rows/span, got {(rows, span)}")
    elements = rows * span
    return make_invocation(
        name=_variant_name(op, span),
        op=op,
        group=group,
        shape=(rows, span),
        flops=elements * flops_per_element,
        work_items=elements,
        read_bytes=elements * FLOAT_BYTES,
        write_bytes=rows * FLOAT_BYTES,
        issue_efficiency=0.45,
        workgroup_size=256,
        # Tree reductions re-read partials at workgroup scope.
        l1_reuse_fraction=0.15,
        l1_working_set=min(span, 4096) * FLOAT_BYTES,
        l2_reuse_fraction=0.0,
        l2_working_set=elements * FLOAT_BYTES,
    )
