"""Kernel invocation record shared by every kernel family.

A :class:`KernelInvocation` is what a profiler sees: a kernel *name*
(the concrete compiled variant — two invocations with the same name are
"the same kernel", possibly at different sizes, per the paper's Key
Observation 3), a logical *op*, a reporting *group* used by the kernel
distribution figures (GEMM-1 / GEMM-2 / reduce / scalar-op / ...), the
logical shape, and the hardware-facing :class:`WorkProfile`.

Invocations are frozen and hashable so the iteration executor can
deduplicate repeated launches (an LSTM re-launches its recurrent GEMM
once per time step) and the device can memoise their measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.hw.cache import TrafficProfile
from repro.hw.compute import ComputeProfile
from repro.hw.timing import WorkProfile

__all__ = ["KernelInvocation", "make_invocation", "FLOAT_BYTES"]

#: All tensors in the modelled networks are FP32.
FLOAT_BYTES = 4


@dataclass(frozen=True)
class KernelInvocation:
    """One kernel launch as seen by a profiler."""

    name: str
    op: str
    group: str
    shape: tuple[int, ...]
    work: WorkProfile

    @property
    def flops(self) -> float:
        return self.work.compute.flops

    def __hash__(self) -> int:
        # Schedules merge and plans compile by invocation equality, and
        # the generated dataclass hash re-hashes three nested profile
        # dataclasses on every lookup — cache it per (frozen) instance.
        # Matches the generated hash: the tuple of all fields.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.name, self.op, self.group, self.shape, self.work))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self):
        # String hashes are salted per process: never ship a cached
        # hash through pickle (e.g. to sweep workers).
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"<{self.name} op={self.op} shape={dims}>"


@lru_cache(maxsize=1 << 17)
def make_invocation(
    name: str,
    op: str,
    group: str,
    shape: tuple[int, ...],
    *,
    flops: float,
    work_items: int,
    read_bytes: float,
    write_bytes: float,
    issue_efficiency: float,
    workgroup_size: int = 256,
    l1_reuse_fraction: float = 0.0,
    l1_working_set: float = 0.0,
    l2_reuse_fraction: float = 0.0,
    l2_working_set: float = 0.0,
) -> KernelInvocation:
    """Assemble an invocation from flat parameters.

    Exists so the kernel family modules construct profiles in one
    consistent way instead of each nesting three dataclasses by hand.
    Memoised: invocations are frozen values, every model re-requests
    the same kernels each epoch, and the four nested dataclass
    constructions are a measurable share of lowering time.  A cache hit
    also returns the *identical* object, which lets schedule merging
    and plan compilation short-circuit equality checks.
    """
    work = WorkProfile(
        compute=ComputeProfile(
            flops=flops,
            work_items=work_items,
            issue_efficiency=issue_efficiency,
            workgroup_size=workgroup_size,
        ),
        traffic=TrafficProfile(
            read_bytes=read_bytes,
            write_bytes=write_bytes,
            l1_reuse_fraction=l1_reuse_fraction,
            l1_working_set=l1_working_set,
            l2_reuse_fraction=l2_reuse_fraction,
            l2_working_set=l2_working_set,
        ),
    )
    return KernelInvocation(name=name, op=op, group=group, shape=shape, work=work)
