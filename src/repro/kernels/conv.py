"""Convolution kernels, lowered im2col + GEMM (MIOpen's default path).

A 2-D convolution over a ``[batch, c_in, height, width]`` input becomes:

1. an ``im2col`` expansion kernel that writes the unrolled patch matrix
   (heavy on memory writes — this is where DS2's convolutional front-end
   gets its write-stall signature); followed by
2. a GEMM of ``[c_out, c_in*kh*kw] @ [c_in*kh*kw, batch*out_h*out_w]``.

DS2's two convolutions stride through the *time* axis, so both kernels'
sizes scale with the utterance sequence length.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import LoweringError
from repro.hw.config import HardwareConfig
from repro.kernels.base import FLOAT_BYTES, KernelInvocation, make_invocation
from repro.kernels.gemm import gemm

__all__ = ["Conv2dShape", "conv2d_im2col"]


@dataclass(frozen=True)
class Conv2dShape:
    """Logical convolution problem (NCHW, valid padding handled upstream)."""

    batch: int
    c_in: int
    c_out: int
    in_h: int
    in_w: int
    kernel_h: int
    kernel_w: int
    stride_h: int = 1
    stride_w: int = 1

    def __post_init__(self) -> None:
        if min(
            self.batch, self.c_in, self.c_out, self.in_h, self.in_w,
            self.kernel_h, self.kernel_w, self.stride_h, self.stride_w,
        ) <= 0:
            raise LoweringError(f"conv shape must be positive: {self}")
        if self.kernel_h > self.in_h or self.kernel_w > self.in_w:
            raise LoweringError(
                f"kernel {self.kernel_h}x{self.kernel_w} exceeds input "
                f"{self.in_h}x{self.in_w}"
            )

    @property
    def out_h(self) -> int:
        return (self.in_h - self.kernel_h) // self.stride_h + 1

    @property
    def out_w(self) -> int:
        return (self.in_w - self.kernel_w) // self.stride_w + 1

    @property
    def patch_size(self) -> int:
        return self.c_in * self.kernel_h * self.kernel_w

    @property
    def output_positions(self) -> int:
        return self.batch * self.out_h * self.out_w


@lru_cache(maxsize=1 << 14)
def _im2col(shape: Conv2dShape) -> KernelInvocation:
    """The patch-expansion kernel: read once, write patch_size copies."""
    input_bytes = shape.batch * shape.c_in * shape.in_h * shape.in_w * FLOAT_BYTES
    column_bytes = shape.output_positions * shape.patch_size * FLOAT_BYTES
    # Overlapping patches re-read neighbouring lines; a row of patches is
    # the natural reuse window.
    row_window = shape.c_in * shape.kernel_h * shape.in_w * FLOAT_BYTES
    return make_invocation(
        name=f"im2col_k{shape.kernel_h}x{shape.kernel_w}"
        f"_s{shape.stride_h}x{shape.stride_w}",
        op="im2col",
        group="memops",
        shape=(shape.batch, shape.c_in, shape.in_h, shape.in_w),
        flops=0.0,
        work_items=shape.output_positions * shape.patch_size // 4 + 1,
        read_bytes=column_bytes,  # gathers re-read overlapped input
        write_bytes=column_bytes,
        issue_efficiency=0.5,
        l1_reuse_fraction=0.6,
        l1_working_set=row_window,
        l2_reuse_fraction=0.3,
        l2_working_set=input_bytes,
    )


def conv2d_im2col(
    shape: Conv2dShape, config: HardwareConfig, group: str = "conv"
) -> list[KernelInvocation]:
    """Lower one convolution to its im2col + GEMM kernel pair."""
    column = _im2col(shape)
    matmul = gemm(
        m=shape.c_out,
        n=shape.output_positions,
        k=shape.patch_size,
        config=config,
        group=group,
    )
    return [column, matmul]
