"""Autotune-phase model.

High-level frameworks benchmark every candidate kernel the first time a
new problem shape appears and cache the winner (paper §IV-C2).  For
CNNs that happens once, in the first iteration; for SQNNs new shapes
keep appearing throughout the first *epoch* because every new sequence
length brings new GEMM sizes.

:class:`Autotuner` reproduces both the cost and the once-only behaviour:
``charge(shape)`` returns the time spent trying all variants the first
time a shape is seen and zero afterwards.  The training simulator adds
that cost to the first epoch and the SeqPoint pipeline ignores it, as
the paper prescribes (Key point: autotune runs once, so representative
runs exclude it).
"""

from __future__ import annotations

from repro.hw.config import HardwareConfig
from repro.hw.timing import time_work
from repro.kernels.gemm import GEMM_VARIANTS, build_gemm

__all__ = ["Autotuner"]

#: Candidates are timed once each; libraries prune grossly oversized
#: tiles before ever launching them.
_TRIALS_PER_VARIANT = 1
_PRUNE_FACTOR = 4


def _candidate_variants(m: int, n: int):
    """Variants a library would actually try for this shape."""
    feasible = [
        variant
        for variant in GEMM_VARIANTS
        if variant.tile_m <= m * _PRUNE_FACTOR
        and variant.tile_n <= n * _PRUNE_FACTOR
    ]
    return feasible or list(GEMM_VARIANTS[-1:])


class Autotuner:
    """Tracks which GEMM shapes have been tuned on one device config."""

    def __init__(self, config: HardwareConfig):
        self._config = config
        self._tuned: set[tuple[int, int, int]] = set()
        self._total_cost_s = 0.0

    @property
    def total_cost_s(self) -> float:
        """Cumulative autotune time charged so far."""
        return self._total_cost_s

    @property
    def shapes_tuned(self) -> int:
        return len(self._tuned)

    def charge(self, m: int, n: int, k: int) -> float:
        """Cost of tuning this shape now (0 if already tuned)."""
        shape = (m, n, k)
        if shape in self._tuned:
            return 0.0
        self._tuned.add(shape)
        cost = 0.0
        for variant in _candidate_variants(m, n):
            candidate = build_gemm(variant, m, n, k)
            elapsed, _, _ = time_work(candidate.work, self._config)
            cost += elapsed * _TRIALS_PER_VARIANT
        self._total_cost_s += cost
        return cost

    def reset(self) -> None:
        """Forget all tuned shapes (a fresh process/training run)."""
        self._tuned.clear()
        self._total_cost_s = 0.0
