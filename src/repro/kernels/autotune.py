"""Autotune-phase model.

High-level frameworks benchmark every candidate kernel the first time a
new problem shape appears and cache the winner (paper §IV-C2).  For
CNNs that happens once, in the first iteration; for SQNNs new shapes
keep appearing throughout the first *epoch* because every new sequence
length brings new GEMM sizes.

:class:`Autotuner` reproduces both the cost and the once-only behaviour:
``charge(shape)`` returns the time spent trying all variants the first
time a shape is seen and zero afterwards.  The training simulator adds
that cost to the first epoch and the SeqPoint pipeline ignores it, as
the paper prescribes (Key point: autotune runs once, so representative
runs exclude it).

``batched=True`` charges through the vectorized candidate race
(:func:`repro.kernels.gemm.candidate_times`) instead of materialising
and timing each candidate invocation in Python; the accumulated cost is
bit-identical (the race rows are bit-identical per candidate and the
reduction replays the reference loop's left-to-right accumulation).
"""

from __future__ import annotations

from repro.hw.config import HardwareConfig
from repro.hw.timing import time_work
from repro.kernels.gemm import GEMM_VARIANTS, build_gemm, candidate_times
from repro.util.stats import sequential_sum

__all__ = ["Autotuner"]

#: Candidates are timed once each; libraries prune grossly oversized
#: tiles before ever launching them.
_TRIALS_PER_VARIANT = 1
_PRUNE_FACTOR = 4


def _candidate_indices(m: int, n: int) -> list[int]:
    """Indices into :data:`GEMM_VARIANTS` a library would try here."""
    feasible = [
        index
        for index, variant in enumerate(GEMM_VARIANTS)
        if variant.tile_m <= m * _PRUNE_FACTOR
        and variant.tile_n <= n * _PRUNE_FACTOR
    ]
    return feasible or [len(GEMM_VARIANTS) - 1]


def _candidate_variants(m: int, n: int):
    """Variants a library would actually try for this shape.

    Derived from :func:`_candidate_indices` so the scalar and batched
    autotune paths can never disagree on the pruning rule.
    """
    return [GEMM_VARIANTS[index] for index in _candidate_indices(m, n)]


class Autotuner:
    """Tracks which GEMM shapes have been tuned on one device config."""

    def __init__(self, config: HardwareConfig, batched: bool = False):
        self._config = config
        self._batched = batched
        self._tuned: set[tuple[int, int, int]] = set()
        self._total_cost_s = 0.0

    @property
    def total_cost_s(self) -> float:
        """Cumulative autotune time charged so far."""
        return self._total_cost_s

    @property
    def shapes_tuned(self) -> int:
        return len(self._tuned)

    def charge(self, m: int, n: int, k: int) -> float:
        """Cost of tuning this shape now (0 if already tuned)."""
        shape = (m, n, k)
        if shape in self._tuned:
            return 0.0
        self._tuned.add(shape)
        if self._batched:
            cost = self._charge_batched(m, n, k)
        else:
            cost = self._charge_reference(m, n, k)
        self._total_cost_s += cost
        return cost

    def _charge_reference(self, m: int, n: int, k: int) -> float:
        """The scalar candidate loop — the bit-identity reference."""
        cost = 0.0
        for variant in _candidate_variants(m, n):
            candidate = build_gemm(variant, m, n, k)
            elapsed, _, _ = time_work(candidate.work, self._config)
            cost += elapsed * _TRIALS_PER_VARIANT
        return cost

    def _charge_batched(self, m: int, n: int, k: int) -> float:
        """Vectorized charge: one race over all variants, then the
        pruned subset accumulated in reference (left-to-right) order."""
        times = candidate_times(m, n, k, self._config)
        return sequential_sum(times[_candidate_indices(m, n)] * _TRIALS_PER_VARIANT)

    def reset(self) -> None:
        """Forget all tuned shapes (a fresh process/training run)."""
        self._tuned.clear()
        self._total_cost_s = 0.0
