"""Setup shim: enables legacy editable installs (`pip install -e .
--no-use-pep517`) on machines without the `wheel` package (offline
environments).  All metadata lives in pyproject.toml; the console
script (`repro = repro.cli:main`) is declared there too.
"""

from setuptools import setup

setup()
