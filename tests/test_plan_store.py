"""Cross-process plan store: fingerprints, persistence, concurrency.

The store must hand back plans that are bit-identical to freshly
compiled ones, key strictly on structural fingerprints, coordinate
racing processes down to exactly one lowering per unique plan, and
scope cleanly when attached to the process-global PLAN_CACHE.
"""

import multiprocessing
import os
from pathlib import Path

import numpy as np
import pytest

from repro.hw.config import paper_config
from repro.models.cnn import CnnModel
from repro.models.convs2s import ConvS2SModel
from repro.models.ds2 import Ds2Model
from repro.models.gnmt import GnmtModel
from repro.models.plan import PLAN_CACHE, PlanCache, PlanStore, compile_plan
from repro.models.spec import IterationInputs, Model
from repro.models.transformer import TransformerModel


def tiny_plan():
    model = TransformerModel(vocab=64, hidden=8, layers=2, heads=2)
    inputs = IterationInputs(batch=2, seq_len=8, tgt_len=None)
    return compile_plan(model.lower_iteration(inputs, paper_config(1)))


def assert_plans_equal(left, right):
    for name in ("counts", "group_id", "name_id"):
        assert np.array_equal(getattr(left, name), getattr(right, name))
    for name in (
        "flops", "work_items", "issue_efficiency", "workgroup_size",
        "read_bytes", "write_bytes", "l1_reuse_fraction", "l1_working_set",
        "l2_reuse_fraction", "l2_working_set",
    ):
        a, b = getattr(left.work, name), getattr(right.work, name)
        assert a.dtype == b.dtype
        assert np.array_equal(a, b)
    assert left.groups == right.groups
    assert left.names == right.names
    assert left.gemm_shapes == right.gemm_shapes


class TestFingerprints:
    def test_builtin_models_are_store_eligible(self):
        models = [
            GnmtModel(), Ds2Model(), TransformerModel(), ConvS2SModel(),
            CnnModel(),
        ]
        fingerprints = [model.plan_fingerprint() for model in models]
        assert all(fp is not None for fp in fingerprints)
        # Family-discriminated: no two builtins collide.
        assert len({PlanStore.key_for(fp) for fp in fingerprints}) == 5

    def test_default_is_opted_out(self):
        class Opaque(Model):
            def __init__(self):
                super().__init__("opaque")

            def lower_iteration(self, inputs, config):
                raise NotImplementedError

            def lower_forward(self, inputs, config):
                raise NotImplementedError

            def param_count(self):
                return 0

        assert Opaque().plan_fingerprint() is None

    def test_hyperparameters_change_the_fingerprint(self):
        base = TransformerModel().plan_fingerprint()
        assert TransformerModel(heads=8).plan_fingerprint() != base
        assert TransformerModel(layers=6).plan_fingerprint() != base
        assert GnmtModel(encoder_layers=4).plan_fingerprint() != (
            GnmtModel().plan_fingerprint()
        )

    def test_equal_models_share_a_key(self):
        assert PlanStore.key_for(GnmtModel().plan_fingerprint()) == (
            PlanStore.key_for(GnmtModel().plan_fingerprint())
        )


class TestPlanStore:
    def test_round_trip_bit_identity(self, tmp_path):
        store = PlanStore(tmp_path)
        plan = tiny_plan()
        fingerprint = {"model": "tiny", "kind": "train"}
        stored = store.get_or_compute(fingerprint, lambda: plan)
        assert stored is plan  # the miss returns the built object
        loaded = store.get_or_compute(
            fingerprint, lambda: pytest.fail("must not rebuild")
        )
        assert_plans_equal(plan, loaded)
        assert store.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_loaded_plan_times_bit_identically(self, tmp_path):
        from repro.hw.device import GpuDevice

        store = PlanStore(tmp_path)
        plan = tiny_plan()
        store.get_or_compute({"k": 1}, lambda: plan)
        loaded = store.get_or_compute({"k": 1}, lambda: pytest.fail("rebuild"))
        ours = GpuDevice(paper_config(1)).run_batch(plan.work)
        theirs = GpuDevice(paper_config(1)).run_batch(loaded.work)
        assert np.array_equal(ours.time_s, theirs.time_s)

    def test_distinct_fingerprints_distinct_artefacts(self, tmp_path):
        store = PlanStore(tmp_path)
        plan = tiny_plan()
        store.get_or_compute({"k": 1}, lambda: plan)
        store.get_or_compute({"k": 2}, lambda: plan)
        assert store.stats()["entries"] == 2


class TestPlanCacheIntegration:
    def test_attach_store_returns_previous(self, tmp_path):
        cache = PlanCache()
        store = PlanStore(tmp_path)
        assert cache.attach_store(store) is None
        assert cache.attach_store(None) is store

    def test_miss_with_fingerprint_uses_store(self, tmp_path):
        plan = tiny_plan()
        writer = PlanCache()
        writer.attach_store(PlanStore(tmp_path))
        writer.get_or_compile(("k",), lambda: plan, fingerprint={"f": 1})

        # A different process-local cache over the same store loads the
        # artefact instead of compiling.
        reader = PlanCache()
        store = PlanStore(tmp_path)
        reader.attach_store(store)
        loaded = reader.get_or_compile(
            ("k",), lambda: pytest.fail("must not compile"), fingerprint={"f": 1}
        )
        assert_plans_equal(plan, loaded)
        assert store.stats()["hits"] == 1
        # Memory hit thereafter: same object, store untouched.
        again = reader.get_or_compile(("k",), lambda: pytest.fail("compile"))
        assert again is loaded
        assert store.stats()["hits"] == 1

    def test_no_fingerprint_skips_store(self, tmp_path):
        cache = PlanCache()
        cache.attach_store(PlanStore(tmp_path))
        cache.get_or_compile(("k",), tiny_plan)
        assert not list(Path(tmp_path).glob("*.npt"))

    def test_stats_shape_unchanged(self):
        cache = PlanCache()
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 0}


def _store_worker(directory, barrier, results):
    """Race two processes on one fingerprint; count real lowerings."""
    from repro.models.plan import PlanStore

    store = PlanStore(directory)
    fingerprint = {"model": {"family": "tiny"}, "kind": "train"}

    def build():
        (Path(directory) / f"lowered.{os.getpid()}").touch()
        return tiny_plan()

    barrier.wait(timeout=30)
    plan = store.get_or_compute(fingerprint, build)
    results.put({"stats": store.stats(), "launches": plan.launch_count})


class TestConcurrency:
    def test_two_processes_one_lowering(self, tmp_path):
        context = multiprocessing.get_context("spawn")
        barrier = context.Barrier(2)
        results = context.Queue()
        workers = [
            context.Process(
                target=_store_worker, args=(str(tmp_path), barrier, results)
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        outcomes = [results.get(timeout=60) for _ in workers]
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0

        # Exactly one process lowered; the loser loaded the artefact.
        assert len(list(tmp_path.glob("lowered.*"))) == 1
        counted = sorted(
            (o["stats"]["hits"], o["stats"]["misses"]) for o in outcomes
        )
        assert counted == [(0, 1), (1, 0)]
        assert outcomes[0]["launches"] == outcomes[1]["launches"]


class TestSweepIntegration:
    def test_serial_sweep_populates_and_detaches(self, tmp_path):
        from repro.api import SweepSpec, run_sweep

        sweep = SweepSpec(networks=("gnmt",), scales=(0.01,))
        store_dir = tmp_path / "plans"
        PLAN_CACHE.clear()  # force memory misses so the store is consulted
        run = run_sweep(
            sweep, mode="serial", cache_dir=tmp_path / "traces",
            plan_store_dir=store_dir,
        )
        assert len(run.results) == 1
        assert list(store_dir.glob("*.npt"))  # lowerings persisted
        # The sweep-scoped store did not leak into the global cache.
        assert PLAN_CACHE.attach_store(None) is None

    def test_warm_store_serves_identical_results(self, tmp_path):
        from repro.api import SweepSpec, run_sweep

        sweep = SweepSpec(networks=("gnmt",), scales=(0.01,))
        store_dir = tmp_path / "plans"
        PLAN_CACHE.clear()
        cold = run_sweep(
            sweep, mode="serial", cache_dir=tmp_path / "a",
            plan_store_dir=store_dir,
        )
        artefacts = {
            path.name: path.stat().st_mtime_ns
            for path in store_dir.glob("*.npt")
        }
        PLAN_CACHE.clear()  # warm run must go back through the store
        warm = run_sweep(
            sweep, mode="serial", cache_dir=tmp_path / "b",
            plan_store_dir=store_dir,
        )
        assert [r.to_dict() for r in warm.results] == [
            r.to_dict() for r in cold.results
        ]
        # Warm run loaded every plan: no artefact was rewritten.
        assert {
            path.name: path.stat().st_mtime_ns
            for path in store_dir.glob("*.npt")
        } == artefacts
