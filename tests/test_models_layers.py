"""Unit tests for dense, embedding, conv2d, and batchnorm layers."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.config import paper_config
from repro.models.layers.batchnorm import BatchNormLayer
from repro.models.layers.conv2d import Conv2dLayer
from repro.models.layers.dense import DenseLayer
from repro.models.layers.embedding import EmbeddingLayer

CONFIG = paper_config(1)


class TestDenseLayer:
    def test_forward_gemm_table1_shape(self):
        layer = DenseLayer("classifier", in_features=1024, out_features=36549)
        kernels = list(layer.forward(batch=64, steps=94, config=CONFIG))
        gemm_inv = kernels[0][0]
        # Table I GEMM-a: M=vocab, N=batch*steps, K=hidden.
        assert gemm_inv.shape == (36549, 64 * 94, 1024)

    def test_backward_has_dgrad_and_wgrad(self):
        layer = DenseLayer("fc", 128, 64)
        shapes = [inv.shape for inv, _ in layer.backward(8, 4, CONFIG)
                  if inv.op == "gemm"]
        assert (128, 32, 64) in shapes   # dX = W^T dY
        assert (64, 128, 32) in shapes   # dW

    def test_param_count_includes_bias(self):
        assert DenseLayer("fc", 10, 5).param_count() == 5 * 11

    def test_invalid_features_rejected(self):
        with pytest.raises(ConfigurationError):
            DenseLayer("fc", 0, 5)


class TestEmbeddingLayer:
    def test_forward_token_count(self):
        layer = EmbeddingLayer("emb", vocab=1000, hidden=64)
        [(inv, count)] = list(layer.forward(batch=4, steps=10, config=CONFIG))
        assert inv.shape == (40, 64, 1000)
        assert count == 1

    def test_param_count(self):
        assert EmbeddingLayer("emb", 1000, 64).param_count() == 64_000

    def test_steps_identity(self):
        assert EmbeddingLayer("emb", 10, 4).out_steps(17) == 17


class TestConv2dLayer:
    def ds2_conv1(self) -> Conv2dLayer:
        return Conv2dLayer(
            "conv1", c_in=1, c_out=32, height=161,
            kernel_h=41, kernel_w=11, stride_h=2, stride_w=2,
            pad_h=20, pad_w=5,
        )

    def test_out_steps_halved(self):
        # SL 804 -> 402 post-conv: the Table I N=25728 driver.
        assert self.ds2_conv1().out_steps(804) == 402

    def test_out_height(self):
        assert self.ds2_conv1().out_height == 81

    def test_forward_kernel_kinds(self):
        ops = [inv.op for inv, _ in self.ds2_conv1().forward(64, 100, CONFIG)]
        assert ops == ["im2col", "gemm", "bias_relu"]

    def test_backward_kernel_kinds(self):
        ops = [inv.op for inv, _ in self.ds2_conv1().backward(64, 100, CONFIG)]
        assert ops.count("gemm") == 2
        assert "relu_grad" in ops

    def test_param_count(self):
        assert self.ds2_conv1().param_count() == 32 * (41 * 11 + 1)


class TestBatchNormLayer:
    def test_forward_kernels(self):
        layer = BatchNormLayer("bn", channels=32, spatial_per_step=81)
        ops = [inv.op for inv, _ in layer.forward(64, 100, CONFIG)]
        assert ops == ["bn_mean", "bn_var", "bn_norm"]

    def test_span_scales_with_steps(self):
        layer = BatchNormLayer("bn", channels=32, spatial_per_step=81)
        short = list(layer.forward(64, 10, CONFIG))
        long_ = list(layer.forward(64, 100, CONFIG))
        assert long_[0][0].shape[1] == 10 * short[0][0].shape[1]

    def test_param_count(self):
        assert BatchNormLayer("bn", 32, 81).param_count() == 64

    def test_invalid_channels_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchNormLayer("bn", 0, 81)
