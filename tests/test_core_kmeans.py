"""Unit tests for the k-means alternative (paper §VII-C)."""

import numpy as np
import pytest

from repro.core.kmeans import KMeansSelector, kmeans_cluster
from repro.errors import SelectionError
from tests.conftest import make_record, make_trace
from repro.train.trace import TrainingTrace


class TestKMeansCluster:
    def test_separates_obvious_clusters(self):
        features = np.array(
            [[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [5.0, 5.0], [5.1, 5.0], [5.0, 5.1]]
        )
        labels = kmeans_cluster(features, 2, seed=0)
        assert len(set(labels[:3])) == 1
        assert len(set(labels[3:])) == 1
        assert labels[0] != labels[3]

    def test_deterministic_per_seed(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(50, 3))
        assert np.array_equal(
            kmeans_cluster(features, 4, seed=7), kmeans_cluster(features, 4, seed=7)
        )

    def test_k_equals_n(self):
        features = np.array([[0.0], [1.0], [2.0]])
        labels = kmeans_cluster(features, 3, seed=0)
        assert len(set(labels)) == 3

    def test_k_exceeding_n_rejected(self):
        with pytest.raises(SelectionError):
            kmeans_cluster(np.zeros((2, 2)), 3)

    def test_invalid_k_rejected(self):
        with pytest.raises(SelectionError):
            kmeans_cluster(np.zeros((2, 2)), 0)


class TestKMeansSelector:
    def group_trace(self) -> TrainingTrace:
        """Two distinct execution-profile populations."""
        trace = make_trace([])
        index = 0
        for sl in (10, 12, 14):
            trace.records.append(
                make_record(index, sl, 1.0, group_times={"GEMM-1": 0.9, "reduce": 0.1})
            )
            index += 1
        for sl in (90, 95, 99):
            trace.records.append(
                make_record(index, sl, 5.0, group_times={"GEMM-1": 0.2, "reduce": 4.8})
            )
            index += 1
        return trace

    def test_clusters_by_profile(self):
        selection = KMeansSelector(k=2, seed=0).select(self.group_trace())
        assert len(selection) == 2
        picked = sorted(selection.seq_lens)
        assert picked[0] <= 14 and picked[1] >= 90

    def test_weights_cover_epoch(self):
        selection = KMeansSelector(k=2, seed=0).select(self.group_trace())
        assert selection.total_weight == 6.0

    def test_k_clamped_to_unique_sls(self):
        selection = KMeansSelector(k=50, seed=0).select(self.group_trace())
        assert len(selection) <= 6

    def test_invalid_k_rejected(self):
        with pytest.raises(SelectionError):
            KMeansSelector(k=0)
