"""Unit tests for repro.core.projection."""

import pytest

from repro.core.projection import (
    project_average,
    project_total,
    uplift_pct,
)
from repro.core.selection import SelectedPoint, Selection
from repro.errors import ProjectionError
from tests.conftest import make_record


def selection() -> Selection:
    return Selection(
        "m",
        (
            SelectedPoint(record=make_record(0, 10, 1.0), weight=4.0),
            SelectedPoint(record=make_record(1, 20, 2.0), weight=6.0),
        ),
    )


class TestProjection:
    def test_total_is_equation_one(self):
        projected = project_total(selection(), lambda p: p.record.time_s)
        assert projected == pytest.approx(4.0 * 1.0 + 6.0 * 2.0)

    def test_average_normalised(self):
        projected = project_average(selection(), lambda p: p.record.time_s)
        assert projected == pytest.approx(16.0 / 10.0)

    def test_stat_callable_sees_points(self):
        projected = project_total(selection(), lambda p: float(p.seq_len))
        assert projected == pytest.approx(4 * 10 + 6 * 20)


class TestUplift:
    def test_positive_uplift(self):
        assert uplift_pct(100.0, 150.0) == pytest.approx(50.0)

    def test_negative_uplift(self):
        assert uplift_pct(100.0, 80.0) == pytest.approx(-20.0)

    def test_identity_zero(self):
        assert uplift_pct(42.0, 42.0) == 0.0

    def test_zero_base_rejected(self):
        with pytest.raises(ProjectionError):
            uplift_pct(0.0, 1.0)
