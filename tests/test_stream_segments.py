"""Unit tests for quasi-stationary segmentation (repro.stream.segments)."""

import pytest

from repro.api import SELECTORS
from repro.core.baselines import MedianSelector
from repro.core.seqpoint import SeqPointResult, SeqPointSelector
from repro.errors import ConfigurationError
from repro.stream import (
    Segment,
    SegmentedResult,
    SegmentedSelector,
    StreamSegmenter,
    StreamingIdentifier,
    replay,
    segment_frame,
)
from repro.train.trace import TrainingTrace
from tests.conftest import make_record, make_trace

#: A stationary cycle (regime A) and a disjoint, slower one (regime B).
REGIME_A = [(10, 0.1), (20, 0.2), (30, 0.3), (40, 0.4)]
REGIME_B = [(110, 1.1), (120, 1.2), (130, 1.3), (140, 1.4)]


def two_regime_frame(a_repeats: int = 20, b_repeats: int = 20):
    return make_trace(REGIME_A * a_repeats + REGIME_B * b_repeats).frame()


def monotone_frame(steps: int = 6, run: int = 32):
    """SortaGrad in miniature: each SL block strictly after the last."""
    pairs = []
    for step in range(steps):
        pairs += [(10 * (step + 1), 0.1 * (step + 1))] * run
    return make_trace(pairs).frame()


def epoch_trace(pairs_by_epoch: list[list[tuple[int, float]]]) -> TrainingTrace:
    trace = TrainingTrace(
        model_name="toy",
        dataset_name="synthetic",
        config_name="config#1",
        batch_size=64,
    )
    index = 0
    for epoch, pairs in enumerate(pairs_by_epoch):
        for seq_len, time_s in pairs:
            trace.records.append(
                make_record(index, seq_len, time_s, epoch=epoch)
            )
            index += 1
    return trace


class TestSegment:
    def test_validates_bounds(self):
        assert Segment(0, 4).iterations == 4
        with pytest.raises(ConfigurationError):
            Segment(4, 4)
        with pytest.raises(ConfigurationError):
            Segment(-1, 4)


class TestStreamSegmenter:
    def test_stationary_stream_stays_one_segment(self):
        frame = make_trace(REGIME_A * 40).frame()
        segments = segment_frame(frame, cadence=8)
        assert segments == (Segment(0, len(frame)),)

    def test_regime_change_fires_one_changepoint(self):
        frame = two_regime_frame()  # switch at iteration 80
        segments = segment_frame(frame, cadence=8, min_segment=16)
        assert len(segments) == 2
        assert segments[0].stop == segments[1].start == 80

    def test_monotone_stream_fires_several(self):
        frame = monotone_frame(steps=6, run=32)
        segments = segment_frame(frame, cadence=8, min_segment=16)
        assert len(segments) >= 4
        # A covering, contiguous partition.
        assert segments[0].start == 0
        assert segments[-1].stop == len(frame)
        for left, right in zip(segments, segments[1:]):
            assert left.stop == right.start
            assert left.iterations >= 16

    def test_boundaries_invariant_under_prefix_growth(self):
        """Online replay on growing prefixes never moves a fired cut."""
        frame = monotone_frame(steps=6, run=32)
        offline = segment_frame(frame, cadence=8, min_segment=16)
        segmenter = StreamSegmenter(cadence=8, min_segment=16)
        seen: list[int] = []
        for upto in range(0, len(frame) + 1, 5):
            before = segmenter.changepoints
            seen += segmenter.observe(frame, upto=upto)
            assert segmenter.changepoints[: len(before)] == before
        segmenter.observe(frame)
        assert tuple(seen) == segmenter.changepoints
        edges = (0,) + segmenter.changepoints + (len(frame),)
        assert offline == tuple(
            Segment(a, b) for a, b in zip(edges, edges[1:])
        )

    def test_min_segment_floors_every_closed_segment(self):
        frame = monotone_frame(steps=8, run=24)
        for seg in segment_frame(frame, cadence=8, min_segment=24)[:-1]:
            assert seg.iterations >= 24

    def test_observe_past_frame_rejected(self):
        frame = make_trace(REGIME_A * 4).frame()
        with pytest.raises(ConfigurationError, match="past"):
            StreamSegmenter(cadence=4).observe(frame, upto=len(frame) + 1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cadence": 0},
            {"cadence": 1.5},
            {"hazard": 0.0},
            {"threshold": -1.0},
            {"drift_rtol": 0.0},
            {"min_segment": 0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            StreamSegmenter(**kwargs)


class TestSegmentedSelector:
    def test_single_segment_is_a_pure_pass_through(self):
        frame = make_trace(REGIME_A * 40).frame()
        base = SeqPointSelector()
        plain = base.select(frame)
        wrapped = SegmentedSelector(base, cadence=8).select(frame)
        assert not isinstance(wrapped, SegmentedResult)
        assert wrapped.projected_total_s == plain.projected_total_s
        assert wrapped.identification_error_pct == plain.identification_error_pct
        assert [
            (p.seq_len, p.weight, p.record.time_s)
            for p in wrapped.selection.points
        ] == [
            (p.seq_len, p.weight, p.record.time_s)
            for p in plain.selection.points
        ]

    def test_multi_segment_combines_mass_and_accounting(self):
        frame = two_regime_frame()
        out = SegmentedSelector(
            SeqPointSelector(), cadence=8, min_segment=16
        ).select(frame)
        assert isinstance(out, SegmentedResult)
        assert isinstance(out, SeqPointResult)  # engine branches still hold
        assert len(out.segments) == 2
        assert out.open_segment is out.segments[-1]
        # Projection mass spans the whole trace, split at the boundary.
        assert sum(p.weight for p in out.selection.points) == pytest.approx(
            len(frame)
        )
        assert sum(s.iterations for s in out.segments) == len(frame)
        assert out.actual_total_s == pytest.approx(
            sum(s.actual_total_s for s in out.segments)
        )
        # Both regimes are exactly representable, so the per-segment
        # projections reproduce the frame's actual total.
        assert out.projected_total_s == pytest.approx(frame.total_time_s)
        assert abs(out.identification_error_pct) < 1e-9
        assert out.selection.method == "segmented[seqpoint]"

    def test_plain_selection_bases_are_supported(self):
        frame = two_regime_frame()
        out = SegmentedSelector(
            MedianSelector(), cadence=8, min_segment=16
        ).select(frame)
        assert isinstance(out, SegmentedResult)
        assert out.k == 0
        assert len(out.segments) == 2
        assert out.selection.method == "segmented[median]"

    def test_junk_base_outcome_rejected(self):
        class Junk:
            def select(self, trace):
                return 42

        frame = two_regime_frame()
        with pytest.raises(ConfigurationError, match="Selection"):
            SegmentedSelector(Junk(), cadence=8, min_segment=16).select(frame)

    def test_base_must_expose_select(self):
        with pytest.raises(ConfigurationError, match="select"):
            SegmentedSelector(object())

    def test_decay_renormalises_to_full_mass(self):
        frame = two_regime_frame()
        out = SegmentedSelector(
            SeqPointSelector(),
            cadence=8,
            min_segment=16,
            decay=0.5,
        ).select(frame)
        # Older segments' points shrink, recent ones grow, total mass
        # still spans the trace.
        assert sum(p.weight for p in out.selection.points) == pytest.approx(
            len(frame)
        )
        early = sum(
            p.weight for p in out.selection.points if p.seq_len <= 40
        )
        late = sum(
            p.weight for p in out.selection.points if p.seq_len >= 110
        )
        assert late > early
        # Summaries keep the unscaled per-segment projections.
        assert out.segments[-1].mean_iteration_s == pytest.approx(1.25)

    def test_split_epochs_forces_phase_boundaries(self):
        # Two stationary epochs the detector alone would merge (same
        # SLs, same runtimes) must still split at the epoch boundary.
        trace = epoch_trace([REGIME_A * 10, REGIME_A * 10])
        out = SegmentedSelector(
            SeqPointSelector(),
            cadence=8,
            min_segment=8,
            split_epochs=True,
        ).select(trace.frame())
        assert isinstance(out, SegmentedResult)
        assert [(s.start, s.stop) for s in out.segments] == [(0, 40), (40, 80)]
        assert out.selection.method == "segmented-drift[seqpoint]"

    def test_invalid_decay_rejected(self):
        for decay in (0.0, -0.5, 1.5, "half"):
            with pytest.raises(ConfigurationError):
                SegmentedSelector(SeqPointSelector(), decay=decay)


class TestRegistry:
    def test_segmented_factory_builds_the_wrapper(self):
        selector = SELECTORS.create("segmented", cadence=8, min_segment=16)
        assert isinstance(selector, SegmentedSelector)
        assert selector.method == "segmented[seqpoint]"
        assert selector.min_segment == 16
        assert not selector.split_epochs

    def test_segmented_drift_factory(self):
        selector = SELECTORS.create("segmented-drift", base="median")
        assert isinstance(selector, SegmentedSelector)
        assert selector.split_epochs
        assert selector.decay == 0.5
        assert selector.method == "segmented-drift[median]"

    def test_base_kwargs_forward_to_the_base_selector(self):
        selector = SELECTORS.create("segmented", base="kmeans", k=3)
        assert selector.base.k == 3

    def test_bad_kwargs_rejected(self):
        with pytest.raises(ConfigurationError):
            SELECTORS.create("segmented", cadence=0)
        with pytest.raises(ConfigurationError):
            SELECTORS.create("segmented", base="no-such-selector")


class TestSessionIntegration:
    def test_segmented_converges_where_the_plain_guard_refuses(self):
        # Monotone stream with a long terminal plateau: the plain
        # guard's running means never settle, the segmenter's open
        # (terminal) segment does.
        pairs = []
        for step in range(5):
            pairs += [(10 * (step + 1), 0.1 * (step + 1))] * 16
        pairs += [(60, 0.6)] * 120
        frame = make_trace(pairs).frame()
        knobs = dict(cadence=8, patience=3, rtol=0.01, drift_rtol=0.05)
        plain = StreamingIdentifier(SeqPointSelector(), **knobs).run(
            replay(frame, chunk_size=7)
        )
        segmented = StreamingIdentifier(
            SELECTORS.create("segmented", cadence=8, min_segment=16), **knobs
        ).run(replay(frame, chunk_size=7))
        assert not plain.converged
        assert segmented.converged
        assert segmented.iterations_consumed < len(frame)
        assert segmented.segments, "the run must report its segments"
        # Drift-aware projection prices the tail at the open segment's
        # rate (0.6 s/iteration), not the cheap early mean.
        projected = segmented.project_epoch_time(len(frame))
        assert projected == pytest.approx(frame.total_time_s, rel=0.02)

    def test_segment_closures_reset_and_count_monotonically(self):
        frame = monotone_frame(steps=6, run=32)
        run = StreamingIdentifier(
            SELECTORS.create("segmented", cadence=8, min_segment=16),
            cadence=8,
            patience=100,  # never converge: observe every check
        ).run(replay(frame))
        closed = [c.segments_closed for c in run.checks]
        assert closed == sorted(closed)
        assert closed[-1] >= 3
        for previous, check in zip(run.checks, run.checks[1:]):
            if check.segments_closed != previous.segments_closed:
                assert check.drift_reset
                assert check.stable_checks == 0
            if check.segments_closed:
                assert check.open_segment_mean_s is not None

    def test_stationary_session_is_bit_identical_to_plain(self):
        frame = make_trace(REGIME_A * 40).frame()
        knobs = dict(cadence=20, patience=3, rtol=0.05)
        plain = StreamingIdentifier(SeqPointSelector(), **knobs).run(
            replay(frame, chunk_size=7)
        )
        wrapped = StreamingIdentifier(
            SELECTORS.create("segmented", cadence=20), **knobs
        ).run(replay(frame, chunk_size=7))
        assert wrapped.converged == plain.converged
        assert wrapped.iterations_consumed == plain.iterations_consumed
        assert wrapped.segments == ()
        assert [c.to_dict() for c in wrapped.checks] == [
            c.to_dict() for c in plain.checks
        ]
        assert [
            (p.seq_len, p.weight, p.record.time_s)
            for p in wrapped.selection.points
        ] == [
            (p.seq_len, p.weight, p.record.time_s)
            for p in plain.selection.points
        ]
