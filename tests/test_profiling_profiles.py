"""Unit tests for repro.profiling.profiles."""

import pytest

from repro.errors import TraceError
from repro.profiling.profiles import ExecutionProfile


def profile() -> ExecutionProfile:
    p = ExecutionProfile()
    p.record("gemm_a", "GEMM-1", time_s=0.6, flops=1e9, launches=2)
    p.record("gemm_b", "GEMM-2", time_s=0.3, flops=5e8, launches=10)
    p.record("relu", "scalar-op", time_s=0.1, flops=1e6, launches=3)
    return p


class TestExecutionProfile:
    def test_totals(self):
        p = profile()
        assert p.total_time_s == pytest.approx(1.0)
        assert p.total_launches == 15

    def test_accumulates_same_kernel(self):
        p = profile()
        p.record("gemm_a", "GEMM-1", time_s=0.4, flops=1e9, launches=1)
        assert p.kernels[("gemm_a", "GEMM-1")].time_s == pytest.approx(1.0)
        assert p.kernels[("gemm_a", "GEMM-1")].launches == 3

    def test_same_kernel_two_groups_kept_separate(self):
        p = ExecutionProfile()
        p.record("gemm_x", "GEMM-1", time_s=0.5, flops=1.0)
        p.record("gemm_x", "GEMM-2", time_s=0.5, flops=1.0)
        assert len(p.kernels) == 2
        assert p.unique_kernel_names() == {"gemm_x"}

    def test_group_shares_sum_to_one(self):
        shares = profile().runtime_share_by_group()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["GEMM-1"] == pytest.approx(0.6)

    def test_kernel_shares(self):
        shares = profile().runtime_share_by_kernel()
        assert shares["gemm_b"] == pytest.approx(0.3)

    def test_top_kernels_ranked(self):
        top = profile().top_kernels(2)
        assert [stat.name for stat in top] == ["gemm_a", "gemm_b"]

    def test_empty_profile_shares_raise(self):
        with pytest.raises(TraceError):
            ExecutionProfile().runtime_share_by_group()
