"""Streaming <-> batch equivalence on simulated epochs.

Two guarantees, asserted on real (tiny-scale) GNMT and DS2 traces:

* :class:`StreamingSlStatistics` fed in any chunking is bit-identical
  to the batch ``SlStatistics`` of the same prefix;
* a fully consumed stream reproduces :meth:`AnalysisEngine.run` exactly
  across models x selectors x seeds.
"""

import pytest

from repro.api import AnalysisEngine, AnalysisSpec
from repro.core.sl_stats import SlStatistics
from repro.stream import (
    StreamSpec,
    StreamingIdentifier,
    StreamingSlStatistics,
    TraceReplayFeed,
)
from repro.train.frame import TraceFrame

SCALE = 0.01


@pytest.fixture(scope="module")
def engine() -> AnalysisEngine:
    return AnalysisEngine()


def batch_prefix_stats(engine, spec, m):
    """The batch group-by of the epoch's first ``m`` iterations."""
    trace = engine.trace_for(spec)
    frame = engine.frame_for(spec)
    prefix = TraceFrame.from_records(
        model_name=frame.model_name,
        dataset_name=frame.dataset_name,
        config_name=frame.config_name,
        batch_size=frame.batch_size,
        records=trace.records[:m],
    )
    return SlStatistics.from_trace(prefix)


class TestChunkingBitIdentity:
    @pytest.mark.parametrize("network", ["gnmt", "ds2"])
    def test_chunk_sizes_agree_with_batch(self, engine, network):
        spec = AnalysisSpec(network=network, scale=SCALE)
        frame = engine.frame_for(spec)
        expected = SlStatistics.from_trace(frame)
        for chunk_size in (1, 7, len(frame)):
            stats = StreamingSlStatistics.for_frame(frame)
            for piece in TraceReplayFeed(frame, chunk_size=chunk_size):
                stats.absorb_frame(piece.frame, piece.start, piece.stop)
            assert stats.statistics() == expected, chunk_size

    @pytest.mark.parametrize("network", ["gnmt", "ds2"])
    def test_every_prefix_matches_batch(self, engine, network):
        spec = AnalysisSpec(network=network, scale=SCALE)
        frame = engine.frame_for(spec)
        stats = StreamingSlStatistics.for_frame(frame)
        for stop in range(1, len(frame) + 1):
            stats.absorb_frame(frame, stop - 1, stop)
            if stop % 7 == 0 or stop == len(frame):
                assert stats.statistics() == batch_prefix_stats(
                    engine, spec, stop
                ), stop

    def test_record_feed_matches_frame_feed(self, engine):
        spec = AnalysisSpec(network="gnmt", scale=SCALE)
        frame = engine.frame_for(spec)
        via_records = StreamingSlStatistics.for_frame(frame)
        via_records.absorb_many(engine.trace_for(spec).records)
        via_frame = StreamingSlStatistics.for_frame(frame)
        via_frame.absorb_frame(frame, 0, len(frame))
        assert via_records.statistics() == via_frame.statistics()


class TestFullConsumptionReproducesBatch:
    @pytest.mark.parametrize("network", ["gnmt", "ds2"])
    @pytest.mark.parametrize("selector", ["seqpoint", "frequent", "kmeans"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_exhausted_stream_equals_engine_run(
        self, engine, network, selector, seed
    ):
        spec = AnalysisSpec(
            network=network, scale=SCALE, seed=seed, selector=selector
        )
        batch = engine.run(spec)
        frame = engine.frame_for(spec)
        run = StreamingIdentifier(
            spec.build_selector(),
            cadence=max(1, len(frame) // 3),
            patience=10_000,  # never converge: consume everything
        ).run(
            TraceReplayFeed(frame, chunk_size=7),
            stats=StreamingSlStatistics.for_frame(frame),
        )
        assert not run.converged
        assert run.iterations_consumed == len(frame)
        # Bit-identical numbers, not approximations.
        assert run.identification_error_pct == batch.identification_error_pct
        assert run.projected_prefix_total_s == batch.projected_total_s
        assert run.prefix_total_s == batch.actual_total_s
        streamed = [
            (p.seq_len, p.tgt_len, p.weight, p.record.time_s)
            for p in run.selection.points
        ]
        batched = [
            (p.seq_len, p.tgt_len, p.weight, p.time_s) for p in batch.points
        ]
        assert streamed == batched

    def test_run_streaming_consistent_with_run(self, engine):
        """The engine wrapper agrees with the batch result it reports."""
        spec = AnalysisSpec(network="gnmt", scale=SCALE)
        result = engine.run_streaming(
            StreamSpec(analysis=spec, cadence=8, patience=10_000)
        )
        batch = engine.run(spec)
        assert not result.converged
        assert result.iterations_consumed == result.epoch_iterations
        assert result.matches_batch_selection
        assert (
            result.batch_identification_error_pct
            == batch.identification_error_pct
        )
        assert result.identification_error_pct == batch.identification_error_pct
        assert result.actual_total_s == batch.actual_total_s
        # A fully consumed stream extrapolates by a factor of one.
        assert result.projected_epoch_time_s == pytest.approx(
            batch.projected_total_s, rel=1e-12
        )

    def test_run_streaming_rejects_non_stream_specs(self, engine):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="StreamSpec"):
            engine.run_streaming(AnalysisSpec(network="gnmt", scale=SCALE))
