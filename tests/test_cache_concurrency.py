"""Cross-process TraceCache coordination.

Two worker processes racing on one key must produce exactly one
simulation: the winner computes under the per-key file lock and the
loser loads the winner's artefact as a disk hit.  Legacy (v1) cache
directories must keep working when served to the process-parallel
sweep path.
"""

import multiprocessing
import os
import time
from pathlib import Path

from repro.api import AnalysisEngine, SweepSpec, run_sweep
from repro.api.spec import AnalysisSpec

KEY = "deadbeef" * 8
SCALE = 0.01


def _build_trace(directory: str):
    """A cheap synthetic trace; touching a sentinel records the compute."""
    from repro.hw.counters import CounterSet
    from repro.train.trace import IterationRecord, TrainingTrace

    (Path(directory) / f"simulated.{os.getpid()}").touch()
    time.sleep(0.2)  # widen the race window
    records = [
        IterationRecord(
            index=index,
            epoch=0,
            seq_len=10 * (index + 1),
            tgt_len=None,
            time_s=1.0 + index,
            launches=1,
            counters=CounterSet(busy_cycles=1.0),
            group_times={"GEMM-1": 1.0 + index},
            kernel_names=frozenset({"k"}),
        )
        for index in range(3)
    ]
    return TrainingTrace("m", "d", "c", 4, records=records)


def _cache_worker(directory, barrier, results):
    from repro.api.cache import TraceCache

    cache = TraceCache(directory)
    barrier.wait(timeout=30)
    trace = cache.get_or_compute(KEY, lambda: _build_trace(directory))
    results.put({"stats": cache.stats(), "total": trace.total_time_s})


class TestConcurrentAccess:
    def test_two_processes_one_simulation_one_hit(self, tmp_path):
        context = multiprocessing.get_context("spawn")
        barrier = context.Barrier(2)
        results = context.Queue()
        workers = [
            context.Process(
                target=_cache_worker, args=(str(tmp_path), barrier, results)
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        outcomes = [results.get(timeout=60) for _ in workers]
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0

        # Exactly one process ran the compute...
        assert len(list(tmp_path.glob("simulated.*"))) == 1
        # ...and the counters agree: one miss (the winner), one disk hit.
        counted = sorted(
            (o["stats"]["hits"], o["stats"]["misses"]) for o in outcomes
        )
        assert counted == [(0, 1), (1, 0)]
        # Both observed the same artefact.
        assert outcomes[0]["total"] == outcomes[1]["total"]


class TestLegacyArtefacts:
    def test_v1_cache_dir_serves_the_parallel_path(self, tmp_path):
        spec = AnalysisSpec(network="gnmt", scale=SCALE)
        engine = AnalysisEngine()
        trace = engine.trace_for(spec)
        path = tmp_path / f"{engine.trace_key(spec)}.json"
        trace.save(path, version=1)  # a pre-columnar cache directory
        stamp = path.stat().st_mtime_ns

        sweep = SweepSpec(networks=("gnmt",), scales=(SCALE,))
        run = run_sweep(sweep, mode="process", workers=2, cache_dir=tmp_path)

        expected = [engine.run(point).to_dict() for point in sweep.expand()]
        assert [r.to_dict() for r in run.results] == expected
        # The v1 artefact satisfied the workers as-is: nothing re-simulated
        # or rewrote it.
        assert path.stat().st_mtime_ns == stamp
        assert list(tmp_path.glob("*.json")) == [path]
