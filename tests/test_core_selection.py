"""Unit tests for repro.core.selection."""

import pytest

from repro.core.binning import bin_stats
from repro.core.selection import SelectedPoint, Selection, select_from_bin
from repro.core.sl_stats import SlStatistics
from repro.errors import SelectionError
from tests.conftest import make_record, make_trace


def single_bin(pairs):
    return bin_stats(SlStatistics.from_trace(make_trace(pairs)), 1)[0]


class TestSelectFromBin:
    def test_closest_mean_is_papers_choice(self):
        bin_ = single_bin([(10, 1.0), (20, 2.0), (30, 10.0)])
        # Weighted mean time = 13/3 = 4.33; SL 20 (2.0) vs SL 30 (10.0):
        # 2.0 is closer to 4.33? |2-4.33|=2.33, |10-4.33|=5.67 -> SL 20.
        point = select_from_bin(bin_)
        assert point.seq_len == 20
        assert point.weight == 3.0

    def test_weight_is_bin_iterations(self):
        bin_ = single_bin([(10, 1.0)] * 7 + [(20, 2.0)] * 3)
        assert select_from_bin(bin_).weight == 10.0

    def test_median_sl_strategy(self):
        bin_ = single_bin([(10, 1.0)] * 3 + [(20, 2.0)] * 3 + [(30, 3.0)] * 3)
        assert select_from_bin(bin_, strategy="median-sl").seq_len == 20

    def test_centroid_sl_strategy(self):
        bin_ = single_bin([(10, 1.0), (20, 2.0), (33, 3.0)])
        assert select_from_bin(bin_, strategy="centroid-sl").seq_len == 20

    def test_unknown_strategy_rejected(self):
        bin_ = single_bin([(10, 1.0)])
        with pytest.raises(SelectionError, match="strategy"):
            select_from_bin(bin_, strategy="random")


class TestSelection:
    def point(self, seq_len=10, weight=1.0):
        return SelectedPoint(record=make_record(0, seq_len, 1.0), weight=weight)

    def test_total_weight(self):
        selection = Selection(
            "m", (self.point(weight=2.0), self.point(20, 3.0))
        )
        assert selection.total_weight == 5.0

    def test_seq_lens(self):
        selection = Selection("m", (self.point(10), self.point(20)))
        assert selection.seq_lens == (10, 20)

    def test_iterations_to_profile_dedups(self):
        selection = Selection("m", (self.point(10), self.point(10)))
        assert selection.iterations_to_profile == 1

    def test_profiled_iterations_override(self):
        selection = Selection(
            "prior", (self.point(10),), profiled_iterations=50
        )
        assert selection.iterations_to_profile == 50

    def test_empty_selection_rejected(self):
        with pytest.raises(SelectionError):
            Selection("m", ())

    def test_non_positive_weight_rejected(self):
        with pytest.raises(SelectionError):
            self.point(weight=0.0)
